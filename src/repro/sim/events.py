"""Event objects used by the discrete-event engine.

Events are lightweight records placed on the engine's binary heap.  They
are ordered by ``(time, priority, sequence)``: earlier times fire first,
ties break on explicit priority and then on FIFO insertion order, which
keeps runs bit-for-bit deterministic for a given seed and schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Tie-break for events at identical times; lower fires first.
    seq:
        Monotonic insertion counter assigned by the engine.
    fn:
        Zero-argument callable invoked when the event fires.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by ``Engine.schedule*`` allowing cancellation.

    Cancellation is lazy: the event stays on the heap but is skipped
    when popped, which is O(1) and avoids heap surgery.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {state}>"
