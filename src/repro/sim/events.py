"""Event objects used by the discrete-event engine.

Events are lightweight records placed on the engine's binary heap.  They
are ordered by ``(time, priority, sequence)``: earlier times fire first,
ties break on explicit priority and then on FIFO insertion order, which
keeps runs bit-for-bit deterministic for a given seed and schedule.

Typed delivery records
----------------------
The dominant schedule entry — a one-hop frame delivery — does not need
a callback at all: the engine's pop loop can invoke ``node.deliver(
packet)`` directly from a plain heap tuple.  Such entries carry the
integer opcode :data:`OP_DELIVER` in the slot a callable normally
occupies (``type(entry[3]) is int`` is the lane discriminator), plus
the receiver and packet in two trailing slots, eliminating the closure
and argument-cell allocations a per-frame callback would cost.  Ordering
is unchanged — records compare by the same ``(time, priority, seq)``
prefix, and ``seq`` is unique so comparisons never reach the opcode.

:data:`OP_DELIVER_BATCH` extends the idea to co-temporal fan-outs: a
one-hop broadcast's receivers all hear the frame at the same
``(time, priority)``, so the whole block rides one heap entry whose
trailing slots hold the receiver and packet *lists*.  The entry
reserves one sequence number per record (``seq .. seq + n - 1``), so
its position in the global order — and the order of anything scheduled
after it — is exactly what ``n`` individual records would produce.

Scheduling lanes
----------------
Cancellable events additionally carry which engine structure holds
them (:data:`LANE_HEAP` or :data:`LANE_TIMER`) so cancellation
bookkeeping — live pending counts, heap compaction — can be attributed
to the right lane.  The lane never affects ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: Opcode of a typed delivery record: ``entry[5].deliver(entry[6])``.
OP_DELIVER: int = 0

#: Opcode of a batched delivery record: ``entry[5]`` / ``entry[6]`` are
#: equal-length lists of receivers and packets dispatched as one block.
OP_DELIVER_BATCH: int = 1

#: Lane markers for cancellable events (see ``Event.lane``).
LANE_HEAP: int = 0
LANE_TIMER: int = 1


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Tie-break for events at identical times; lower fires first.
    seq:
        Monotonic insertion counter assigned by the engine.
    fn:
        Zero-argument callable invoked when the event fires.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)
    #: which engine structure holds the entry (``LANE_HEAP`` or
    #: ``LANE_TIMER``); bookkeeping only, never part of the ordering.
    lane: int = field(default=LANE_HEAP, compare=False)


class EventHandle:
    """Handle returned by ``Engine.schedule*`` allowing cancellation.

    Cancellation is lazy: the event stays on the heap but is skipped
    when popped, which is O(1) and avoids heap surgery.  The owning
    engine (when given) is told about each cancellation so it can keep
    a live dead-entry count — that makes ``Engine.pending()`` O(1) and
    lets the engine compact the heap when mostly dead.
    """

    __slots__ = ("_event", "_engine")

    def __init__(self, event: Event, engine=None) -> None:
        self._event = event
        self._engine = engine

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent).

        A no-op once the event has fired: nothing is left on the heap
        to skip, so counting it as dead would corrupt the engine's live
        pending count."""
        ev = self._event
        if ev.cancelled or ev.fired:
            return
        ev.cancelled = True
        if self._engine is not None:
            self._engine._note_cancelled(ev)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {state}>"
