"""Discrete-event simulation kernel.

A minimal, deterministic discrete-event engine in the style of NS-2's
scheduler: a binary-heap event queue keyed by ``(time, sequence)`` with
callback-style events, periodic tasks, and named seeded random streams.

The kernel is the substrate for every simulation in this repository;
all simulated time is expressed in floating-point seconds.

Example
-------
>>> from repro.sim import Engine
>>> eng = Engine(seed=1)
>>> hits = []
>>> eng.schedule_in(2.0, lambda: hits.append(eng.now))
>>> eng.run()
>>> hits
[2.0]
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event, EventHandle
from repro.sim.process import PeriodicTask, Timer
from repro.sim.rng import RngRegistry

__all__ = [
    "Engine",
    "SimulationError",
    "Event",
    "EventHandle",
    "PeriodicTask",
    "Timer",
    "RngRegistry",
]
