"""Higher-level scheduling helpers built on the engine.

``Timer`` is a restartable one-shot; ``PeriodicTask`` repeats a callback
at a fixed interval (with optional per-tick jitter), which is how hello
beacons, CBR traffic sources, and ALARM's periodic dissemination are
driven.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.sim.engine import Engine
from repro.sim.events import EventHandle


class Timer:
    """A restartable one-shot timer.

    Used for retransmission timeouts (the paper's NAK/confirmation
    resend logic) where an acknowledgement cancels the pending timer.
    """

    def __init__(self, engine: Engine, fn: Callable[[], Any]) -> None:
        self._engine = engine
        self._fn = fn
        self._handle: EventHandle | None = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently pending."""
        return self._handle is not None and not self._handle.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now."""
        self.cancel()
        self._handle = self._engine.schedule_in(
            delay, self._fire, category="timer"
        )

    def cancel(self) -> None:
        """Disarm the timer if pending (idempotent)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._fn()


class PeriodicTask:
    """Repeat ``fn`` every ``interval`` seconds until stopped.

    Ticks are booked through the engine's calendar-queue timer lane
    (:meth:`~repro.sim.engine.Engine.schedule_timer_in`): the strictly-
    periodic schedule — hello rounds, CBR/adaptive traffic, ALARM
    dissemination — lands in coarse calendar buckets instead of
    sifting through the binary heap, while firing order stays
    bit-identical to heap scheduling by construction (shared sequence
    counter, global min-merge in the pop loop).  One-shot
    :class:`Timer` arms stay on the heap: they are the irregular,
    frequently-cancelled residue the heap's compaction already handles.

    Parameters
    ----------
    engine:
        Owning engine.
    interval:
        Nominal period in seconds.
    fn:
        Zero-argument callback invoked each tick.
    jitter:
        If > 0, each tick is displaced by Uniform(-jitter, +jitter)
        seconds (clipped to stay positive) drawn from ``rng``.  Beacon
        protocols jitter to avoid synchronized collisions.
    rng:
        Random stream used for jitter; required when ``jitter > 0``.
    start_offset:
        Delay before the first tick (default: one full interval).
    category:
        Event-counter category the ticks are booked under (see
        ``Engine.event_counts``); defaults to ``"timer"``.
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        fn: Callable[[], Any],
        jitter: float = 0.0,
        rng: np.random.Generator | None = None,
        start_offset: float | None = None,
        category: str = "timer",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter > 0 requires an rng")
        self._engine = engine
        self._interval = interval
        self._fn = fn
        self._jitter = jitter
        self._rng = rng
        self._category = category
        self._handle: EventHandle | None = None
        self._stopped = False
        self.ticks = 0
        first = interval if start_offset is None else start_offset
        # The period hint lets the calendar lane hash its bucket width
        # to the dominant tick interval (see ``schedule_timer_in``).
        self._handle = engine.schedule_timer_in(
            self._displace(first), self._tick, category=category,
            period=interval,
        )

    @property
    def interval(self) -> float:
        """The current nominal period in seconds."""
        return self._interval

    def set_interval(self, interval: float) -> None:
        """Change the period for *future* ticks.

        The already-scheduled next tick keeps its time; the tick after
        it is booked at the new interval.  Adaptive traffic sources use
        this to widen/narrow their send spacing on loss feedback
        without perturbing the pending schedule entry (rescheduling
        would consume an extra engine sequence number and shift
        same-time tie-breaking).
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._interval = interval

    def _displace(self, base: float) -> float:
        if self._jitter <= 0:
            return base
        assert self._rng is not None
        delta = float(self._rng.uniform(-self._jitter, self._jitter))
        return max(base + delta, 1e-9)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        self._fn()
        if not self._stopped:
            self._handle = self._engine.schedule_timer_in(
                self._displace(self._interval), self._tick,
                category=self._category, period=self._interval,
            )

    def stop(self) -> None:
        """Stop future ticks (the current tick, if firing, completes)."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
