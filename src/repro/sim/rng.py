"""Named, independently-seeded random streams.

Stochastic subsystems (mobility, MAC backoff, protocol randomness,
traffic jitter) each draw from their own named stream so that adding a
random draw in one subsystem does not perturb the sequence seen by
another — a standard variance-reduction discipline in network
simulation.  Streams are derived from a master seed with
``numpy.random.SeedSequence.spawn``-style child seeding keyed by the
stream name, so ``(master_seed, name)`` fully determines a stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``(master_seed, name)``.

    Uses SHA-256 over the pair so that streams are statistically
    independent and stable across processes and Python versions
    (``hash()`` is salted per-process and therefore unusable here).
    """
    payload = f"{master_seed}:{name}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RngRegistry:
    """Registry of named :class:`numpy.random.Generator` streams.

    Example
    -------
    >>> reg = RngRegistry(42)
    >>> a = reg.stream("mobility")
    >>> b = reg.stream("mac")
    >>> reg.stream("mobility") is a   # cached
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def reset(self, name: str) -> np.random.Generator:
        """Re-seed the named stream back to its initial state."""
        self._streams.pop(name, None)
        return self.stream(name)

    def names(self) -> list[str]:
        """Names of all streams created so far, in creation order."""
        return list(self._streams)
