"""The discrete-event engine.

``Engine`` owns the simulation clock, the event heap, and the registry
of named random streams.  It is intentionally callback-based (like the
NS-2 scheduler the paper's evaluation ran on) rather than
coroutine-based: protocol state machines in this repository react to
packet-arrival events, so callbacks map directly onto the domain.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import Event, EventHandle
from repro.sim.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised on scheduling errors (e.g., scheduling into the past)."""


class Engine:
    """Deterministic discrete-event simulation engine.

    Parameters
    ----------
    seed:
        Master seed for the engine's :class:`~repro.sim.rng.RngRegistry`.
        Two engines constructed with the same seed and fed the same
        schedule produce identical trajectories.

    Notes
    -----
    * Time is a float number of seconds starting at ``0.0``.
    * Events at equal times fire in ``(priority, insertion)`` order.
    * ``run(until=...)`` stops *after* processing every event with
      ``time <= until`` and leaves ``now`` at ``until``.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self.rng = RngRegistry(seed)
        #: number of events processed so far (diagnostic)
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, fn: Callable[[], Any], priority: int = 0
    ) -> EventHandle:
        """Schedule ``fn`` to run at absolute time ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is in the past or not finite.
        """
        if time != time or time in (float("inf"), float("-inf")):
            raise SimulationError(f"non-finite event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        ev = Event(time=time, priority=priority, seq=self._seq, fn=fn)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return EventHandle(ev)

    def schedule_in(
        self, delay: float, fn: Callable[[], Any], priority: int = 0
    ) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, priority=priority)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.

        Returns
        -------
        bool
            ``True`` if an event was processed, ``False`` if the queue
            was empty (clock unchanged).
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self.events_processed += 1
            ev.fn()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given, every event with ``time <= until`` is
        processed and the clock is then advanced to exactly ``until``.
        """
        self._stopped = False
        self._running = True
        try:
            while self._heap and not self._stopped:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and not self._stopped and until > self._now:
            self._now = until

    def stop(self) -> None:
        """Stop a ``run`` in progress after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Engine t={self._now:.6f} pending={self.pending()} "
            f"processed={self.events_processed}>"
        )
