"""The discrete-event engine.

``Engine`` owns the simulation clock, the event heap, and the registry
of named random streams.  It is intentionally callback-based (like the
NS-2 scheduler the paper's evaluation ran on) rather than
coroutine-based: protocol state machines in this repository react to
packet-arrival events, so callbacks map directly onto the domain.

Performance notes
-----------------
The heap stores plain ``(time, priority, seq, fn, category, event)``
tuples rather than :class:`~repro.sim.events.Event` objects, so every
sift comparison is a C-level tuple comparison (``seq`` is unique, so
the trailing non-comparable fields are never reached).  ``run`` inlines
the pop loop instead of re-checking the head and delegating to
:meth:`step` per event.  Callers that never cancel an event — packet
deliveries, which dominate the schedule — pass ``cancellable=False``
and skip the :class:`Event`/:class:`EventHandle` allocations entirely.
Frame deliveries go one step further: :meth:`schedule_deliver` pushes a
*typed record* ``(time, priority, seq, OP_DELIVER, category, node,
packet)`` with no callable at all, and the pop loop dispatches it with
a direct ``node.deliver(packet)`` call — no closure or ``partial``
allocation per frame on the dominant (``data``) schedule path.
Cancelled events are counted live, making :meth:`pending` O(1), and
the heap is compacted once more than half of it is dead so
cancellation-heavy workloads (retransmit timers) cannot grow it
unboundedly.

Batch-execution fast lane
-------------------------
Two further structures take the large-field (10k-node) workloads out
of the per-event heap churn without perturbing the global
``(time, priority, seq)`` order:

* a **calendar-queue timer lane** (:meth:`schedule_timer_in`) for the
  strictly-periodic schedule — hello rounds, CBR/adaptive traffic
  ticks, ALARM dissemination.  Entries land in coarse time buckets
  (sorted only when their bucket is promoted) instead of sifting
  through the heap; the pop loop fires whichever of (heap head,
  calendar head) is globally smallest.  Sequence numbers come from the
  same counter as every other lane, so the merge is a plain tuple
  comparison and the firing order is identical to a single heap *by
  construction*.
* **batched delivery records** (:meth:`schedule_deliver_batch`) for
  co-temporal broadcast fan-outs: one heap entry carries the whole
  receiver block and reserves one sequence number per record, so the
  block dispatches back-to-back exactly where ``n`` individual records
  would have fired, at one heap push/pop for the lot.  ``stop()``
  mid-block re-queues the unfired tail as individual records under
  their reserved sequence numbers.
"""

from __future__ import annotations

import heapq
from bisect import insort
from math import isfinite
from typing import Any, Callable

from repro.sim.events import (
    Event,
    EventHandle,
    LANE_TIMER,
    OP_DELIVER,
    OP_DELIVER_BATCH,
)
from repro.sim.rng import RngRegistry

#: Compaction threshold: dead entries tolerated before a rebuild is
#: even considered (amortises tiny heaps away).
_COMPACT_MIN = 64

#: Default calendar-lane bucket width, seconds.  Periodic timers are
#: spaced at O(1 s) intervals (hello beacons 1 s, CBR 2 s), so one
#: bucket holds roughly one round's worth of ticks: big enough to
#: amortise the per-bucket sort, small enough that a bucket never
#: aggregates a large fraction of the schedule.  The width is *hashed
#: to the workload* at runtime: callers of ``schedule_timer_in`` pass
#: their nominal period and the lane re-keys itself to the dominant
#: one whenever it is empty (see ``Engine._cal_width``) — firing order
#: is width-independent by construction, so any width is equally
#: correct; only the bucket occupancy changes.
_CAL_WIDTH = 1.0

#: Floor for the adaptive bucket width: a degenerate (or zero) period
#: hint must not create one bucket per float ULP.
_CAL_WIDTH_MIN = 1e-6


class SimulationError(RuntimeError):
    """Raised on scheduling errors (e.g., scheduling into the past)."""


class Engine:
    """Deterministic discrete-event simulation engine.

    Parameters
    ----------
    seed:
        Master seed for the engine's :class:`~repro.sim.rng.RngRegistry`.
        Two engines constructed with the same seed and fed the same
        schedule produce identical trajectories.
    timer_lane:
        When ``True`` (default), :meth:`schedule_timer_in` routes
        periodic timers through the calendar-queue lane; when
        ``False`` they fall back to the binary heap.  Firing order is
        identical either way (the parity suite pins this) — the flag
        exists so tests can differentially compare the two.

    Notes
    -----
    * Time is a float number of seconds starting at ``0.0``.
    * Events at equal times fire in ``(priority, insertion)`` order.
    * ``run(until=...)`` stops *after* processing every event with
      ``time <= until`` and leaves ``now`` at ``until``.
    """

    def __init__(self, seed: int = 0, timer_lane: bool = True) -> None:
        self._now: float = 0.0
        # Heap of (time, priority, seq, fn, category, Event | None).
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._n_cancelled: int = 0
        self._timer_lane = timer_lane
        # Calendar-queue timer lane: coarse time buckets (unsorted
        # until promoted), a key heap over pending buckets, and the
        # promoted "current run" — an ascending-sorted list consumed
        # through an index instead of pops.
        self._cal_buckets: dict[int, list[tuple]] = {}
        self._cal_keys: list[int] = []
        self._cal_cur: list[tuple] = []
        self._cal_cur_i: int = 0
        self._cal_cur_key: int | None = None
        self._cal_len: int = 0
        self._cal_cancelled: int = 0
        # Adaptive bucket width: ``schedule_timer_in`` period hints
        # vote, and the lane re-keys to the dominant period whenever it
        # is empty (the only moment bucket keys can change safely).
        self._cal_width: float = _CAL_WIDTH
        self._cal_period_votes: dict[float, int] = {}
        # Records represented by queued batch entries beyond the heap
        # slots they occupy (n - 1 per n-record batch), kept live so
        # ``pending()`` stays O(1) and exact mid-batch.
        self._batch_extra: int = 0
        self.rng = RngRegistry(seed)
        #: number of events processed so far (diagnostic)
        self.events_processed: int = 0
        #: processed events by category ("hello" / "data" / "control" /
        #: "timer" / "other") — cheap per-run profile of where the
        #: event budget goes, surfaced through ``RunResult.event_counts``.
        self.event_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        category: str = "other",
        cancellable: bool = True,
    ) -> EventHandle | None:
        """Schedule ``fn`` to run at absolute time ``time``.

        ``category`` tags the event for :attr:`event_counts`.  With
        ``cancellable=False`` no handle is created (and ``None`` is
        returned) — the fast lane for fire-and-forget events like frame
        deliveries, which saves two allocations per event on the
        dominant schedule path.

        Raises
        ------
        SimulationError
            If ``time`` is in the past or not finite.
        """
        if not isfinite(time):
            raise SimulationError(f"non-finite event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        if not cancellable:
            heapq.heappush(self._heap, (time, priority, seq, fn, category, None))
            return None
        ev = Event(time=time, priority=priority, seq=seq, fn=fn)
        heapq.heappush(self._heap, (time, priority, seq, fn, category, ev))
        return EventHandle(ev, self)

    def schedule_in(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = 0,
        category: str = "other",
        cancellable: bool = True,
    ) -> EventHandle | None:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(
            self._now + delay,
            fn,
            priority=priority,
            category=category,
            cancellable=cancellable,
        )

    def schedule_deliver(
        self,
        time: float,
        node: Any,
        packet: Any,
        priority: int = 0,
        category: str = "data",
    ) -> None:
        """Schedule ``node.deliver(packet)`` as a typed delivery record.

        The fast lane for the dominant schedule entry: no callback, no
        closure — the pop loop invokes ``deliver`` directly from the
        heap tuple.  Records are never cancellable and fire in exactly
        the ``(time, priority, insertion)`` order a ``cancellable=False``
        callback scheduled at the same point would (the shared ``seq``
        counter makes the two lanes interleave deterministically).

        Raises
        ------
        SimulationError
            If ``time`` is in the past or not finite.
        """
        if not isfinite(time):
            raise SimulationError(f"non-finite event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap,
            (time, priority, seq, OP_DELIVER, category, node, packet),
        )

    def schedule_deliver_batch(
        self,
        time: float,
        targets: list,
        packets: list,
        priority: int = 0,
        category: str = "data",
    ) -> None:
        """Schedule a co-temporal block of delivery records as one entry.

        The broadcast fast lane: all receivers of a one-hop fan-out
        hear the frame at the same ``(time, priority)``, so the block
        rides a single heap entry instead of ``len(targets)`` pushes.
        One sequence number is reserved *per record*, which makes the
        global firing order — including anything scheduled re-entrantly
        at the same instant — exactly what individual
        :meth:`schedule_deliver` calls in the same order would produce.
        ``events_processed``, per-category counts, and :meth:`pending`
        all account per record, and :meth:`stop` between two records of
        a block re-queues the unfired tail as individual records under
        their reserved sequence numbers.

        Raises
        ------
        SimulationError
            If ``time`` is in the past or not finite, or the lists'
            lengths differ.
        """
        if not isfinite(time):
            raise SimulationError(f"non-finite event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        n = len(targets)
        if n != len(packets):
            raise SimulationError(
                f"batch length mismatch: {n} targets, {len(packets)} packets"
            )
        if n == 0:
            return
        seq = self._seq
        self._seq = seq + n
        if n == 1:
            heapq.heappush(
                self._heap,
                (time, priority, seq, OP_DELIVER, category, targets[0], packets[0]),
            )
            return
        heapq.heappush(
            self._heap,
            (time, priority, seq, OP_DELIVER_BATCH, category, targets, packets),
        )
        self._batch_extra += n - 1

    def schedule_timer_in(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = 0,
        category: str = "timer",
        period: float | None = None,
    ) -> EventHandle:
        """Schedule a periodic-timer callback ``delay`` seconds from now.

        The calendar-queue lane for strictly-periodic schedules (hello
        rounds, traffic ticks): entries land in coarse time buckets
        that are sorted only when promoted, so a tick costs O(bucket)
        appends instead of a full-heap sift.  The sequence number comes
        from the same counter as every other lane and the pop loop
        fires the globally smallest ``(time, priority, seq)`` across
        both structures, so the firing order is identical to
        :meth:`schedule_in` by construction.  Always cancellable.

        ``period`` optionally names the caller's nominal tick interval
        (:class:`~repro.sim.process.PeriodicTask` passes its own).  The
        hints vote on the lane's bucket width: whenever the lane is
        empty — the only moment existing bucket keys cannot be
        invalidated — the width re-keys to the most-voted period, so a
        workload ticking every 50 ms gets 50 ms buckets instead of
        piling 20 rounds into each 1 s one.  Width never affects firing
        order (the parity suite runs the lane against the plain heap),
        only bucket occupancy.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        if not isfinite(time):
            raise SimulationError(f"non-finite event time {time!r}")
        seq = self._seq
        self._seq = seq + 1
        if not self._timer_lane:
            ev = Event(time=time, priority=priority, seq=seq, fn=fn)
            heapq.heappush(self._heap, (time, priority, seq, fn, category, ev))
            return EventHandle(ev, self)
        if period is not None and period > 0.0 and isfinite(period):
            votes = self._cal_period_votes
            votes[period] = votes.get(period, 0) + 1
            if self._cal_len == 0:
                self._cal_rekey()
        ev = Event(
            time=time, priority=priority, seq=seq, fn=fn, lane=LANE_TIMER
        )
        self._cal_push((time, priority, seq, fn, category, ev))
        return EventHandle(ev, self)

    # ------------------------------------------------------------------
    # calendar-lane internals
    # ------------------------------------------------------------------
    def _cal_rekey(self) -> None:
        """Re-key the (empty) calendar lane to the dominant period.

        Called only while ``_cal_len == 0``: every pushed entry has
        been consumed, so no bucket key computed under the old width
        survives.  Ties break toward the *smaller* period (finer
        buckets only cost a few more dict entries; coarser ones
        aggregate rounds), and the width is floored so a degenerate
        hint cannot shatter the lane into per-ULP buckets.
        """
        votes = self._cal_period_votes
        if not votes:
            return
        width = max(
            min(votes.items(), key=lambda kv: (-kv[1], kv[0]))[0],
            _CAL_WIDTH_MIN,
        )
        if width != self._cal_width:
            self._cal_width = width
            # The promoted run is exhausted (len == 0); drop its stale
            # key so no new push compares against an old-width key.
            self._cal_cur = []
            self._cal_cur_i = 0
            self._cal_cur_key = None

    def _cal_push(self, entry: tuple) -> None:
        """File a timer entry into its calendar bucket."""
        self._cal_len += 1
        key = int(entry[0] / self._cal_width)
        cur_key = self._cal_cur_key
        if cur_key is not None:
            if key == cur_key:
                # Same bucket as the promoted run: keep the unfired
                # tail sorted (times are >= now, so the insertion point
                # is at or after the consumption index).
                insort(self._cal_cur, entry, lo=self._cal_cur_i)
                return
            if key < cur_key:
                # The clock still trails the promoted bucket and a new
                # timer landed before it: demote the run's unfired tail
                # and let the next peek re-promote in key order.
                rem = self._cal_cur[self._cal_cur_i :]
                if rem:
                    b = self._cal_buckets.get(cur_key)
                    if b is None:
                        self._cal_buckets[cur_key] = rem
                        heapq.heappush(self._cal_keys, cur_key)
                    else:
                        b.extend(rem)
                self._cal_cur = []
                self._cal_cur_i = 0
                self._cal_cur_key = None
        b = self._cal_buckets.get(key)
        if b is None:
            self._cal_buckets[key] = [entry]
            heapq.heappush(self._cal_keys, key)
        else:
            b.append(entry)

    def _cal_peek(self) -> tuple | None:
        """The smallest queued timer entry, or ``None`` (amortised O(1)).

        Promotes the next non-empty bucket (sorting it once) when the
        current run is exhausted.  May return a cancelled entry — the
        pop loops skip those exactly as they do for the heap.
        """
        cur = self._cal_cur
        i = self._cal_cur_i
        if i < len(cur):
            return cur[i]
        keys = self._cal_keys
        buckets = self._cal_buckets
        while keys:
            key = heapq.heappop(keys)
            b = buckets.pop(key, None)
            if b:
                b.sort()
                self._cal_cur = b
                self._cal_cur_i = 0
                self._cal_cur_key = key
                return b[0]
        return None

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self, ev: Event | None = None) -> None:
        """An ``EventHandle`` cancelled a queued event (O(1) amortised).

        Keeps :meth:`pending` O(1) and compacts the heap when more than
        half of it is dead, so workloads that cancel most of what they
        schedule (retransmit timers under good link conditions) hold
        the heap at O(live events) instead of growing it unboundedly.
        Calendar-lane cancellations are only counted: dead entries are
        reconciled when their bucket drains, and their number is
        bounded by the (small) periodic-task population, so the lane
        needs no compaction.
        """
        if ev is not None and ev.lane == LANE_TIMER:
            self._cal_cancelled += 1
            return
        self._n_cancelled += 1
        if (
            self._n_cancelled > _COMPACT_MIN
            and 2 * self._n_cancelled > len(self._heap)
        ):
            # In place: ``run`` holds a local alias to the heap list.
            # Typed delivery records (integer opcode in the fn slot)
            # carry a Node in slot 5 and are never cancellable.
            heap = self._heap
            heap[:] = [
                entry
                for entry in heap
                if type(entry[3]) is int
                or entry[5] is None
                or not entry[5].cancelled
            ]
            heapq.heapify(heap)
            self._n_cancelled = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.

        Returns
        -------
        bool
            ``True`` if an event was processed, ``False`` if the queue
            was empty (clock unchanged).
        """
        heap = self._heap
        counts = self.event_counts
        while True:
            entry = heap[0] if heap else None
            timer = self._cal_peek() if self._cal_len else None
            if timer is not None and (entry is None or timer < entry):
                self._cal_cur_i += 1
                self._cal_len -= 1
                ev = timer[5]
                if ev.cancelled:
                    self._cal_cancelled -= 1
                    continue
                ev.fired = True
                self._now = timer[0]
                self.events_processed += 1
                category = timer[4]
                counts[category] = counts.get(category, 0) + 1
                timer[3]()
                return True
            if entry is None:
                return False
            heapq.heappop(heap)
            fn = entry[3]
            if type(fn) is int:
                # Typed delivery record: dispatch without a callback.
                self._now = entry[0]
                self.events_processed += 1
                category = entry[4]
                counts[category] = counts.get(category, 0) + 1
                if fn == OP_DELIVER:
                    entry[5].deliver(entry[6])
                    return True
                # Batch record: one delivery per step; the unfired tail
                # returns to the heap under its reserved seqs so the
                # step granularity matches the unbatched engine.
                targets = entry[5]
                packets = entry[6]
                self._batch_extra -= 1
                if len(targets) == 2:
                    heapq.heappush(
                        heap,
                        (entry[0], entry[1], entry[2] + 1, OP_DELIVER,
                         entry[4], targets[1], packets[1]),
                    )
                else:
                    heapq.heappush(
                        heap,
                        (entry[0], entry[1], entry[2] + 1, OP_DELIVER_BATCH,
                         entry[4], targets[1:], packets[1:]),
                    )
                targets[0].deliver(packets[0])
                return True
            ev = entry[5]
            if ev is not None:
                if ev.cancelled:
                    self._n_cancelled -= 1
                    continue
                ev.fired = True
            self._now = entry[0]
            self.events_processed += 1
            category = entry[4]
            counts[category] = counts.get(category, 0) + 1
            fn()
            return True

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given, every event with ``time <= until`` is
        processed and the clock is then advanced to exactly ``until``.
        """
        self._stopped = False
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        counts = self.event_counts
        try:
            while not self._stopped:
                entry = heap[0] if heap else None
                if self._cal_len:
                    # Inline peek of the calendar head; falls back to
                    # the promoting path only when the current run is
                    # exhausted.
                    cur = self._cal_cur
                    i = self._cal_cur_i
                    timer = cur[i] if i < len(cur) else self._cal_peek()
                else:
                    timer = None
                if timer is not None and (entry is None or timer < entry):
                    # Calendar lane holds the globally smallest entry
                    # (tuple comparison never passes seq — it's unique
                    # across lanes).
                    time_ = timer[0]
                    if until is not None and time_ > until:
                        break
                    self._cal_cur_i += 1
                    self._cal_len -= 1
                    ev = timer[5]
                    if ev.cancelled:
                        self._cal_cancelled -= 1
                        continue
                    ev.fired = True
                    self._now = time_
                    self.events_processed += 1
                    category = timer[4]
                    counts[category] = counts.get(category, 0) + 1
                    timer[3]()
                    continue
                if entry is None:
                    break
                time_ = entry[0]
                if until is not None and time_ > until:
                    break
                pop(heap)
                fn = entry[3]
                if type(fn) is int:
                    if fn == OP_DELIVER:
                        # Typed delivery record (the dominant entry
                        # kind): one direct method call, no callback
                        # indirection.
                        self._now = time_
                        self.events_processed += 1
                        category = entry[4]
                        counts[category] = counts.get(category, 0) + 1
                        entry[5].deliver(entry[6])
                        continue
                    # Batch record: dispatch the co-temporal block
                    # back-to-back.  Counters move per record, and a
                    # stop() between records re-queues the unfired
                    # tail as individual records under their reserved
                    # sequence numbers.
                    self._now = time_
                    targets = entry[5]
                    packets = entry[6]
                    n = len(targets)
                    category = entry[4]
                    self._batch_extra += 1
                    j = 0
                    while j < n:
                        self._batch_extra -= 1
                        self.events_processed += 1
                        counts[category] = counts.get(category, 0) + 1
                        targets[j].deliver(packets[j])
                        j += 1
                        if self._stopped and j < n:
                            priority = entry[1]
                            seq0 = entry[2]
                            for k in range(j, n):
                                push(
                                    heap,
                                    (time_, priority, seq0 + k, OP_DELIVER,
                                     category, targets[k], packets[k]),
                                )
                            self._batch_extra -= n - j
                            break
                    continue
                ev = entry[5]
                if ev is not None:
                    if ev.cancelled:
                        self._n_cancelled -= 1
                        continue
                    ev.fired = True
                self._now = time_
                self.events_processed += 1
                category = entry[4]
                counts[category] = counts.get(category, 0) + 1
                fn()
        finally:
            self._running = False
        if until is not None and not self._stopped and until > self._now:
            self._now = until

    def stop(self) -> None:
        """Stop a ``run`` in progress after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1)).

        Counts per *record* across every lane: heap entries, calendar
        timers, and each record a queued batch entry represents.
        """
        return (
            len(self._heap)
            - self._n_cancelled
            + self._cal_len
            - self._cal_cancelled
            + self._batch_extra
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Engine t={self._now:.6f} pending={self.pending()} "
            f"processed={self.events_processed}>"
        )
