"""The discrete-event engine.

``Engine`` owns the simulation clock, the event heap, and the registry
of named random streams.  It is intentionally callback-based (like the
NS-2 scheduler the paper's evaluation ran on) rather than
coroutine-based: protocol state machines in this repository react to
packet-arrival events, so callbacks map directly onto the domain.

Performance notes
-----------------
The heap stores plain ``(time, priority, seq, fn, category, event)``
tuples rather than :class:`~repro.sim.events.Event` objects, so every
sift comparison is a C-level tuple comparison (``seq`` is unique, so
the trailing non-comparable fields are never reached).  ``run`` inlines
the pop loop instead of re-checking the head and delegating to
:meth:`step` per event.  Callers that never cancel an event — packet
deliveries, which dominate the schedule — pass ``cancellable=False``
and skip the :class:`Event`/:class:`EventHandle` allocations entirely.
Frame deliveries go one step further: :meth:`schedule_deliver` pushes a
*typed record* ``(time, priority, seq, OP_DELIVER, category, node,
packet)`` with no callable at all, and the pop loop dispatches it with
a direct ``node.deliver(packet)`` call — no closure or ``partial``
allocation per frame on the dominant (``data``) schedule path.
Cancelled events are counted live, making :meth:`pending` O(1), and
the heap is compacted once more than half of it is dead so
cancellation-heavy workloads (retransmit timers) cannot grow it
unboundedly.
"""

from __future__ import annotations

import heapq
from math import isfinite
from typing import Any, Callable

from repro.sim.events import Event, EventHandle, OP_DELIVER
from repro.sim.rng import RngRegistry

#: Compaction threshold: dead entries tolerated before a rebuild is
#: even considered (amortises tiny heaps away).
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised on scheduling errors (e.g., scheduling into the past)."""


class Engine:
    """Deterministic discrete-event simulation engine.

    Parameters
    ----------
    seed:
        Master seed for the engine's :class:`~repro.sim.rng.RngRegistry`.
        Two engines constructed with the same seed and fed the same
        schedule produce identical trajectories.

    Notes
    -----
    * Time is a float number of seconds starting at ``0.0``.
    * Events at equal times fire in ``(priority, insertion)`` order.
    * ``run(until=...)`` stops *after* processing every event with
      ``time <= until`` and leaves ``now`` at ``until``.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        # Heap of (time, priority, seq, fn, category, Event | None).
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._n_cancelled: int = 0
        self.rng = RngRegistry(seed)
        #: number of events processed so far (diagnostic)
        self.events_processed: int = 0
        #: processed events by category ("hello" / "data" / "control" /
        #: "timer" / "other") — cheap per-run profile of where the
        #: event budget goes, surfaced through ``RunResult.event_counts``.
        self.event_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        category: str = "other",
        cancellable: bool = True,
    ) -> EventHandle | None:
        """Schedule ``fn`` to run at absolute time ``time``.

        ``category`` tags the event for :attr:`event_counts`.  With
        ``cancellable=False`` no handle is created (and ``None`` is
        returned) — the fast lane for fire-and-forget events like frame
        deliveries, which saves two allocations per event on the
        dominant schedule path.

        Raises
        ------
        SimulationError
            If ``time`` is in the past or not finite.
        """
        if not isfinite(time):
            raise SimulationError(f"non-finite event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        if not cancellable:
            heapq.heappush(self._heap, (time, priority, seq, fn, category, None))
            return None
        ev = Event(time=time, priority=priority, seq=seq, fn=fn)
        heapq.heappush(self._heap, (time, priority, seq, fn, category, ev))
        return EventHandle(ev, self)

    def schedule_in(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = 0,
        category: str = "other",
        cancellable: bool = True,
    ) -> EventHandle | None:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(
            self._now + delay,
            fn,
            priority=priority,
            category=category,
            cancellable=cancellable,
        )

    def schedule_deliver(
        self,
        time: float,
        node: Any,
        packet: Any,
        priority: int = 0,
        category: str = "data",
    ) -> None:
        """Schedule ``node.deliver(packet)`` as a typed delivery record.

        The fast lane for the dominant schedule entry: no callback, no
        closure — the pop loop invokes ``deliver`` directly from the
        heap tuple.  Records are never cancellable and fire in exactly
        the ``(time, priority, insertion)`` order a ``cancellable=False``
        callback scheduled at the same point would (the shared ``seq``
        counter makes the two lanes interleave deterministically).

        Raises
        ------
        SimulationError
            If ``time`` is in the past or not finite.
        """
        if not isfinite(time):
            raise SimulationError(f"non-finite event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap,
            (time, priority, seq, OP_DELIVER, category, node, packet),
        )

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """An ``EventHandle`` cancelled a queued event (O(1) amortised).

        Keeps :meth:`pending` O(1) and compacts the heap when more than
        half of it is dead, so workloads that cancel most of what they
        schedule (retransmit timers under good link conditions) hold
        the heap at O(live events) instead of growing it unboundedly.
        """
        self._n_cancelled += 1
        if (
            self._n_cancelled > _COMPACT_MIN
            and 2 * self._n_cancelled > len(self._heap)
        ):
            # In place: ``run`` holds a local alias to the heap list.
            # Typed delivery records (integer opcode in the fn slot)
            # carry a Node in slot 5 and are never cancellable.
            heap = self._heap
            heap[:] = [
                entry
                for entry in heap
                if type(entry[3]) is int
                or entry[5] is None
                or not entry[5].cancelled
            ]
            heapq.heapify(heap)
            self._n_cancelled = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.

        Returns
        -------
        bool
            ``True`` if an event was processed, ``False`` if the queue
            was empty (clock unchanged).
        """
        heap = self._heap
        counts = self.event_counts
        while heap:
            entry = heapq.heappop(heap)
            fn = entry[3]
            if type(fn) is int:
                # Typed delivery record: dispatch without a callback.
                self._now = entry[0]
                self.events_processed += 1
                category = entry[4]
                counts[category] = counts.get(category, 0) + 1
                entry[5].deliver(entry[6])
                return True
            ev = entry[5]
            if ev is not None:
                if ev.cancelled:
                    self._n_cancelled -= 1
                    continue
                ev.fired = True
            self._now = entry[0]
            self.events_processed += 1
            category = entry[4]
            counts[category] = counts.get(category, 0) + 1
            fn()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given, every event with ``time <= until`` is
        processed and the clock is then advanced to exactly ``until``.
        """
        self._stopped = False
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        counts = self.event_counts
        try:
            while heap and not self._stopped:
                entry = heap[0]
                time_ = entry[0]
                if until is not None and time_ > until:
                    break
                pop(heap)
                fn = entry[3]
                if type(fn) is int:
                    # Typed delivery record (the dominant entry kind):
                    # one direct method call, no callback indirection.
                    self._now = time_
                    self.events_processed += 1
                    category = entry[4]
                    counts[category] = counts.get(category, 0) + 1
                    entry[5].deliver(entry[6])
                    continue
                ev = entry[5]
                if ev is not None:
                    if ev.cancelled:
                        self._n_cancelled -= 1
                        continue
                    ev.fired = True
                self._now = time_
                self.events_processed += 1
                category = entry[4]
                counts[category] = counts.get(category, 0) + 1
                fn()
        finally:
            self._running = False
        if until is not None and not self._stopped and until > self._now:
            self._now = until

    def stop(self) -> None:
        """Stop a ``run`` in progress after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._heap) - self._n_cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Engine t={self._now:.6f} pending={self.pending()} "
            f"processed={self.events_processed}>"
        )
