"""Physical-layer model: unit-disk propagation and airtime.

The paper's testbed uses "802.11 as the MAC protocol with a standard
wireless transmission range of 250 m" and 512-byte packets; the basic
802.11 rate (2 Mb/s) reproduces the millisecond-scale per-hop latencies
of Figs. 14a/14b.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RadioModel:
    """Radio parameters shared by every node.

    Parameters
    ----------
    range_m:
        Unit-disk transmission range in metres.
    bandwidth_bps:
        Channel bit rate (802.11 basic rate: 2 Mb/s).
    phy_preamble_s:
        PHY preamble + PLCP header airtime (802.11 long preamble:
        192 µs).
    mac_overhead_bytes:
        Link-layer framing bytes added to every payload (802.11 data
        header + FCS ≈ 34 B).
    prop_speed_mps:
        Signal propagation speed.
    """

    range_m: float = 250.0
    bandwidth_bps: float = 2e6
    phy_preamble_s: float = 192e-6
    mac_overhead_bytes: int = 34
    prop_speed_mps: float = 3e8

    def __post_init__(self) -> None:
        if self.range_m <= 0 or self.bandwidth_bps <= 0:
            raise ValueError(f"invalid radio parameters: {self!r}")

    def in_range(self, distance_m: float) -> bool:
        """Unit-disk connectivity predicate."""
        return distance_m <= self.range_m

    def tx_time(self, payload_bytes: int) -> float:
        """Airtime of one frame carrying ``payload_bytes``."""
        bits = (payload_bytes + self.mac_overhead_bytes) * 8
        return self.phy_preamble_s + bits / self.bandwidth_bps

    def propagation_delay(self, distance_m: float) -> float:
        """One-way propagation delay over ``distance_m``."""
        return distance_m / self.prop_speed_mps
