"""Physical-layer model: unit-disk propagation and airtime.

The paper's testbed uses "802.11 as the MAC protocol with a standard
wireless transmission range of 250 m" and 512-byte packets; the basic
802.11 rate (2 Mb/s) reproduces the millisecond-scale per-hop latencies
of Figs. 14a/14b.

A run sees only a handful of distinct frame sizes (hello beacons, data
payload, ACK, a few control frames), so :meth:`RadioModel.tx_time`
memoises its result per payload size; the batch helpers return airtime
and propagation *vectors* for a whole fan-out so the network layer can
price every receiver of a broadcast in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class RadioModel:
    """Radio parameters shared by every node.

    Parameters
    ----------
    range_m:
        Unit-disk transmission range in metres.
    bandwidth_bps:
        Channel bit rate (802.11 basic rate: 2 Mb/s).
    phy_preamble_s:
        PHY preamble + PLCP header airtime (802.11 long preamble:
        192 µs).
    mac_overhead_bytes:
        Link-layer framing bytes added to every payload (802.11 data
        header + FCS ≈ 34 B).
    prop_speed_mps:
        Signal propagation speed.
    """

    range_m: float = 250.0
    bandwidth_bps: float = 2e6
    phy_preamble_s: float = 192e-6
    mac_overhead_bytes: int = 34
    prop_speed_mps: float = 3e8
    #: Per-payload-size airtime cache.  Excluded from equality/hash so
    #: two models with identical parameters still compare equal; the
    #: dict is mutated in place, which a frozen dataclass permits.
    _tx_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.range_m <= 0 or self.bandwidth_bps <= 0:
            raise ValueError(f"invalid radio parameters: {self!r}")

    def in_range(self, distance_m: float) -> bool:
        """Unit-disk connectivity predicate."""
        return distance_m <= self.range_m

    def in_range_mask(self, distances_m: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`in_range` over a distance array."""
        return distances_m <= self.range_m

    def tx_time(self, payload_bytes: int) -> float:
        """Airtime of one frame carrying ``payload_bytes`` (memoised)."""
        t = self._tx_cache.get(payload_bytes)
        if t is None:
            bits = (payload_bytes + self.mac_overhead_bytes) * 8
            t = self.phy_preamble_s + bits / self.bandwidth_bps
            self._tx_cache[payload_bytes] = t
        return t

    def tx_time_batch(self, payload_bytes: np.ndarray) -> np.ndarray:
        """Airtimes for an array of payload sizes.

        Element-by-element this is the same two-term IEEE expression as
        :meth:`tx_time` (integer-to-float conversion, one divide, one
        add), so the vector result is bit-identical to mapping the
        scalar method.
        """
        bits = (np.asarray(payload_bytes, dtype=np.float64)
                + self.mac_overhead_bytes) * 8.0
        return self.phy_preamble_s + bits / self.bandwidth_bps

    def propagation_delay(self, distance_m: float) -> float:
        """One-way propagation delay over ``distance_m``."""
        return distance_m / self.prop_speed_mps

    def propagation_delay_batch(self, distances_m: np.ndarray) -> np.ndarray:
        """One-way propagation delays for a distance vector.

        A single elementwise divide — IEEE-identical to the scalar
        method applied per element.
        """
        return np.asarray(distances_m, dtype=np.float64) / self.prop_speed_mps
