"""Hello-beacon neighbor discovery (paper §2.2).

"Each node periodically piggybacks its updated position and pseudonym
to 'hello' messages, and sends the messages to its neighbors.  Also,
every node maintains a routing table that keeps its neighbors'
pseudonyms associated with their locations."

Entries carry the advertised pseudonym, position, and public key as of
the last beacon, so forwarding decisions are made on (slightly stale)
advertised state, not oracle truth — staleness grows with node speed,
which is what degrades routing at 8 m/s in Figs. 15b/16b.

``link_address`` is the simulator's stand-in for "the radio address the
beacon came from": protocols may use it to hand a frame back to the
link layer, but must never treat it as an identity (the pseudonym is
the identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import Iterable

import numpy as np

from repro.crypto.keys import PublicKey
from repro.geometry.primitives import Point


@dataclass(slots=True)
class NeighborEntry:
    """One row of a node's neighbor table."""

    link_address: int
    pseudonym: bytes
    position: Point
    public_key: PublicKey
    last_seen: float


class NeighborTable:
    """A node's view of its one-hop neighborhood.

    Parameters
    ----------
    ttl:
        Entries older than ``ttl`` seconds are treated as gone (the
        neighbor moved away or died); typically 2-3 hello intervals.
    """

    def __init__(self, ttl: float = 3.0) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl!r}")
        self.ttl = ttl
        self._entries: dict[int, NeighborEntry] = {}
        # Address-sorted row cache, invalidated on any write.  Routing
        # decisions call ``live_entries`` far more often than beacons
        # rewrite the table, so the sort must not rerun per decision.
        self._sorted: list[NeighborEntry] | None = None
        # Column view of the sorted rows (positions, last-seen) for the
        # batched forwarding path; rebuilt lazily alongside ``_sorted``.
        self._columns: tuple | None = None
        # Deferred hello ingests: (entries, idx, lo, hi, base) slices
        # queued by ``ingest_shared`` and materialised — in arrival
        # order, so later rounds overwrite earlier ones exactly as an
        # eager store would — on the first read or eager write.  Most
        # nodes in a large field forward nothing between rounds, so
        # their rows are never materialised at all.
        self._pending: list[tuple] = []

    #: Pending depth from which the dedup merge beats sequential
    #: application (measured crossover ≈ 6 slices at ~40-row rounds).
    _DEDUP_MIN = 7

    def _apply_pending(self) -> None:
        """Materialise queued ``ingest_shared`` slices in arrival order."""
        table = self._entries
        pending = self._pending
        if len(pending) >= self._DEDUP_MIN:
            addrs0 = pending[0][5]
            if addrs0 is not None and all(
                p[5] is addrs0 and p[4] == 0 for p in pending
            ):
                # Cross-round dedup: every queued slice indexes the same
                # shared per-round address list (the hello round keeps
                # ``tx_list`` object-identical while the active set is
                # unchanged), and each address appears at most once per
                # slice, so sequential oldest-to-newest application just
                # means "the newest slice's row wins per address".
                # Concatenating newest-first and taking ``np.unique``'s
                # first occurrence selects exactly those rows while
                # storing each address once instead of once per round.
                # Store *order* differs from sequential application, but
                # dict order is unobservable here: every read sorts by
                # address (see ``live_entries``/``columns``).
                rev = pending[::-1]
                parts = [p[1][p[2]:p[3]] for p in rev]
                uniq, first = np.unique(
                    np.concatenate(parts), return_index=True
                )
                bounds = np.cumsum([len(x) for x in parts])
                src = np.searchsorted(bounds, first, side="right")
                for t, s in zip(uniq.tolist(), src.tolist()):
                    table[addrs0[t]] = rev[s][0][t]
                pending.clear()
                return
        for entries, idx, lo, hi, base, addrs in pending:
            if addrs is not None and base == 0:
                # Hot path: gather addresses and rows with one C-level
                # itemgetter each and merge via ``dict.update`` — same
                # stores, same order, no per-row interpreter steps.
                # ``idx`` may be a numpy array (the hello round shares
                # one pair array per round); the slice is materialised
                # here, per applied slice, not for the whole round.
                if hi - lo > 1:
                    rows = idx[lo:hi]
                    if type(rows) is not list:
                        rows = rows.tolist()
                    g = itemgetter(*rows)
                    table.update(zip(g(addrs), g(entries)))
                else:
                    t = idx[lo]
                    table[addrs[t]] = entries[t]
            elif addrs is None:
                for t in idx[lo:hi]:
                    e = entries[base + t]
                    table[e.link_address] = e
            else:
                for t in idx[lo:hi]:
                    table[addrs[t]] = entries[base + t]
        self._pending.clear()

    def update(self, entry: NeighborEntry) -> None:
        """Insert or refresh the row for ``entry.link_address``."""
        if self._pending:
            self._apply_pending()
        self._entries[entry.link_address] = entry
        self._sorted = None
        self._columns = None

    def bulk_update(self, entries: Iterable[NeighborEntry]) -> None:
        """Insert or refresh many rows with one cache invalidation.

        The hello round hands every receiver its in-range transmitters'
        shared per-round rows through this path.
        """
        if self._pending:
            self._apply_pending()
        table = self._entries
        for entry in entries:
            table[entry.link_address] = entry
        self._sorted = None
        self._columns = None

    #: Queued ingest slices tolerated before an eager merge bounds the
    #: held references (≈ one slice tuple per hello round).
    _PENDING_MAX = 32

    def ingest_shared(
        self,
        entries: list[NeighborEntry],
        idx: "list[int] | np.ndarray",
        lo: int,
        hi: int,
        base: int,
        addrs: list[int] | None = None,
    ) -> None:
        """Store rows ``entries[base + t] for t in idx[lo:hi]``.

        The vectorised hello round hands every receiver a slice of one
        shared per-round index list.  The slice is queued, not stored:
        materialisation happens on the table's next read (or eager
        write), so nodes that make no forwarding decision between
        rounds — the vast majority of a 10k-node field — never pay the
        per-row dict stores at all.  Equivalent to ``bulk_update`` over
        the same rows: application order is arrival order, so a later
        round's row for the same address wins exactly as it would
        eagerly.  ``addrs``, when given, carries
        ``entries[base + t].link_address`` as ``addrs[t]`` (one shared
        per-round list), sparing the materialisation loop an attribute
        load per row.
        """
        pending = self._pending
        if len(pending) >= self._PENDING_MAX:
            self._apply_pending()
        pending.append((entries, idx, lo, hi, base, addrs))
        self._sorted = None
        self._columns = None

    def remove(self, link_address: int) -> None:
        """Drop a row (e.g., after repeated link-layer failures)."""
        if self._pending:
            self._apply_pending()
        if self._entries.pop(link_address, None) is not None:
            self._sorted = None
            self._columns = None

    def live_entries(self, now: float) -> list[NeighborEntry]:
        """All non-expired rows, sorted by link address (deterministic)."""
        if self._pending:
            self._apply_pending()
        rows = self._sorted
        if rows is None:
            rows = [e for _, e in sorted(self._entries.items())]
            self._sorted = rows
        cutoff = now - self.ttl
        return [e for e in rows if e.last_seen >= cutoff]

    def columns(self) -> tuple[list[NeighborEntry], np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, xs, ys, last_seen)`` over *all* rows, address-sorted.

        The arrays are aligned with ``rows`` and cached between writes,
        so the batched forwarding path (see
        :func:`repro.routing.gpsr.next_hop_greedy_batched`) can compute
        distances for a whole neighborhood in one vector pass instead
        of touching each row's ``Point``.  Liveness is *not* applied
        here — callers mask with ``last_seen >= now - ttl``, which is
        exactly :meth:`live_entries`'s cutoff predicate.
        """
        if self._pending:
            self._apply_pending()
        cols = self._columns
        if cols is None or self._sorted is None:
            rows = self._sorted
            if rows is None:
                rows = [e for _, e in sorted(self._entries.items())]
                self._sorted = rows
            xs = np.array([e.position.x for e in rows], dtype=np.float64)
            ys = np.array([e.position.y for e in rows], dtype=np.float64)
            seen = np.array([e.last_seen for e in rows], dtype=np.float64)
            cols = (rows, xs, ys, seen)
            self._columns = cols
        return cols

    def get(self, link_address: int, now: float) -> NeighborEntry | None:
        """The live row for ``link_address``, or ``None``."""
        if self._pending:
            self._apply_pending()
        e = self._entries.get(link_address)
        if e is None or e.last_seen < now - self.ttl:
            return None
        return e

    def purge(self, now: float) -> int:
        """Physically delete expired rows; returns how many were removed."""
        if self._pending:
            self._apply_pending()
        cutoff = now - self.ttl
        dead = [a for a, e in self._entries.items() if e.last_seen < cutoff]
        for a in dead:
            del self._entries[a]
        if dead:
            self._sorted = None
            self._columns = None
        return len(dead)

    def __len__(self) -> int:
        if self._pending:
            self._apply_pending()
        return len(self._entries)
