"""The Network container: nodes + radio + MAC + event engine.

``Network`` is the simulation's link layer.  It owns the node array,
maintains time-indexed position snapshots (with a uniform-grid spatial
index), tracks concurrent in-flight transmissions for MAC contention,
and exposes exactly two communication primitives to protocols:

* :meth:`unicast` — an acknowledged one-hop frame exchange, and
* :meth:`local_broadcast` — an unacknowledged one-hop broadcast,

plus hello-beacon neighbor discovery.  Everything above (GPSR, ALERT,
ALARM, AO2P) is built from these.
"""

from __future__ import annotations

import heapq
from itertools import repeat
from typing import Callable, Sequence

import numpy as np

from repro.crypto.keys import generate_keypair
from repro.geometry.field import Field
from repro.geometry.primitives import Point, Rect
from repro.geometry.spatial_index import GridIndex
from repro.mobility.base import MobilityModel, SnapshotInterpolator
from repro.net.mac import _BATCH_MIN, Mac80211Dcf, MacOutcome
from repro.net.neighbor_table import NeighborEntry, NeighborTable
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.net.radio import RadioModel
from repro.sim.engine import Engine
from repro.sim.process import PeriodicTask

#: Called after every link-layer exchange: (flow_id, attempts, success).
TxListener = Callable[[int | None, int, bool], None]

#: Peak element budget for one chunk of the batched hello-round
#: pairwise in-range matrix (chunk_rows × n_nodes); 256k float64
#: pairs keeps the per-chunk scratch around 4 MB.
_PAIR_CHUNK_ELEMS = 262_144

#: Node count at which the hello round switches from the all-pairs
#: chunked in-range pass (O(N²) arithmetic, but one tight vector op at
#: paper scale) to the cell-grouped pass over the spatial index's
#: buckets (O(N × local density) arithmetic plus per-cell dispatch).
#: Measured crossover on this kernel sits near 500 nodes.
_GROUPED_HELLO_MIN = 512


def _event_category(packet: Packet) -> str:
    """Engine event-counter category for a frame delivery."""
    return "data" if packet.kind is PacketKind.DATA else "control"


class Network:
    """A MANET instance.

    Parameters
    ----------
    engine:
        The discrete-event engine driving this network.
    field:
        Deployment area.
    mobility_factory:
        ``(node_id, rng) -> MobilityModel`` builder, called once per
        node with a per-node random stream.
    n_nodes:
        Number of nodes.
    radio:
        Physical-layer parameters (250 m unit disk by default).
    hello_interval:
        Beacon period, seconds.
    snapshot_resolution:
        Maximum staleness of the cached position snapshot; at the
        paper's top speed (8 m/s) the default 0.2 s bounds the
        position error to 1.6 m, negligible against a 250 m radius.
    keypair_bits:
        RSA modulus width for node keypairs (functional toy keys;
        realistic key *cost* is charged by the crypto cost model).
    carrier_sense_factor:
        Carrier-sense radius as a multiple of the transmission range
        (802.11's ~2.2× is the default) for the contention-load count.
    initial_positions:
        Optional ``(n_nodes, 2)`` t=0 deployment (e.g. a shared-memory
        view handed down by the sweep executor).  The array is copied
        and pre-seeds the spatial index, so the first snapshot refresh
        adopts positions incrementally instead of building the index
        from scratch.  Results are identical with or without it — even
        a stale array only costs a rebuild, never correctness.
    """

    def __init__(
        self,
        engine: Engine,
        field: Field,
        mobility_factory: Callable[[int, np.random.Generator], MobilityModel],
        n_nodes: int,
        radio: RadioModel | None = None,
        hello_interval: float = 1.0,
        snapshot_resolution: float = 0.2,
        keypair_bits: int = 64,
        carrier_sense_factor: float = 2.2,
        neighbor_ttl: float | None = None,
        initial_positions: np.ndarray | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.engine = engine
        self.field = field
        self.radio = radio if radio is not None else RadioModel()
        self.hello_interval = hello_interval
        self.snapshot_resolution = snapshot_resolution
        self.cs_range = carrier_sense_factor * self.radio.range_m
        self.mac = Mac80211Dcf(self.radio, engine.rng.stream("mac"))
        ttl = neighbor_ttl if neighbor_ttl is not None else 3.0 * hello_interval

        key_rng = engine.rng.stream("keys")
        self.nodes: list[Node] = []
        for i in range(n_nodes):
            node_rng = engine.rng.stream(f"node-{i}")
            mobility = mobility_factory(i, node_rng)
            keypair = generate_keypair(key_rng, bits=keypair_bits)
            self.nodes.append(
                Node(i, mobility, keypair, node_rng, neighbor_ttl=ttl)
            )

        # Position snapshot cache.  ``_snapshot_positions`` is always
        # the array the grid index was built over; ``_snapshot_scratch``
        # is a second (N, 2) buffer the next refresh interpolates into,
        # so old and new positions can be diffed without allocating.
        self._snapshot_time: float = -1.0
        # Per-node long-term public keys (keypairs never rotate), built
        # lazily for the hello round's row construction.
        self._publics: list | None = None
        self._snapshot_positions: np.ndarray | None = None
        self._snapshot_scratch: np.ndarray | None = None
        self._snapshot_index: GridIndex | None = None
        self._snapshot_force_rebuild = False
        if initial_positions is not None:
            seed_pos = np.array(initial_positions, dtype=np.float64)
            if seed_pos.shape != (n_nodes, 2):
                raise ValueError(
                    f"initial_positions must have shape ({n_nodes}, 2), "
                    f"got {seed_pos.shape}"
                )
            # ``_snapshot_time`` stays stale (-1.0): the first
            # ``snapshot()`` call interpolates real positions and
            # incrementally adopts them into this pre-built index.
            self._snapshot_index = GridIndex(seed_pos, self.radio.range_m)
            self._snapshot_positions = seed_pos
        self._mobilities = [node.mobility for node in self.nodes]
        # Segment-cached batch interpolator: bit-identical to
        # positions_at() but only consults models whose trajectory leg
        # expired since the previous refresh.
        self._interpolator = SnapshotInterpolator(self._mobilities)
        #: snapshot maintenance counters (diagnostics / benchmarks)
        self.snapshot_rebuilds = 0
        self.snapshot_incremental = 0

        # Active-node mask, invalidated by node fail()/restore() hooks
        # so neighbor queries need not re-check every hit's flag.
        self._active_mask: np.ndarray | None = None
        # (mask, tx_ids, tx_list) of the last hello round, keyed by the
        # mask's identity; see _emit_hello_round.
        self._hello_tx_cache: tuple | None = None
        # Reused all-population buffer for hello-round interpolation.
        self._hello_pos_buf: np.ndarray | None = None
        for node in self.nodes:
            node.on_state_change = self._on_node_state_change

        # In-flight transmissions for contention, kept as a min-heap on
        # end time: (end_time, x, y).  Expired entries pop off the
        # front instead of rebuilding the list on every load query.
        self._in_flight: list[tuple[float, float, float]] = []

        #: pluggable metrics sink
        self.tx_listener: TxListener | None = None
        self._hello_tasks: list[PeriodicTask] = []
        #: counters
        self.hello_tx = 0
        self.unicast_tx = 0
        self.broadcast_tx = 0
        #: cumulative radio airtime (seconds) for energy accounting
        self.airtime_tx_s = 0.0
        self.airtime_rx_s = 0.0
        #: size of a hello beacon frame on the air, bytes
        self.hello_size_bytes = 32

    # ------------------------------------------------------------------
    # positions and snapshots
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes in the network."""
        return len(self.nodes)

    def position_of(self, node_id: int) -> Point:
        """Exact position of a node at the current simulation time."""
        return self.nodes[node_id].position(self.engine.now)

    def batch_positions(
        self, t: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """All-population positions at ``t`` via the cached interpolator.

        Bit-identical to ``positions_at`` over every node's mobility
        model, but only models whose cached trajectory leg expired are
        consulted in Python — the interpolation itself is a handful of
        whole-array operations.  Shared by the snapshot path, hello
        rounds, and location-service write rounds.
        """
        return self._interpolator(t, out=out)

    #: Incremental-update cutover: above this fraction of cell-crossing
    #: nodes a from-scratch rebuild is cheaper than per-node rebucketing.
    _REBUCKET_FRACTION = 0.3

    def snapshot(self) -> tuple[np.ndarray, GridIndex]:
        """Cached (positions, spatial index) at the current time.

        Refreshed when the cache is ``snapshot_resolution`` seconds old
        or older (so ``snapshot_resolution=0.0`` means "always fresh").
        A refresh hands the newly interpolated positions to
        :meth:`GridIndex.adopt_positions`, which rebuckets only nodes
        that crossed a cell boundary, falling back to a from-scratch
        rebuild when more than ``_REBUCKET_FRACTION`` of the nodes
        crossed cells or a node changed state since the last refresh.
        Both paths yield result-identical indices.
        """
        now = self.engine.now
        index = self._snapshot_index
        if (
            index is not None
            and now - self._snapshot_time < self.snapshot_resolution
        ):
            assert self._snapshot_positions is not None
            return self._snapshot_positions, index

        # Batch query: one vectorised interpolation over all nodes
        # (node i's mobility fills row i) into the spare buffer, so the
        # cached array (still owned by the index) survives for diffing.
        n = self.n_nodes
        scratch = self._snapshot_scratch
        if scratch is None or scratch.shape != (n, 2):
            scratch = np.empty((n, 2), dtype=np.float64)
        pos = self._interpolator(now, out=scratch)

        old = self._snapshot_positions
        if (
            index is not None
            and not self._snapshot_force_rebuild
            and old is not None
            and len(index) == n
        ):
            crossed = index.adopt_positions(
                pos, max_crossed=int(self._REBUCKET_FRACTION * n)
            )
            if crossed >= 0:
                # The index adopted ``pos``; the previous array becomes
                # the next refresh's interpolation buffer.
                self.snapshot_incremental += 1
                self._snapshot_positions = pos
                self._snapshot_scratch = old
                self._snapshot_time = now
                return pos, index

        self._snapshot_index = GridIndex(pos, self.radio.range_m)
        self.snapshot_rebuilds += 1
        # The index took ownership of ``pos``; recycle the previous
        # array (if any) as the next refresh's interpolation buffer.
        self._snapshot_positions = pos
        self._snapshot_scratch = old
        self._snapshot_time = now
        self._snapshot_force_rebuild = False
        return pos, self._snapshot_index

    def _on_node_state_change(self, _node: Node) -> None:
        self._active_mask = None
        # Conservative: the next snapshot refresh rebuilds the index
        # from scratch instead of diffing (the cache itself stays valid
        # until it ages out, exactly as before).
        self._snapshot_force_rebuild = True

    def active_mask(self) -> np.ndarray:
        """Boolean mask of live nodes, cached until a node flips state."""
        if self._active_mask is None:
            self._active_mask = np.fromiter(
                (n.active for n in self.nodes), dtype=bool, count=self.n_nodes
            )
        return self._active_mask

    def neighbors_of(self, node_id: int) -> list[int]:
        """Oracle: live node ids within radio range now (excl. self)."""
        _, index = self.snapshot()
        p = self.position_of(node_id)
        hits = index.query_radius(p.x, p.y, self.radio.range_m)
        live = hits[self.active_mask()[hits]]
        return [int(i) for i in live if i != node_id]

    def nodes_in_rect(self, rect: Rect) -> list[int]:
        """Oracle: node ids currently inside ``rect`` (half-open)."""
        _, index = self.snapshot()
        return [int(i) for i in index.query_rect(rect.x0, rect.y0, rect.x1, rect.y1)]

    def node_nearest_to(self, point: Point, exclude: int | None = None) -> int:
        """Oracle: id of the node nearest to ``point``."""
        _, index = self.snapshot()
        return index.nearest(point.x, point.y, exclude=exclude)

    # ------------------------------------------------------------------
    # contention load
    # ------------------------------------------------------------------
    def _local_load(self, around: Point) -> float:
        """Concurrent in-flight transmissions within carrier sense."""
        now = self.engine.now
        in_flight = self._in_flight
        # Expired transmissions sit at the heap front; pop them off.
        while in_flight and in_flight[0][0] <= now:
            heapq.heappop(in_flight)
        cs2 = self.cs_range * self.cs_range
        ax = around.x
        ay = around.y
        count = 0
        for _, x, y in in_flight:
            dx = x - ax
            dy = y - ay
            if dx * dx + dy * dy <= cs2:
                count += 1
        return float(count)

    def _register_tx(self, origin: Point, duration: float) -> None:
        heapq.heappush(
            self._in_flight, (self.engine.now + duration, origin.x, origin.y)
        )

    def _local_loads_batch(self, around: Sequence[Point]) -> np.ndarray:
        """Vectorised :meth:`_local_load` for many query points at once.

        One expiry sweep (all queries share ``now``), then one pairwise
        pass over the surviving in-flight entries — the same
        ``dx·dx + dy·dy <= cs²`` float64 predicate as the scalar loop,
        so every count is bit-identical.  Returns int64 counts; callers
        convert to float exactly as ``_local_load`` does.
        """
        now = self.engine.now
        in_flight = self._in_flight
        while in_flight and in_flight[0][0] <= now:
            heapq.heappop(in_flight)
        k = len(around)
        if not in_flight:
            return np.zeros(k, dtype=np.int64)
        qx = np.fromiter((p.x for p in around), dtype=np.float64, count=k)
        qy = np.fromiter((p.y for p in around), dtype=np.float64, count=k)
        flight = np.array(in_flight, dtype=np.float64)
        dx = flight[:, 1][:, None] - qx
        dy = flight[:, 2][:, None] - qy
        dx *= dx
        dy *= dy
        dx += dy
        cs2 = self.cs_range * self.cs_range
        return (dx <= cs2).sum(axis=0)

    # ------------------------------------------------------------------
    # communication primitives
    # ------------------------------------------------------------------
    def unicast(
        self,
        sender_id: int,
        receiver_id: int,
        packet: Packet,
        on_delivered: Callable[[Node], None] | None = None,
        on_failed: Callable[[str], None] | None = None,
        flow: int | None = None,
        overhear_fork: tuple[int, Packet] | None = None,
    ) -> None:
        """One-hop acknowledged frame exchange.

        Failure modes: the receiver is out of range (stale neighbor
        table) or the MAC retry limit is exhausted.  Delivery invokes
        the receiver's protocol hook and then ``on_delivered``; failure
        invokes ``on_failed(reason)`` after the wasted airtime elapses.

        ``overhear_fork`` optionally names a promiscuous listener: if
        that ``(node_id, prepared_packet)`` target is in range of the
        sender when the frame goes on the air, the prepared packet is
        delivered to it with the same MAC timing as the exchange —
        radio frames are broadcast by nature, ACKed or not.
        """
        if sender_id == receiver_id:
            raise ValueError("unicast to self")
        sender = self.nodes[sender_id]
        receiver = self.nodes[receiver_id]
        now = self.engine.now
        spos = sender.position(now)
        rpos = receiver.position(now)
        dist = spos.distance_to(rpos)
        packet.record_visit(sender_id)

        airtime = self.radio.tx_time(packet.size_bytes)
        if not receiver.active:
            # Compromised / disabled node: frames go unacknowledged.
            outcome = MacOutcome(False, airtime, 1)
            reason = "dead-receiver"
        elif not self.radio.in_range(dist):
            # All retries burn airtime with no receiver in range.
            outcome = MacOutcome(False, airtime, 1)
            reason = "out-of-range"
        else:
            outcome = self.mac.unicast(
                packet.size_bytes, dist, self._local_load(spos), flow=flow
            )
            reason = "retry-exhausted"

        sender.tx_count += outcome.attempts
        packet.transmissions += outcome.attempts
        self.unicast_tx += outcome.attempts
        self.airtime_tx_s += outcome.attempts * airtime
        if outcome.success:
            self.airtime_rx_s += airtime
        self._register_tx(spos, outcome.delay_s)
        if self.tx_listener is not None:
            self.tx_listener(flow, outcome.attempts, outcome.success)

        category = _event_category(packet)
        if outcome.success:
            if on_delivered is None:
                # Typed delivery record: the dominant path schedules
                # ``receiver.deliver(packet)`` with no closure at all.
                self.engine.schedule_deliver(
                    now + outcome.delay_s, receiver, packet,
                    category=category,
                )
            else:
                def _deliver() -> None:
                    receiver.deliver(packet)
                    on_delivered(receiver)

                self.engine.schedule_in(
                    outcome.delay_s, _deliver,
                    category=category, cancellable=False,
                )
        elif on_failed is not None:
            self.engine.schedule_in(
                outcome.delay_s, lambda r=reason: on_failed(r),
                category=category, cancellable=False,
            )

        if overhear_fork is not None:
            listener_id, prepared = overhear_fork
            if listener_id != sender_id and listener_id != receiver_id:
                listener = self.nodes[listener_id]
                if listener.active and self.radio.in_range(
                    spos.distance_to(listener.position(now))
                ):
                    self.engine.schedule_deliver(
                        now + outcome.delay_s, listener, prepared,
                        category=_event_category(prepared),
                    )

    def local_broadcast(
        self,
        sender_id: int,
        packet: Packet,
        on_delivered: Callable[[Node, Packet], None] | None = None,
        flow: int | None = None,
        restrict_to: Sequence[int] | None = None,
    ) -> list[int]:
        """One-hop unacknowledged broadcast.

        Every in-range node receives a :meth:`~repro.net.packet.Packet.fork`
        of ``packet`` — its own trace list *and* its own header copy,
        so a receiver mutating per-hop routing state cannot corrupt a
        sibling branch.  ``restrict_to``
        optionally filters the receiver set by node id — used by
        ALERT's destination-zone delivery where only zone members
        process the frame (others drop it at the link layer).

        Returns the list of receiver ids (empty if the frame collided).
        """
        sender = self.nodes[sender_id]
        now = self.engine.now
        spos = sender.position(now)
        packet.record_visit(sender_id)
        outcome = self.mac.broadcast(packet.size_bytes, self._local_load(spos))
        return self._finish_broadcast(
            sender_id, spos, packet, outcome, on_delivered, flow, restrict_to
        )

    def _finish_broadcast(
        self,
        sender_id: int,
        spos: Point,
        packet: Packet,
        outcome: MacOutcome,
        on_delivered: Callable[[Node, Packet], None] | None,
        flow: int | None,
        restrict_to: Sequence[int] | None,
    ) -> list[int]:
        """Everything after the MAC exchange of one broadcast: counters,
        in-flight registration, listener, and the receiver fan-out —
        shared verbatim by :meth:`local_broadcast` and the batched
        :meth:`broadcast_fanout`."""
        now = self.engine.now
        sender = self.nodes[sender_id]
        sender.tx_count += outcome.attempts
        packet.transmissions += outcome.attempts
        self.broadcast_tx += outcome.attempts
        self.airtime_tx_s += self.radio.tx_time(packet.size_bytes)
        self._register_tx(spos, outcome.delay_s)
        if self.tx_listener is not None:
            self.tx_listener(flow, outcome.attempts, outcome.success)
        if not outcome.success:
            return []

        receivers = self.neighbors_of(sender_id)
        self.airtime_rx_s += self.radio.tx_time(packet.size_bytes) * len(receivers)
        if restrict_to is not None:
            allowed = set(restrict_to)
            receivers = [r for r in receivers if r in allowed]

        category = _event_category(packet)
        t_deliver = now + outcome.delay_s
        if on_delivered is None:
            # Fast lane for the dominant fire-and-forget fan-out: the
            # whole co-temporal receiver block rides one batched
            # delivery record (one heap entry, one reserved seq per
            # receiver — ordering identical to per-receiver records).
            if receivers:
                nodes = self.nodes
                self.engine.schedule_deliver_batch(
                    t_deliver,
                    [nodes[rid] for rid in receivers],
                    [packet.fork() for _ in receivers],
                    category=category,
                )
            return receivers
        schedule = self.engine.schedule_at
        for rid in receivers:
            node = self.nodes[rid]
            branch = packet.fork()

            def _deliver(n: Node = node, p: Packet = branch) -> None:
                n.deliver(p)
                on_delivered(n, p)

            schedule(
                t_deliver, _deliver,
                category=category, cancellable=False,
            )
        return receivers

    def broadcast_fanout(
        self,
        txs: Sequence[tuple[int, Packet, int | None]],
        on_delivered: Callable[[Node, Packet], None] | None = None,
        restrict_to: Sequence[int] | None = None,
    ) -> list[list[int]]:
        """A fan-out of :meth:`local_broadcast` calls, resolved in batch.

        ``txs`` is a sequence of ``(sender_id, packet, flow)`` triples
        sharing the current instant (e.g. ALERT's holder-release storm).
        Above the MAC's ``_BATCH_MIN`` the fan-out is priced in one
        pass: sender loads come from a single vectorised sweep over the
        in-flight heap plus an incremental cross-term — sender *j*'s
        own transmission counts toward every later sender *k* within
        carrier sense, exactly as the scalar sequence of
        ``_local_load`` / ``_register_tx`` calls would observe — and
        the MAC resolves all contention draws through
        :meth:`Mac80211Dcf.broadcast_batch`'s scalar-replay chain.
        Per-sender bookkeeping and receiver scheduling then run in the
        same ascending order as the scalar loop, so counters, the
        in-flight heap, engine sequence numbers, and every golden trace
        are bit-identical (RNG streams are per-subsystem, so reordering
        MAC draws relative to *other* streams' draws is stream-neutral).

        Returns one receiver list per transmission, in ``txs`` order.
        """
        if len(txs) < _BATCH_MIN:
            return [
                self.local_broadcast(
                    sender_id, packet, on_delivered, flow, restrict_to
                )
                for sender_id, packet, flow in txs
            ]
        now = self.engine.now
        nodes = self.nodes
        positions = [nodes[s].position(now) for s, _, _ in txs]
        for sender_id, packet, _ in txs:
            packet.record_visit(sender_id)
        loads = self._local_loads_batch(positions)
        # Incremental cross-term: earlier fan-out members' transmissions
        # are in flight (their end times exceed ``now``) by the time a
        # later member senses the channel.
        k = len(txs)
        px = np.fromiter((p.x for p in positions), dtype=np.float64, count=k)
        py = np.fromiter((p.y for p in positions), dtype=np.float64, count=k)
        dx = px[:, None] - px
        dy = py[:, None] - py
        dx *= dx
        dy *= dy
        dx += dy
        cs2 = self.cs_range * self.cs_range
        loads = loads + np.tril(dx <= cs2, -1).sum(axis=1)
        outcomes = self.mac.broadcast_batch(
            [packet.size_bytes for _, packet, _ in txs],
            loads.astype(np.float64),
        )
        return [
            self._finish_broadcast(
                sender_id, positions[i], packet, outcomes[i],
                on_delivered, flow, restrict_to,
            )
            for i, (sender_id, packet, flow) in enumerate(txs)
        ]

    # ------------------------------------------------------------------
    # hello beacons
    # ------------------------------------------------------------------
    def start_hello(self) -> None:
        """Start periodic hello beacons on every node.

        Beacons are processed as one *round* per interval: every node
        emits once and neighbor tables update from a single position
        snapshot.  (Real beacons are jittered within the interval to
        avoid collisions; since hello frames are not contended through
        the MAC model, collapsing a round into one event is
        behaviourally identical and orders of magnitude cheaper — one
        snapshot instead of N per interval.)  A warm-up round at t≈0
        populates the tables so the first data packets can route.
        """
        rng = self.engine.rng.stream("hello")
        offset = float(rng.uniform(0.05, 0.2))
        task = PeriodicTask(
            self.engine,
            self.hello_interval,
            self._emit_hello_round,
            jitter=0.1 * self.hello_interval,
            rng=rng,
            start_offset=offset,
            category="hello",
        )
        self._hello_tasks.append(task)

    def _emit_hello_round(self) -> None:
        """One beacon round: every live node advertises to its neighbors.

        Batched: the first transmitter's state is built exactly as the
        scalar sequence (pseudonym fuzz draw, then position/trajectory
        draw, then the round's snapshot refresh — where the scalar
        path's ``neighbors_of`` would refresh it); the remaining
        transmitters' pseudonyms are then drawn in ascending node order
        and their positions come from one vectorised pass — read
        straight off the snapshot when it was interpolated at exactly
        this instant (bit-identical to ``Trajectory.at``, and the
        refresh already extended every trajectory, so the scalar loop
        would have drawn nothing), else batch-interpolated via
        :func:`positions_at` over the same models in the same order
        (identical draw sequence).  Per node the stream order is
        pseudonym-then-position, as in the scalar loop; streams are
        per-node (per-group for RPGM, which both passes visit in
        ascending order), so cross-node interleaving is draw-order
        neutral.  The in-range test runs as a pairwise array pass
        instead of one grid query per transmitter, and receiver tables
        ingest each round's rows through
        :meth:`NeighborTable.ingest_shared`.  Below
        ``_GROUPED_HELLO_MIN`` transmitters the pass is all-pairs
        (chunked); above it, transmitters are grouped by grid cell via
        :meth:`GridIndex.grouped_candidates` so the arithmetic scales
        with local density instead of N².  Either pass repeats
        ``GridIndex.query_radius``'s arithmetic (the candidate set is a
        superset filtered by this exact predicate), so the accepted
        pairs — and therefore every metric — are bit-identical to the
        scalar round, kept alongside as
        :meth:`_emit_hello_round_scalar`.
        """
        now = self.engine.now
        nodes = self.nodes
        active = self.active_mask()
        # ``active_mask`` caches its array until a node flips state, so
        # object identity means "same active set as last round" — reuse
        # the derived id arrays, and (more importantly) keep ``tx_list``
        # the *same object* across rounds: pending ingest slices that
        # share one address list can be merged with cross-round dedup
        # (see ``NeighborTable._apply_pending``).
        cached = self._hello_tx_cache
        if cached is not None and cached[0] is active:
            tx_ids, tx_list = cached[1], cached[2]
        else:
            tx_ids = np.flatnonzero(active)
            tx_list = tx_ids.tolist()
            self._hello_tx_cache = (active, tx_ids, tx_list)
        n_tx = int(tx_ids.size)
        if n_tx == 0:
            return
        hello_air = self.radio.tx_time(self.hello_size_bytes)
        # First transmitter exactly as the scalar sequence: entry built
        # (pseudonym draw, then position draw), then the round's
        # snapshot refresh.
        i0 = tx_list[0]
        node0 = nodes[i0]
        first = NeighborEntry(
            link_address=i0,
            pseudonym=node0.pseudonym_at(now),
            position=node0.position(now),
            public_key=node0.keypair.public,
            last_seen=now,
        )
        snap_pos, snap_index = self.snapshot()
        # Round counters in ascending order — the same sequence of
        # float adds as the per-transmitter loop.
        self.hello_tx += n_tx
        air = self.airtime_tx_s
        for i in tx_list:
            nodes[i].tx_count += 1
            air += hello_air
        self.airtime_tx_s = air
        rest = tx_list[1:]
        # Inlined ``pseudonym_at`` fast path: with a 30 s lifetime and
        # ~1 s rounds, almost no pseudonym rotates in a given round, so
        # the common case is one validity test and a digest read;
        # rotation falls back to the full call (same draws, same
        # manager state as the scalar path).
        pseudonyms = []
        _append = pseudonyms.append
        for i in rest:
            mgr = nodes[i].pseudonyms
            cur = mgr._current
            if cur is not None and cur.valid_at(now):
                _append(cur.digest)
            else:
                _append(mgr.current(now).digest)
        centers = np.empty((n_tx, 2), dtype=np.float64)
        p0 = first.position
        centers[0, 0] = p0.x
        centers[0, 1] = p0.y
        if rest:
            if self._snapshot_time == now:
                # The snapshot was interpolated at exactly this instant
                # (bit-identical to the trajectory read) and refreshing
                # it extended every trajectory through ``now`` — the
                # scalar position calls would replay these values with
                # no further draws.
                centers[1:] = snap_pos[tx_ids[1:]]
            else:
                # Snapshot still fresh from an earlier instant: batch-
                # interpolate at ``now`` through the segment-cached
                # interpolator (bit-identical to per-model
                # ``positions_at``; stale legs extend in ascending node
                # order, the same per-stream draw sequence the scalar
                # loop and the next snapshot refresh would use).
                buf = self._hello_pos_buf
                if buf is None or buf.shape[0] != len(nodes):
                    buf = self._hello_pos_buf = np.empty(
                        (len(nodes), 2), dtype=np.float64
                    )
                self._interpolator(now, out=buf)
                centers[1:] = buf[tx_ids[1:]]
        # Positional construction (field order: link_address, pseudonym,
        # position, public_key, last_seen) builds every advertised row
        # of the round; ``map`` keeps the per-row work (one frozen
        # Point, one entry) inside C-level iteration.
        entries: list[NeighborEntry] = [first]
        if rest:
            publics = self._publics
            if publics is None:
                publics = self._publics = [
                    node.keypair.public for node in nodes
                ]
            entries += map(
                NeighborEntry,
                rest,
                pseudonyms,
                map(Point, centers[1:, 0].tolist(), centers[1:, 1].tolist()),
                [publics[i] for i in rest],
                repeat(now),
            )
        r = self.radio.range_m
        r2 = r * r
        round_rxs: list[np.ndarray] = []
        round_txs: list[np.ndarray] = []
        if n_tx >= _GROUPED_HELLO_MIN:
            # Cell-grouped pass: transmitters sharing a grid cell share
            # one candidate gather (their 3×3-cell neighborhood), so the
            # pairwise test touches ~local-density rows per transmitter
            # instead of all N.  The candidate set is a superset of
            # every true receiver (cell size ≥ radius), filtered by the
            # exact predicate below — accepted pairs are identical to
            # the all-pairs branch, and the airtime accumulation loop
            # afterwards adds per-transmitter terms in the same
            # ascending order the chunked branch uses.
            # With no failed nodes (the common case) the per-group
            # active filter is an identity copy — skip it wholesale.
            all_active = bool(active.all())
            for q, cand in snap_index.grouped_candidates(centers, r):
                if not all_active:
                    cand = cand[active[cand]]
                    if cand.size == 0:
                        continue
                # one fancy-index gather per group; the column views
                # reproduce the reference dx*dx + dy*dy term order
                sp = snap_pos[cand]
                cq = centers[q]
                dx = sp[:, :1] - cq[:, 0]
                dy = sp[:, 1:] - cq[:, 1]
                dx *= dx
                dy *= dy
                dx += dy
                rl, tl = np.nonzero(dx <= r2)
                if rl.size:
                    round_rxs.append(cand[rl])
                    round_txs.append(q[tl])
            # Self-pairs are excluded in ONE global compare over the
            # round's accepted pairs (each transmitter is its own
            # candidate exactly once), and the per-transmitter receiver
            # counts come from ONE bincount over the surviving pair
            # list — identical counts to per-group exclusion matrices
            # and scatters, without ~2 small-array passes per grid
            # cell.  Pair order within a receiver differs from the
            # ascending-transmitter order only across groups, which is
            # unobservable: each (rx, tx) pair appears once per round
            # and every table read sorts by address.
            if round_rxs:
                if len(round_rxs) == 1:
                    rxs, txs = round_rxs[0], round_txs[0]
                else:
                    rxs = np.concatenate(round_rxs)
                    txs = np.concatenate(round_txs)
                keep = rxs != tx_ids[txs]
                rxs = rxs[keep]
                txs = txs[keep]
                counts = np.bincount(txs, minlength=n_tx)
            else:
                rxs = txs = None
                counts = np.zeros(n_tx, dtype=np.int64)
            air_rx = self.airtime_rx_s
            for c in counts.tolist():
                air_rx += hello_air * c
            self.airtime_rx_s = air_rx
            if rxs is None or rxs.size == 0:
                return
            if len(round_rxs) > 1:
                # Narrow pair arrays: stable-sorting uint16 keys is ~4×
                # faster than int64 at these sizes (and the sort-order
                # gathers shrink with them); node ids below 65536 cast
                # losslessly, so the permutation is identical.
                if len(nodes) <= 0xFFFF:
                    rxs = rxs.astype(np.uint16)
                    txs = txs.astype(np.uint16)
                order = np.argsort(rxs, kind="stable")
                rxs = rxs[order]
                txs = txs[order]
        else:
            chunk = max(1, _PAIR_CHUNK_ELEMS // max(len(nodes), 1))
            sx = snap_pos[:, 0][:, None]
            sy = snap_pos[:, 1][:, None]
            for s in range(0, n_tx, chunk):
                e = min(s + chunk, n_tx)
                # Receiver-major (n_nodes, chunk) masks from 2D
                # temporaries: dx*dx + dy*dy is the same two-term sum
                # as the reference (d * d).sum(axis=-1) — identical
                # accepted pairs — without materialising a 3D
                # difference array.
                dx = sx - centers[s:e, 0]
                dy = sy - centers[s:e, 1]
                dx *= dx
                dy *= dy
                dx += dy
                in_range = dx <= r2
                in_range &= active[:, None]
                in_range[tx_ids[s:e], np.arange(e - s)] = False
                counts = in_range.sum(axis=0)
                air_rx = self.airtime_rx_s
                for c in counts.tolist():
                    air_rx += hello_air * c
                self.airtime_rx_s = air_rx
                rxs, txs = np.nonzero(in_range)
                if rxs.size == 0:
                    continue
                round_rxs.append(rxs)
                # Shift chunk-local column indices to round-global
                # entry indices so the whole round shares one index
                # space.
                round_txs.append(txs + s if s else txs)
            if not round_rxs:
                return
            # One ingest per receiver per *round*, not per chunk: large
            # fields split a round into many chunks, and each
            # receiver's per-chunk slice averages only a few rows — the
            # per-call dispatch dominates.  The stable receiver sort
            # preserves each receiver's ascending-transmitter row order
            # across chunks, and table content is order-independent
            # anyway (each (rx, tx) pair appears once per round; reads
            # sort by address).
            if len(round_rxs) == 1:
                rxs, txs = round_rxs[0], round_txs[0]
            else:
                rxs = np.concatenate(round_rxs)
                txs = np.concatenate(round_txs)
                keys = (
                    rxs.astype(np.uint16) if len(nodes) <= 0xFFFF else rxs
                )
                order = np.argsort(keys, kind="stable")
                rxs = rxs[order]
                txs = txs[order]
        # ``txs`` stays a numpy array: receivers that never read their
        # table before the slice is superseded never pay to materialise
        # their rows, so converting the whole round's pair list to
        # Python ints up front would mostly be wasted.
        starts = np.flatnonzero(np.diff(rxs)) + 1
        ends = starts.tolist()
        heads = rxs[[0, *ends]].tolist()
        ends.append(len(txs))
        a = 0
        # Inlined ``NeighborTable.ingest_shared`` (one slice append per
        # receiver, ~N of them per round): the method-call dispatch
        # alone is a measurable share of the round at large N.  Keep
        # the two paths in lockstep — this is the same queue append,
        # same eager-flush bound, same cache invalidation.
        pending_max = NeighborTable._PENDING_MAX
        for rid, b in zip(heads, ends):
            nt = nodes[rid].neighbors
            pending = nt._pending
            if len(pending) >= pending_max:
                nt._apply_pending()
            pending.append((entries, txs, a, b, 0, tx_list))
            nt._sorted = None
            nt._columns = None
            a = b

    def _emit_hello_round_scalar(self) -> None:
        """Reference scalar round (kept for parity tests/benchmarks)."""
        for node in self.nodes:
            if node.active:
                self._emit_hello(node)

    def stop_hello(self) -> None:
        """Stop all beacon tasks (end of a run)."""
        for task in self._hello_tasks:
            task.stop()
        self._hello_tasks.clear()

    def _emit_hello(self, node: Node) -> None:
        """Deliver one beacon: update in-range nodes' neighbor tables."""
        now = self.engine.now
        self.hello_tx += 1
        node.tx_count += 1
        hello_air = self.radio.tx_time(self.hello_size_bytes)
        self.airtime_tx_s += hello_air
        entry_template = NeighborEntry(
            link_address=node.id,
            pseudonym=node.pseudonym_at(now),
            position=node.position(now),
            public_key=node.keypair.public,
            last_seen=now,
        )
        receivers = self.neighbors_of(node.id)
        self.airtime_rx_s += hello_air * len(receivers)
        for rid in receivers:
            self.nodes[rid].neighbors.update(entry_template)
