"""A DCF-style contention MAC.

This is the substitution for NS-2's 802.11 implementation (see
DESIGN.md §2): a stochastic model of the Distributed Coordination
Function that reproduces the *statistics* routing cares about —

* per-hop delay = DIFS + binary-exponential backoff + frame airtime
  (+ SIFS + ACK for unicast),
* load-dependent collision probability with retry-limited loss,
* broadcasts unacknowledged (single attempt, as in 802.11).

The collision probability per attempt follows the standard
``1 - exp(-load)`` thinning of concurrent in-flight transmissions in
the sender's neighborhood, which the :class:`~repro.net.network.Network`
tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.net.radio import RadioModel

#: Called the instant a unicast exhausts its retry limit, with the
#: metrics flow id of the dropped frame (``None`` for control traffic).
#: Fires synchronously with the ``drops_total`` increment.
DropListener = Callable[[int | None], None]


@dataclass(frozen=True)
class MacOutcome:
    """Result of one link-layer exchange."""

    success: bool
    delay_s: float
    attempts: int


class Mac80211Dcf:
    """802.11-DCF-like contention model.

    Parameters
    ----------
    radio:
        Shared physical-layer parameters.
    rng:
        Random stream for backoff draws and loss coin-flips.
    slot_s, difs_s, sifs_s:
        DCF timing constants (802.11 classic values by default).
    cw_min, cw_max:
        Contention-window bounds in slots.
    max_retries:
        Unicast retry limit before the frame is dropped.
    ack_bytes:
        ACK frame payload-equivalent size.
    base_loss:
        Residual per-attempt channel error probability (fading etc.).
    collision_scale:
        Sensitivity of collision probability to concurrent in-flight
        transmissions: ``p = 1 - exp(-load / collision_scale)``.
    """

    def __init__(
        self,
        radio: RadioModel,
        rng: np.random.Generator,
        slot_s: float = 20e-6,
        difs_s: float = 50e-6,
        sifs_s: float = 10e-6,
        cw_min: int = 31,
        cw_max: int = 1023,
        max_retries: int = 7,
        ack_bytes: int = 14,
        base_loss: float = 0.005,
        collision_scale: float = 4.0,
    ) -> None:
        self.radio = radio
        self._rng = rng
        self.slot_s = slot_s
        self.difs_s = difs_s
        self.sifs_s = sifs_s
        self.cw_min = cw_min
        self.cw_max = cw_max
        self.max_retries = max_retries
        self.ack_bytes = ack_bytes
        self.base_loss = base_loss
        self.collision_scale = collision_scale
        # counters (diagnostics / energy accounting)
        self.attempts_total = 0
        self.collisions_total = 0
        self.drops_total = 0
        #: optional per-flow drop hook (see :data:`DropListener`);
        #: purely observational — the MAC never acts on it, so leaving
        #: it unset changes nothing.
        self.drop_listener: DropListener | None = None

    # ------------------------------------------------------------------
    def _attempt_failure_prob(self, local_load: float) -> float:
        """Probability one attempt fails given concurrent load."""
        p_col = 1.0 - float(np.exp(-max(local_load, 0.0) / self.collision_scale))
        return min(p_col + self.base_loss, 0.95)

    def _backoff(self, attempt: int) -> float:
        """Backoff delay for the given retry number (0-based)."""
        cw = min(self.cw_min * (2**attempt), self.cw_max)
        slots = int(self._rng.integers(0, cw + 1))
        return self.difs_s + slots * self.slot_s

    # ------------------------------------------------------------------
    def unicast(
        self,
        payload_bytes: int,
        distance_m: float,
        local_load: float,
        flow: int | None = None,
    ) -> MacOutcome:
        """Simulate an acknowledged unicast exchange.

        Returns the total delay including failed attempts; ``success``
        is ``False`` when the retry limit is exhausted.  ``flow``
        optionally tags the exchange with a metrics flow id; a
        retry-exhausted drop then reports it through
        :attr:`drop_listener` at the moment ``drops_total`` increments.
        """
        airtime = self.radio.tx_time(payload_bytes)
        ack_time = self.radio.tx_time(self.ack_bytes)
        prop = self.radio.propagation_delay(distance_m)
        p_fail = self._attempt_failure_prob(local_load)
        delay = 0.0
        for attempt in range(self.max_retries + 1):
            self.attempts_total += 1
            delay += self._backoff(attempt) + airtime + prop
            if self._rng.random() >= p_fail:
                delay += self.sifs_s + ack_time + prop
                return MacOutcome(True, delay, attempt + 1)
            self.collisions_total += 1
        self.drops_total += 1
        if self.drop_listener is not None:
            self.drop_listener(flow)
        return MacOutcome(False, delay, self.max_retries + 1)

    def broadcast(self, payload_bytes: int, local_load: float) -> MacOutcome:
        """Simulate an unacknowledged local broadcast (one attempt).

        ``success`` reflects whether the frame escaped collision; a
        failed broadcast is silently lost (as in 802.11).
        """
        airtime = self.radio.tx_time(payload_bytes)
        self.attempts_total += 1
        delay = self._backoff(0) + airtime
        if self._rng.random() >= self._attempt_failure_prob(local_load):
            return MacOutcome(True, delay, 1)
        self.collisions_total += 1
        return MacOutcome(False, delay, 1)
