"""A DCF-style contention MAC.

This is the substitution for NS-2's 802.11 implementation (see
DESIGN.md §2): a stochastic model of the Distributed Coordination
Function that reproduces the *statistics* routing cares about —

* per-hop delay = DIFS + binary-exponential backoff + frame airtime
  (+ SIFS + ACK for unicast),
* load-dependent collision probability with retry-limited loss,
* broadcasts unacknowledged (single attempt, as in 802.11).

The collision probability per attempt follows the standard
``1 - exp(-load)`` thinning of concurrent in-flight transmissions in
the sender's neighborhood, which the :class:`~repro.net.network.Network`
tracks.

RNG draw-order contract
-----------------------
Every golden trace depends on the MAC consuming its ``rng`` stream in
exactly this order, so any batch path must replay it draw for draw:

* ``unicast``: per attempt (up to ``max_retries + 1``), first one
  ``integers(0, cw + 1)`` backoff-slot draw (``cw`` doubling from
  ``cw_min`` and clamped at ``cw_max``), then one ``random()`` loss
  coin-flip.  The chain stops at the first coin-flip that clears
  ``p_fail`` — a successful exchange consumes exactly
  ``2 × attempts`` draws, an exhausted one ``2 × (max_retries + 1)``.
* ``broadcast``: one ``integers(0, cw_min + 1)`` draw, then one
  ``random()`` draw — always exactly two.

The interleaving (slot draw, then coin-flip, per attempt) means the
draws of one exchange can never be hoisted into a single vector call:
:meth:`unicast_batch` / :meth:`broadcast_batch` therefore run a
*scalar-replay chain* — they issue the identical scalar draws in the
identical per-receiver order, and vectorise only the arithmetic around
them (airtime, propagation, failure probabilities, outcome assembly).
The parity suite ``tests/test_batched_mac.py`` pins outcomes, counters,
drop-listener order, and the post-call generator state against the
scalar oracle.  ``_attempt_failure_prob`` memoises per distinct load
value, so batch and scalar paths share the exact same ``np.exp``-derived
floats (NumPy's vectorised ``exp`` is *not* bit-identical to its scalar
path on every input, so the batch path must not re-derive them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.net.radio import RadioModel

#: Called the instant a unicast exhausts its retry limit, with the
#: metrics flow id of the dropped frame (``None`` for control traffic).
#: Fires synchronously with the ``drops_total`` increment.
DropListener = Callable[[int | None], None]

#: Fan-out size at which the batch paths (``unicast_batch`` /
#: ``broadcast_batch``) leave the scalar loop: below this the loop
#: overhead is too small to amortise the vector setup.  Mirrors the
#: cutover pattern of ``routing.gpsr.next_hop_greedy_batched``.
_BATCH_MIN = 8


@dataclass(frozen=True)
class MacOutcome:
    """Result of one link-layer exchange."""

    success: bool
    delay_s: float
    attempts: int


class Mac80211Dcf:
    """802.11-DCF-like contention model.

    Parameters
    ----------
    radio:
        Shared physical-layer parameters.
    rng:
        Random stream for backoff draws and loss coin-flips.
    slot_s, difs_s, sifs_s:
        DCF timing constants (802.11 classic values by default).
    cw_min, cw_max:
        Contention-window bounds in slots.
    max_retries:
        Unicast retry limit before the frame is dropped.
    ack_bytes:
        ACK frame payload-equivalent size.
    base_loss:
        Residual per-attempt channel error probability (fading etc.).
    collision_scale:
        Sensitivity of collision probability to concurrent in-flight
        transmissions: ``p = 1 - exp(-load / collision_scale)``.
    """

    def __init__(
        self,
        radio: RadioModel,
        rng: np.random.Generator,
        slot_s: float = 20e-6,
        difs_s: float = 50e-6,
        sifs_s: float = 10e-6,
        cw_min: int = 31,
        cw_max: int = 1023,
        max_retries: int = 7,
        ack_bytes: int = 14,
        base_loss: float = 0.005,
        collision_scale: float = 4.0,
    ) -> None:
        self.radio = radio
        self._rng = rng
        self.slot_s = slot_s
        self.difs_s = difs_s
        self.sifs_s = sifs_s
        self.cw_min = cw_min
        self.cw_max = cw_max
        self.max_retries = max_retries
        self.ack_bytes = ack_bytes
        self.base_loss = base_loss
        self.collision_scale = collision_scale
        #: ACK airtime is a run constant — hoisted out of ``unicast``,
        #: which used to recompute ``radio.tx_time(ack_bytes)`` on
        #: every call.
        self._ack_airtime = radio.tx_time(ack_bytes)
        #: ``_attempt_failure_prob`` memo keyed by load value.  Loads
        #: are small in-flight *counts* (a handful of distinct floats
        #: per run), so the dict stays tiny while sparing a transcendental
        #: per exchange — and it guarantees batch paths reuse the exact
        #: scalar-path floats (see module docstring).
        self._pfail_cache: dict[float, float] = {}
        # counters (diagnostics / energy accounting)
        self.attempts_total = 0
        self.collisions_total = 0
        self.drops_total = 0
        #: optional per-flow drop hook (see :data:`DropListener`);
        #: purely observational — the MAC never acts on it, so leaving
        #: it unset changes nothing.
        self.drop_listener: DropListener | None = None

    # ------------------------------------------------------------------
    def _attempt_failure_prob(self, local_load: float) -> float:
        """Probability one attempt fails given concurrent load (memoised)."""
        p = self._pfail_cache.get(local_load)
        if p is None:
            p_col = 1.0 - float(
                np.exp(-max(local_load, 0.0) / self.collision_scale)
            )
            p = min(p_col + self.base_loss, 0.95)
            self._pfail_cache[local_load] = p
        return p

    def _backoff(self, attempt: int) -> float:
        """Backoff delay for the given retry number (0-based)."""
        cw = min(self.cw_min * (2**attempt), self.cw_max)
        slots = int(self._rng.integers(0, cw + 1))
        return self.difs_s + slots * self.slot_s

    # ------------------------------------------------------------------
    def unicast(
        self,
        payload_bytes: int,
        distance_m: float,
        local_load: float,
        flow: int | None = None,
    ) -> MacOutcome:
        """Simulate an acknowledged unicast exchange.

        Returns the total delay including failed attempts; ``success``
        is ``False`` when the retry limit is exhausted.  ``flow``
        optionally tags the exchange with a metrics flow id; a
        retry-exhausted drop then reports it through
        :attr:`drop_listener` at the moment ``drops_total`` increments.
        """
        airtime = self.radio.tx_time(payload_bytes)
        ack_time = self._ack_airtime
        prop = self.radio.propagation_delay(distance_m)
        p_fail = self._attempt_failure_prob(local_load)
        delay = 0.0
        for attempt in range(self.max_retries + 1):
            self.attempts_total += 1
            delay += self._backoff(attempt) + airtime + prop
            if self._rng.random() >= p_fail:
                delay += self.sifs_s + ack_time + prop
                return MacOutcome(True, delay, attempt + 1)
            self.collisions_total += 1
        self.drops_total += 1
        if self.drop_listener is not None:
            self.drop_listener(flow)
        return MacOutcome(False, delay, self.max_retries + 1)

    def broadcast(self, payload_bytes: int, local_load: float) -> MacOutcome:
        """Simulate an unacknowledged local broadcast (one attempt).

        ``success`` reflects whether the frame escaped collision; a
        failed broadcast is silently lost (as in 802.11).
        """
        airtime = self.radio.tx_time(payload_bytes)
        self.attempts_total += 1
        delay = self._backoff(0) + airtime
        if self._rng.random() >= self._attempt_failure_prob(local_load):
            return MacOutcome(True, delay, 1)
        self.collisions_total += 1
        return MacOutcome(False, delay, 1)

    # ------------------------------------------------------------------
    # batch paths (scalar-replay chains — see module docstring)
    # ------------------------------------------------------------------
    def unicast_batch(
        self,
        payload_bytes: int | Sequence[int],
        distances_m: Sequence[float] | np.ndarray,
        local_loads: Sequence[float] | np.ndarray,
        flows: Sequence[int | None] | None = None,
    ) -> list[MacOutcome]:
        """Resolve a fan-out of unicast exchanges, bit-identical to a
        scalar loop over :meth:`unicast`.

        ``payload_bytes`` may be one size shared by the whole fan-out or
        a per-exchange sequence.  Airtime, propagation, and failure
        probabilities are priced for all exchanges up front; the
        data-dependent retry chains then replay the scalar draw order
        per receiver (stop-on-success consumes exactly the same RNG
        prefix).  Below ``_BATCH_MIN`` the scalar loop *is* the
        implementation.
        """
        n = len(distances_m)
        if flows is None:
            flows = [None] * n
        if n < _BATCH_MIN:
            sizes = (
                [payload_bytes] * n
                if isinstance(payload_bytes, int)
                else payload_bytes
            )
            return [
                self.unicast(sizes[k], distances_m[k], local_loads[k], flows[k])
                for k in range(n)
            ]
        tx_time = self.radio.tx_time
        if isinstance(payload_bytes, int):
            airtimes = [tx_time(payload_bytes)] * n
        else:
            airtimes = [tx_time(int(s)) for s in payload_bytes]
        props = self.radio.propagation_delay_batch(
            np.asarray(distances_m, dtype=np.float64)
        ).tolist()
        pfail = self._attempt_failure_prob
        pfails = [pfail(float(ld)) for ld in local_loads]

        rng_integers = self._rng.integers
        rng_random = self._rng.random
        cw_min = self.cw_min
        cw_max = self.cw_max
        slot_s = self.slot_s
        difs_s = self.difs_s
        sifs_ack = self.sifs_s + self._ack_airtime
        last_attempt = self.max_retries
        listener = self.drop_listener
        attempts_total = self.attempts_total
        collisions_total = self.collisions_total
        outcomes: list[MacOutcome] = []
        append = outcomes.append
        for k in range(n):
            airtime = airtimes[k]
            prop = props[k]
            p_fail = pfails[k]
            delay = 0.0
            cw = cw_min
            attempt = 0
            while True:
                attempts_total += 1
                # Same left-to-right association as the scalar path:
                # ((difs + slots·slot) + airtime) + prop.
                delay += (
                    difs_s
                    + int(rng_integers(0, cw + 1)) * slot_s
                    + airtime
                    + prop
                )
                if rng_random() >= p_fail:
                    # Scalar adds (sifs + ack) + prop as one term.
                    append(
                        MacOutcome(True, delay + (sifs_ack + prop), attempt + 1)
                    )
                    break
                collisions_total += 1
                if attempt == last_attempt:
                    # Flush the running counters before the listener
                    # fires: it may observe them, and the scalar path
                    # keeps them exact at every drop.
                    self.attempts_total = attempts_total
                    self.collisions_total = collisions_total
                    self.drops_total += 1
                    if listener is not None:
                        listener(flows[k])
                    append(MacOutcome(False, delay, attempt + 1))
                    break
                attempt += 1
                cw = min(cw + cw, cw_max)
        self.attempts_total = attempts_total
        self.collisions_total = collisions_total
        return outcomes

    def broadcast_batch(
        self,
        payload_bytes: int | Sequence[int],
        local_loads: Sequence[float] | np.ndarray,
    ) -> list[MacOutcome]:
        """Resolve a fan-out of independent broadcasts, bit-identical to
        a scalar loop over :meth:`broadcast`.

        Each broadcast consumes exactly two draws (slot, coin-flip),
        replayed in per-sender order; airtimes and failure
        probabilities are shared/memoised across the fan-out.
        """
        n = len(local_loads)
        if n < _BATCH_MIN:
            sizes = (
                [payload_bytes] * n
                if isinstance(payload_bytes, int)
                else payload_bytes
            )
            return [
                self.broadcast(sizes[k], local_loads[k]) for k in range(n)
            ]
        tx_time = self.radio.tx_time
        if isinstance(payload_bytes, int):
            airtimes = [tx_time(payload_bytes)] * n
        else:
            airtimes = [tx_time(int(s)) for s in payload_bytes]
        pfail = self._attempt_failure_prob
        pfails = [pfail(float(ld)) for ld in local_loads]
        rng_integers = self._rng.integers
        rng_random = self._rng.random
        cw_hi = self.cw_min + 1
        slot_s = self.slot_s
        difs_s = self.difs_s
        collisions = 0
        outcomes: list[MacOutcome] = []
        append = outcomes.append
        for k in range(n):
            delay = difs_s + int(rng_integers(0, cw_hi)) * slot_s + airtimes[k]
            if rng_random() >= pfails[k]:
                append(MacOutcome(True, delay, 1))
            else:
                collisions += 1
                append(MacOutcome(False, delay, 1))
        self.attempts_total += n
        self.collisions_total += collisions
        return outcomes
