"""Wireless MANET substrate.

This package stands in for NS-2.29 + 802.11 in the paper's testbed:
a unit-disk radio (250 m default), a DCF-style contention MAC with
binary-exponential backoff and retry-limited loss, hello-beacon
neighbor discovery, CBR traffic sources, and the :class:`Network`
container that wires nodes, mobility, and the event engine together.
"""

from repro.net.energy import EnergyModel
from repro.net.feedback import FlowFeedback
from repro.net.mac import Mac80211Dcf, MacOutcome
from repro.net.neighbor_table import NeighborEntry, NeighborTable
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.net.radio import RadioModel
from repro.net.traffic import AdaptiveSource, CbrSource

__all__ = [
    "Packet",
    "PacketKind",
    "RadioModel",
    "Mac80211Dcf",
    "MacOutcome",
    "Node",
    "NeighborTable",
    "NeighborEntry",
    "CbrSource",
    "AdaptiveSource",
    "FlowFeedback",
    "Network",
    "EnergyModel",
]
