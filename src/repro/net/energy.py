"""Energy accounting (the paper's summary claim: ALERT has
"significantly lower energy consumption compared to AO2P and ALARM").

Energy is not simulated inline; it is an *accounting view* over
counters the substrate already keeps — radio airtime transmitted and
received, and crypto operations charged to the cost model — priced
with typical 802.11-era radio/CPU power draws (Feeney & Nilsson,
INFOCOM 2001 ballpark figures).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cost_model import CryptoCostModel
from repro.net.network import Network


@dataclass(frozen=True)
class EnergyModel:
    """Power-draw constants, watts.

    Parameters
    ----------
    tx_power_w / rx_power_w:
        Radio draw while transmitting / receiving.
    cpu_power_w:
        Extra CPU draw while running cryptographic code; multiplied by
        the *simulated* time each operation costs (the same §5.2
        calibration the latency figures use).
    """

    tx_power_w: float = 1.4
    rx_power_w: float = 0.9
    cpu_power_w: float = 0.8

    def radio_energy(self, network: Network) -> tuple[float, float]:
        """(tx joules, rx joules) from the network's airtime counters."""
        return (
            network.airtime_tx_s * self.tx_power_w,
            network.airtime_rx_s * self.rx_power_w,
        )

    def crypto_energy(self, cost: CryptoCostModel) -> float:
        """Joules burnt in cryptographic CPU time."""
        seconds = (
            cost.charges.get("symmetric_encrypt", 0) * cost.symmetric_encrypt_s
            + cost.charges.get("symmetric_decrypt", 0) * cost.symmetric_decrypt_s
            + cost.charges.get("pubkey_encrypt", 0) * cost.pubkey_encrypt_s
            + cost.charges.get("pubkey_decrypt", 0) * cost.pubkey_decrypt_s
            + cost.charges.get("sign", 0) * cost.sign_s
            + cost.charges.get("verify", 0) * cost.verify_s
            + cost.charges.get("hash", 0) * cost.hash_s
        )
        return seconds * self.cpu_power_w

    def total_energy(self, network: Network, cost: CryptoCostModel) -> float:
        """Total joules: radio tx + rx + crypto CPU."""
        tx, rx = self.radio_energy(network)
        return tx + rx + self.crypto_energy(cost)

    def breakdown(self, network: Network, cost: CryptoCostModel) -> dict[str, float]:
        """Named components, joules."""
        tx, rx = self.radio_energy(network)
        crypto = self.crypto_energy(cost)
        return {
            "radio_tx_j": tx,
            "radio_rx_j": rx,
            "crypto_j": crypto,
            "total_j": tx + rx + crypto,
        }
