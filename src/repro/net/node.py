"""A network node: identity, keys, mobility, and the receive hook."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.crypto.keys import KeyPair
from repro.crypto.pseudonym import PseudonymManager
from repro.geometry.primitives import Point
from repro.mobility.base import MobilityModel
from repro.net.neighbor_table import NeighborTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.packet import Packet

#: Signature of a protocol's packet-arrival hook: (receiver, packet).
ReceiveHook = Callable[["Node", "Packet"], None]


class Node:
    """One mobile node.

    The node owns its long-term keypair, its rotating pseudonym, its
    neighbor table, and its mobility; the routing protocol attached to
    the network registers a receive hook that fires whenever the link
    layer delivers a frame to this node.

    Parameters
    ----------
    node_id:
        Substrate-level index (stands in for the radio hardware
        address; never placed in protocol headers).
    mobility:
        This node's motion.
    keypair:
        Long-term RSA keypair (public half published via the location
        service).
    rng:
        Private random stream (pseudonym fuzz etc.).
    neighbor_ttl:
        Expiry for neighbor-table rows, seconds.
    pseudonym_lifetime:
        Rotation period for the dynamic pseudonym, seconds.
    """

    def __init__(
        self,
        node_id: int,
        mobility: MobilityModel,
        keypair: KeyPair,
        rng: np.random.Generator,
        neighbor_ttl: float = 3.0,
        pseudonym_lifetime: float = 30.0,
    ) -> None:
        self.id = node_id
        self.mobility = mobility
        self.keypair = keypair
        mac = node_id.to_bytes(6, "big")
        self.pseudonyms = PseudonymManager(mac, rng, lifetime=pseudonym_lifetime)
        self.neighbors = NeighborTable(ttl=neighbor_ttl)
        self.on_receive: ReceiveHook | None = None
        #: substrate hook fired when fail()/restore() actually flips the
        #: node's state; the owning Network uses it to invalidate its
        #: cached active-node mask and to force the next position
        #: snapshot refresh to rebuild its spatial index from scratch
        #: instead of diffing incrementally.
        self.on_state_change: Callable[["Node"], None] | None = None
        #: per-node energy proxy: frames transmitted / received
        self.tx_count = 0
        self.rx_count = 0
        #: False once the node is disabled/compromised (DoS experiments);
        #: inactive nodes neither beacon, relay, nor acknowledge frames.
        self.active = True
        # Last (t, Point) answered by position(): forwarding decisions
        # ask for several positions at the same event time, and Point
        # is frozen, so replaying the previous answer is free and safe.
        self._pos_at: float = -1.0
        self._pos_cache: Point | None = None

    def fail(self) -> None:
        """Disable the node (compromise / battery death)."""
        if not self.active:
            return  # already down: no state flip, no invalidation
        self.active = False
        if self.on_state_change is not None:
            self.on_state_change(self)

    def restore(self) -> None:
        """Bring the node back online."""
        if self.active:
            return  # already up: no state flip, no invalidation
        self.active = True
        if self.on_state_change is not None:
            self.on_state_change(self)

    def position(self, t: float) -> Point:
        """True position at time ``t`` (substrate/oracle use only)."""
        if t == self._pos_at:
            return self._pos_cache
        p = self.mobility.position(t)
        self._pos_at = t
        self._pos_cache = p
        return p

    def prime_position(self, t: float, p: Point) -> None:
        """Seed the :meth:`position` cache with an externally computed fix.

        Batched substrate passes (location-service write rounds) evaluate
        whole populations through ``positions_at`` and hand each node its
        value here, leaving the cache in the same state a scalar
        ``position(t)`` call would have.
        """
        self._pos_at = t
        self._pos_cache = p

    def pseudonym_at(self, t: float) -> bytes:
        """The node's valid pseudonym digest at ``t``."""
        return self.pseudonyms.current(t).digest

    def deliver(self, packet: "Packet") -> None:
        """Link-layer delivery: count it and invoke the protocol hook."""
        self.rx_count += 1
        packet.record_visit(self.id)
        if self.on_receive is not None:
            self.on_receive(self, packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.id}>"
