"""Per-flow delivery feedback: the closed-loop channel under adaptive traffic.

The paper evaluates ALERT under open-loop CBR (§5.2); the hierarchical
and geographic-routing literature it builds on (HPAR, Ramasamy &
Madhow) additionally evaluates *closed-loop* sources that react to
losses.  :class:`FlowFeedback` is the plumbing that makes such sources
expressible: the MAC reports retry-exhausted frame drops, and the
routing layer reports end-to-end deliveries, terminal drops, per-hop
link failures, and confirmation timeouts — each tagged with the metrics
flow id the packet was originated under — and the channel routes every
event to the traffic source that registered that flow.

Design constraints (enforced by the golden-trace suite):

* purely observational — dispatching events consumes no randomness and
  schedules nothing, so wiring the channel into a run cannot perturb
  the seeded trace; with no listeners it is a handful of counter bumps;
* synchronous — events fire inside the engine event that produced them,
  so listeners observe them in exact event-time order (the MAC drop
  hook fires the instant ``drops_total`` increments, i.e. when the MAC
  model resolves the exchange, not after the wasted airtime elapses);
* terminal-once — a flow's first delivery or terminal drop releases its
  registration, so duplicate zone-broadcast receptions cannot feed a
  source twice.

Registration-ordering contract
------------------------------
Because reporting is synchronous, several producers can fire *inside*
the ``send_data`` call that originates the flow: the MAC drop hook
(``runner`` wires ``mac.drop_listener`` straight to :meth:`mac_drop`)
and the routing layer's link-failure and terminal-drop reports all sit
on the initiation path whenever crypto processing is charged at zero
delay (cost-only mode, zero-cost models).  Only the confirmation
timeout always arrives from a separately scheduled timer.  A source
must therefore be registered *before* the packet is dispatched —
``RoutingProtocol.send_data`` exposes the ``on_flow`` hook for exactly
this — because registering on the return value misses any synchronous
signal and, after a synchronous *terminal* event, would re-register a
flow whose release already happened, pinning the dead entry forever.
"""

from __future__ import annotations

from typing import Protocol

#: Loss kinds reported through :meth:`FlowFeedback.loss`.
LOSS_MAC_DROP = "mac-drop"
LOSS_LINK_FAILURE = "link-failure"
LOSS_DROP = "drop"
LOSS_TIMEOUT = "timeout"

#: Kinds that terminate a flow's registration.
_TERMINAL_KINDS = frozenset({LOSS_DROP})


class FlowListener(Protocol):
    """What a closed-loop traffic source implements to receive feedback."""

    def on_flow_delivery(self, flow_id: int, now: float) -> None:
        """The flow's packet reached its true destination."""

    def on_flow_loss(self, flow_id: int, kind: str, now: float) -> None:
        """A loss signal for the flow (see the ``LOSS_*`` kinds)."""


class FlowFeedback:
    """Routes per-flow delivery/loss events from the stack to sources.

    Sources :meth:`register` each flow id they originate; the network
    and routing layers report events against flow ids; the channel
    dispatches each event to the owning listener (if any) and tallies
    aggregate counters either way.
    """

    def __init__(self) -> None:
        self._listeners: dict[int, FlowListener] = {}
        #: aggregate event counters (diagnostics / RunResult accessors)
        self.deliveries = 0
        self.drops = 0
        self.mac_drops = 0
        self.link_failures = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, flow_id: int, listener: FlowListener) -> None:
        """Subscribe ``listener`` to events for ``flow_id``."""
        self._listeners[flow_id] = listener

    def release(self, flow_id: int) -> None:
        """Drop the registration for ``flow_id`` (idempotent)."""
        self._listeners.pop(flow_id, None)

    def registered(self, flow_id: int) -> bool:
        """Whether a listener is currently subscribed to ``flow_id``."""
        return flow_id in self._listeners

    # ------------------------------------------------------------------
    # reporting (called by the stack)
    # ------------------------------------------------------------------
    def delivery(self, flow_id: int | None, now: float) -> None:
        """Routing layer: first delivery at the true destination.

        Terminal: the flow's registration is released, so later
        duplicate receptions (zone rebroadcasts, overhearing) are
        silently ignored.
        """
        if flow_id is None:
            return
        self.deliveries += 1
        listener = self._listeners.pop(flow_id, None)
        if listener is not None:
            listener.on_flow_delivery(flow_id, now)

    def drop(self, flow_id: int | None, reason: str, now: float) -> None:
        """Routing layer: terminal drop (TTL, void, retries exhausted)."""
        if flow_id is None:
            return
        self.drops += 1
        listener = self._listeners.pop(flow_id, None)
        if listener is not None:
            listener.on_flow_loss(flow_id, LOSS_DROP, now)

    def mac_drop(self, flow_id: int | None, now: float) -> None:
        """MAC: a unicast frame exhausted its retry limit (non-terminal:
        the routing layer may still salvage the packet via another
        neighbor, so the registration stays live)."""
        if flow_id is None:
            return
        self.mac_drops += 1
        listener = self._listeners.get(flow_id)
        if listener is not None:
            listener.on_flow_loss(flow_id, LOSS_MAC_DROP, now)

    def link_failure(self, flow_id: int | None, reason: str, now: float) -> None:
        """Routing layer: one hop failed (blacklist-and-retry follows)."""
        if flow_id is None:
            return
        self.link_failures += 1
        listener = self._listeners.get(flow_id)
        if listener is not None:
            listener.on_flow_loss(flow_id, LOSS_LINK_FAILURE, now)

    def timeout(self, flow_id: int | None, now: float) -> None:
        """Routing layer: an end-to-end confirmation timer expired."""
        if flow_id is None:
            return
        self.timeouts += 1
        listener = self._listeners.get(flow_id)
        if listener is not None:
            listener.on_flow_loss(flow_id, LOSS_TIMEOUT, now)

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Aggregate event counts by kind (a fresh dict)."""
        return {
            "deliveries": self.deliveries,
            "drops": self.drops,
            "mac_drops": self.mac_drops,
            "link_failures": self.link_failures,
            "timeouts": self.timeouts,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FlowFeedback live={len(self._listeners)} "
            f"deliveries={self.deliveries} drops={self.drops} "
            f"mac_drops={self.mac_drops}>"
        )
