"""Constant-bit-rate traffic sources (paper §5.2: UDP/CBR, 512 B, 2 s).

A :class:`CbrSource` periodically asks its routing protocol to deliver
one data packet from S to D.  The protocol interface is any callable
``send(src_id, dst_id, size_bytes) -> None``; the harness wires this to
:meth:`repro.routing.base.RoutingProtocol.send_data`.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine
from repro.sim.process import PeriodicTask

SendFn = Callable[[int, int, int], None]


class CbrSource:
    """One CBR flow: ``src`` sends a packet to ``dst`` every interval.

    Parameters
    ----------
    engine:
        The event engine.
    send:
        Protocol send function ``(src, dst, size_bytes)``.
    src, dst:
        Endpoint node ids.
    interval:
        Inter-packet gap in seconds (paper default: 2 s).
    size_bytes:
        Packet size (paper default: 512 B).
    max_packets:
        Stop after this many packets (``None`` = until stopped).
    start_offset:
        Time of the first packet.
    """

    def __init__(
        self,
        engine: Engine,
        send: SendFn,
        src: int,
        dst: int,
        interval: float = 2.0,
        size_bytes: int = 512,
        max_packets: int | None = None,
        start_offset: float = 1.0,
    ) -> None:
        if src == dst:
            raise ValueError("CBR flow endpoints must differ")
        if interval <= 0 or size_bytes <= 0:
            raise ValueError("interval and size_bytes must be positive")
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.max_packets = max_packets
        self.sent = 0
        self._send = send
        self._task = PeriodicTask(
            engine, interval, self._tick, start_offset=start_offset
        )

    def _tick(self) -> None:
        if self.max_packets is not None and self.sent >= self.max_packets:
            self._task.stop()
            return
        self.sent += 1
        self._send(self.src, self.dst, self.size_bytes)

    def stop(self) -> None:
        """Stop generating packets."""
        self._task.stop()
