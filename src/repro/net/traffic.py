"""Traffic sources: open-loop CBR (paper §5.2) and closed-loop AIMD.

A :class:`CbrSource` periodically asks its routing protocol to deliver
one data packet from S to D (512 B every 2 s in the paper).  The
protocol interface is any callable ``send(src_id, dst_id, size_bytes)``;
the harness wires this to
:meth:`repro.routing.base.RoutingProtocol.send_data`, whose return
value is the metrics flow id.

:class:`AdaptiveSource` closes the loop: it registers every flow it
originates with a :class:`~repro.net.feedback.FlowFeedback` channel —
through ``send_data``'s ``on_flow`` hook, i.e. *before* the packet is
dispatched, since loss signals can fire synchronously inside the send
call — and
adjusts its send interval AIMD-style — multiplicative backoff on loss
signals (MAC drops, terminal drops, confirmation timeouts), additive
recovery on acknowledged delivery — clamped to
``[min_interval, max_interval]``.  Recovery never undershoots the
configured base interval, so a loss-free flow sends at exactly the CBR
cadence: with feedback disabled (or no losses) an ``AdaptiveSource`` is
bit-identical to an equivalent ``CbrSource`` — same engine events, same
send times, same metrics.
"""

from __future__ import annotations

from typing import Callable

from repro.net.feedback import (
    LOSS_DROP,
    LOSS_LINK_FAILURE,
    LOSS_MAC_DROP,
    LOSS_TIMEOUT,
    FlowFeedback,
)
from repro.sim.engine import Engine
from repro.sim.process import PeriodicTask

#: Protocol send callable.  Positionally ``(src, dst, size_bytes)``;
#: closed-loop sources additionally pass an ``on_flow`` keyword (see
#: :meth:`repro.routing.base.RoutingProtocol.send_data`) so they can
#: register for feedback before the packet enters the network.
SendFn = Callable[..., "int | None"]

#: Loss kinds an :class:`AdaptiveSource` backs off on by default.
#: Link failures are excluded: a blacklisted neighbor usually reflects
#: mobility (stale table entry), not congestion, and the routing layer
#: already retries them locally; the terminal outcome — delivery, drop,
#: or MAC retry exhaustion — is what the source reacts to.
DEFAULT_BACKOFF_KINDS = frozenset({LOSS_MAC_DROP, LOSS_DROP, LOSS_TIMEOUT})


class CbrSource:
    """One CBR flow: ``src`` sends a packet to ``dst`` every interval.

    Parameters
    ----------
    engine:
        The event engine.
    send:
        Protocol send function ``(src, dst, size_bytes)``.
    src, dst:
        Endpoint node ids.
    interval:
        Inter-packet gap in seconds (paper default: 2 s).
    size_bytes:
        Packet size (paper default: 512 B).
    max_packets:
        Stop after this many packets (``None`` = until stopped).  The
        periodic task stops on the tick that sends the final packet, so
        no dead tick lingers on the event heap afterwards.
    start_offset:
        Time of the first packet.
    """

    def __init__(
        self,
        engine: Engine,
        send: SendFn,
        src: int,
        dst: int,
        interval: float = 2.0,
        size_bytes: int = 512,
        max_packets: int | None = None,
        start_offset: float = 1.0,
    ) -> None:
        if src == dst:
            raise ValueError("CBR flow endpoints must differ")
        if interval <= 0 or size_bytes <= 0:
            raise ValueError("interval and size_bytes must be positive")
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.max_packets = max_packets
        self.sent = 0
        self._send = send
        self._task = PeriodicTask(
            engine, interval, self._tick, start_offset=start_offset
        )

    def _tick(self) -> None:
        if self.max_packets is not None and self.sent >= self.max_packets:
            self._task.stop()
            return
        self.sent += 1
        self._emit()
        if self.max_packets is not None and self.sent >= self.max_packets:
            # Final packet just went out: stop *now* rather than letting
            # one more tick fire only to discover the budget is spent —
            # a finished source must leave nothing on the event heap.
            self._task.stop()

    def _emit(self) -> None:
        """Hand one packet to the protocol (subclass hook)."""
        self._send(self.src, self.dst, self.size_bytes)

    def stop(self) -> None:
        """Stop generating packets."""
        self._task.stop()


class AdaptiveSource(CbrSource):
    """A loss-reactive CBR source with AIMD interval control.

    On every loss signal in ``backoff_kinds`` the send interval is
    multiplied by ``backoff_factor`` (clamped to ``max_interval``); on
    every acknowledged end-to-end delivery it is reduced by
    ``recovery_step`` (never below the configured base ``interval``,
    itself validated to lie within ``[min_interval, max_interval]``).
    Interval changes apply from the *next* scheduling decision — the
    already-booked tick keeps its time — so the engine event structure
    matches ``CbrSource`` tick for tick and the whole trajectory is a
    deterministic function of the engine seed.

    With ``feedback=None`` the source never registers a flow, receives
    no events, and degrades exactly to :class:`CbrSource`.

    Parameters
    ----------
    feedback:
        The delivery-feedback channel, or ``None`` for open loop.
    min_interval, max_interval:
        Hard clamp for the send interval, seconds.
    backoff_factor:
        Multiplicative interval growth per loss signal (> 1).
    recovery_step:
        Additive interval reduction per delivery, seconds (>= 0).
    backoff_kinds:
        Which :mod:`repro.net.feedback` loss kinds trigger backoff.
    """

    def __init__(
        self,
        engine: Engine,
        send: SendFn,
        src: int,
        dst: int,
        interval: float = 2.0,
        size_bytes: int = 512,
        max_packets: int | None = None,
        start_offset: float = 1.0,
        feedback: FlowFeedback | None = None,
        min_interval: float = 0.05,
        max_interval: float = 8.0,
        backoff_factor: float = 2.0,
        recovery_step: float = 0.25,
        backoff_kinds: frozenset[str] = DEFAULT_BACKOFF_KINDS,
    ) -> None:
        if not (0 < min_interval <= interval <= max_interval):
            raise ValueError(
                f"need 0 < min_interval <= interval <= max_interval, got "
                f"min={min_interval!r} interval={interval!r} "
                f"max={max_interval!r}"
            )
        if backoff_factor <= 1.0:
            raise ValueError(
                f"backoff_factor must exceed 1, got {backoff_factor!r}"
            )
        if recovery_step < 0:
            raise ValueError(
                f"recovery_step must be >= 0, got {recovery_step!r}"
            )
        unknown = backoff_kinds - {
            LOSS_MAC_DROP, LOSS_LINK_FAILURE, LOSS_DROP, LOSS_TIMEOUT
        }
        if unknown:
            raise ValueError(f"unknown loss kinds {sorted(unknown)}")
        self.base_interval = interval
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.backoff_factor = backoff_factor
        self.recovery_step = recovery_step
        self.backoff_kinds = frozenset(backoff_kinds)
        self.feedback = feedback
        #: feedback tallies (RunResult aggregates these across sources)
        self.backoff_events = 0
        self.recovery_events = 0
        self.deliveries = 0
        self.losses = 0
        super().__init__(
            engine,
            send,
            src,
            dst,
            interval=interval,
            size_bytes=size_bytes,
            max_packets=max_packets,
            start_offset=start_offset,
        )

    # ------------------------------------------------------------------
    @property
    def interval(self) -> float:
        """The current send interval in seconds."""
        return self._task.interval

    def _emit(self) -> None:
        # Registration must happen through the protocol's ``on_flow``
        # hook, before the packet is dispatched: feedback reporting is
        # synchronous, so a first-hop MAC drop (or an immediate
        # no-route drop) fires *inside* the send call.  Registering on
        # the returned flow id — the obvious shape — silently misses
        # every such signal and, worse, leaves the flow registered
        # forever because its terminal event already happened.
        if self.feedback is None:
            self._send(self.src, self.dst, self.size_bytes)
        else:
            self._send(
                self.src, self.dst, self.size_bytes,
                on_flow=self._register_flow,
            )

    def _register_flow(self, flow_id: int | None) -> None:
        """Register a just-created flow for delivery feedback."""
        if flow_id is not None:
            self.feedback.register(flow_id, self)

    # -- FlowListener ---------------------------------------------------
    def on_flow_delivery(self, flow_id: int, now: float) -> None:
        """Additive recovery: narrow the interval back toward base."""
        self.deliveries += 1
        current = self._task.interval
        if current > self.base_interval:
            self.recovery_events += 1
            self._task.set_interval(
                max(current - self.recovery_step, self.base_interval)
            )

    def on_flow_loss(self, flow_id: int, kind: str, now: float) -> None:
        """Multiplicative backoff on congestion/loss signals."""
        self.losses += 1
        if kind not in self.backoff_kinds:
            return
        current = self._task.interval
        if current < self.max_interval:
            # ``backoff_events`` counts *interval changes*, mirroring
            # ``recovery_events`` on the delivery side: a loss that
            # arrives with the interval already pinned at
            # ``max_interval`` changes nothing and is visible in
            # ``losses`` alone.
            self.backoff_events += 1
            self._task.set_interval(
                min(current * self.backoff_factor, self.max_interval)
            )
