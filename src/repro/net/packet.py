"""The generic packet record shared by every protocol.

Protocol-specific headers (e.g., ALERT's universal RREQ/RREP/NAK format
of §2.5) ride in ``header``; the link layer only looks at ``size_bytes``
and the addressing fields.  ``trace`` accumulates the node ids a packet
actually visited — the raw material for the participating-nodes and
hops-per-packet metrics (§5.2 metrics 1 and 4).
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

_packet_ids = itertools.count(1)


def clone_header(header: Any) -> Any:
    """Copy a protocol header for an independent packet branch.

    Headers that define a ``clone()`` method use it (cheap and
    type-aware — see e.g. :meth:`repro.core.packet_format.AlertHeader.
    clone`); anything else is deep-copied.  ``None`` passes through.
    """
    if header is None:
        return None
    clone = getattr(header, "clone", None)
    if callable(clone):
        return clone()
    return copy.deepcopy(header)


class PacketKind(Enum):
    """Coarse packet classes used by the substrate and metrics."""

    DATA = "data"
    HELLO = "hello"
    COVER = "cover"  # notify-and-go camouflage traffic
    NAK = "nak"
    CONTROL = "control"  # dissemination, location-service, etc.


@dataclass
class Packet:
    """One packet in flight.

    Parameters
    ----------
    kind:
        Coarse class (data / hello / cover / nak / control).
    src, dst:
        *True* endpoint node ids, used only by the harness for metric
        attribution; protocols must never read them for forwarding
        decisions (that would break anonymity by construction).
    size_bytes:
        Payload size on the wire; the MAC charges airtime for it.
    header:
        Protocol-specific header object (opaque to the substrate).
    payload:
        Application bytes (possibly ciphertext).
    created_at:
        Simulation time the packet was born.
    """

    kind: PacketKind
    src: int
    dst: int
    size_bytes: int
    header: Any = None
    payload: bytes = b""
    created_at: float = 0.0
    #: metrics flow this packet belongs to (None for background traffic)
    flow_id: int | None = None
    uid: int = field(default_factory=lambda: next(_packet_ids))
    #: node ids that have transmitted or received this packet, in order
    trace: list[int] = field(default_factory=list)
    #: link-layer transmissions used so far (includes broadcasts)
    transmissions: int = 0
    #: simulated crypto delay accumulated along the path (seconds)
    crypto_delay: float = 0.0

    @property
    def hops(self) -> int:
        """Number of link traversals recorded in the trace."""
        return max(len(self.trace) - 1, 0)

    def record_visit(self, node_id: int) -> None:
        """Append a node to the trace (consecutive duplicates collapse)."""
        if not self.trace or self.trace[-1] != node_id:
            self.trace.append(node_id)

    def fork(self, **overrides: Any) -> "Packet":
        """Copy for broadcast fan-out: fresh uid, shared provenance.

        The copy starts with the parent's trace (so path accounting
        stays meaningful for multicast deliveries) but gets its own
        list object, its own uid, and — unless ``header=`` is passed
        explicitly — its **own header copy** (:func:`clone_header`).
        Broadcast receivers mutate per-hop routing state in the header
        (retry counters, TTLs, zone stages); sharing one header object
        across branches would let one receiver corrupt its siblings.
        """
        clone = object.__new__(Packet)
        d = clone.__dict__
        d.update(self.__dict__)
        if overrides:
            d.update(overrides)
        if "header" not in overrides:
            # clone_header, inlined: fan-out runs this per receiver.
            h = self.header
            if h is not None:
                method = getattr(h, "clone", None)
                h = method() if method is not None else copy.deepcopy(h)
            d["header"] = h
        d["uid"] = next(_packet_ids)
        d["trace"] = list(self.trace)
        return clone
