"""Command-line front end: run one experiment and print §5.2 metrics.

Installed as the ``repro-sim`` console script::

    repro-sim --protocol ALERT --nodes 200 --speed 2 --duration 100
    repro-sim --protocol GPSR --no-destination-update --speed 8
    repro-sim --protocol ALERT --mobility group --groups 5 --group-range 200
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.tables import format_kv_block


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-sim`` argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-sim",
        description="Run one ALERT-paper simulation and print its metrics.",
    )
    p.add_argument("--protocol", default="ALERT",
                   choices=["ALERT", "GPSR", "ALARM", "AO2P"])
    p.add_argument("--nodes", type=int, default=200)
    p.add_argument("--field", type=float, default=1000.0,
                   help="field side length in metres")
    p.add_argument("--speed", type=float, default=2.0, help="m/s")
    p.add_argument("--duration", type=float, default=100.0, help="seconds")
    p.add_argument("--pairs", type=int, default=10, help="S-D pairs")
    p.add_argument("--interval", type=float, default=2.0,
                   help="CBR send interval, seconds")
    p.add_argument("--packet-size", type=int, default=512, help="bytes")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--mobility", default="rwp", choices=["rwp", "group", "static"])
    p.add_argument("--groups", type=int, default=10, help="RPGM group count")
    p.add_argument("--group-range", type=float, default=150.0, help="metres")
    p.add_argument("--no-destination-update", action="store_true",
                   help="freeze location-service records (Figs. 14b-16b)")
    p.add_argument("--k", type=int, default=6,
                   help="ALERT destination anonymity parameter")
    p.add_argument("--partitions", type=int, default=5,
                   help="ALERT partition count H (0 = derive from k)")
    p.add_argument("--notify-and-go", action="store_true",
                   help="enable ALERT source-anonymity cover traffic")
    p.add_argument("--intersection-defense", action="store_true",
                   help="enable ALERT two-step zone multicast")
    return p


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Translate parsed arguments into an :class:`ExperimentConfig`."""
    alert_options = {}
    if args.notify_and_go:
        alert_options["notify_and_go"] = True
    if args.intersection_defense:
        alert_options["intersection_defense"] = True
    return ExperimentConfig(
        protocol=args.protocol,
        n_nodes=args.nodes,
        field_size=args.field,
        speed=args.speed,
        duration=args.duration,
        n_pairs=args.pairs,
        send_interval=args.interval,
        packet_size=args.packet_size,
        seed=args.seed,
        mobility=args.mobility,
        n_groups=args.groups,
        group_range=args.group_range,
        destination_update=not args.no_destination_update,
        k=args.k,
        h_override=args.partitions if args.partitions > 0 else None,
        alert_options=alert_options,
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    cfg = config_from_args(args)
    result = run_experiment(cfg)
    m = result.metrics
    rows = {
        "packets sent": m.packets_sent,
        "delivery rate": result.delivery_rate,
        "latency per packet (ms)": result.mean_latency * 1000.0,
        "hops per packet": result.mean_hops,
        "participating nodes": result.participating_nodes,
    }
    if cfg.protocol == "ALERT":
        rows["random forwarders / packet"] = result.mean_rf_count
    print(
        format_kv_block(
            f"{cfg.protocol} — {cfg.n_nodes} nodes, {cfg.duration:.0f} s, "
            f"v={cfg.speed} m/s, seed {cfg.seed}",
            rows,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
