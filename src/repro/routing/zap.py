"""ZAP: anonymous geo-forwarding through location cloaking
(Wu, Liu, Hong & Bertino, IEEE TPDS 2008; paper ref. [13]).

ZAP protects only the destination: the source addresses packets to an
*anonymity zone* (AZ) around D's position instead of to D, geo-forwards
to the zone, and floods inside it, so an observer learns the zone but
not which member is D.  §3.3 discusses ZAP's two options against
intersection attacks — "dynamically enlarges the range of anonymous
zones to broadcast the messages or minimizes communication session
time" — and argues both are costly; ALERT's two-step multicast is the
paper's alternative.  This implementation exposes the enlargement knob
so the attack benchmark can reproduce that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.geometry.primitives import Point, Rect
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.routing.base import RoutingProtocol
from repro.routing.gpsr import next_hop_greedy, next_hop_right_hand


@dataclass(frozen=True)
class ZapConfig:
    """ZAP tunables.

    Parameters
    ----------
    zone_side:
        Initial side length of the square anonymity zone, metres.
    enlargement_per_packet:
        Fractional growth of the zone side per packet of a session —
        ZAP's intersection-attack countermeasure (0 disables it).
    max_zone_side:
        Cap on the enlarged zone.
    ttl:
        Hop budget for the geo-forwarding leg.
    max_forward_retries:
        Alternative next hops tried after a link failure.
    """

    zone_side: float = 250.0
    enlargement_per_packet: float = 0.0
    max_zone_side: float = 1000.0
    ttl: int = 12
    max_forward_retries: int = 3


@dataclass
class ZapHeader:
    """Per-packet ZAP state: the anonymity zone, not D's position."""

    zone: Rect
    ttl: int
    stage: int = 0  # 0 = geo-forwarding, 1 = in-zone flood
    mode: str = "greedy"
    perimeter_entry: Point | None = None
    prev_pos: Point | None = None
    retries: int = 0
    session: int = 0
    seq: int = 0

    def clone(self) -> "ZapHeader":
        """Independent copy for a broadcast branch (fields immutable)."""
        return replace(self)


class ZapProtocol(RoutingProtocol):
    """The ZAP comparison protocol (destination anonymity only)."""

    name = "ZAP"

    def __init__(self, network, location, metrics=None, cost_model=None,
                 config: ZapConfig | None = None) -> None:
        super().__init__(network, location, metrics, cost_model)
        self.config = config if config is not None else ZapConfig()
        self._session_seq: dict[tuple[int, int], int] = {}
        self._seen: set[tuple] = set()
        #: optional hook: (time, in-zone recipient ids) per flood —
        #: consumed by the intersection-attack harness.
        self.zone_delivery_observer: Callable | None = None

    # ------------------------------------------------------------------
    def _zone_for(self, center: Point, seq: int) -> Rect:
        """The (possibly enlarged) anonymity zone for packet ``seq``."""
        side = min(
            self.config.zone_side
            * (1.0 + self.config.enlargement_per_packet * seq),
            self.config.max_zone_side,
        )
        half = side / 2.0
        bounds = self.network.field.bounds
        x0 = min(max(center.x - half, bounds.x0), bounds.x1 - side)
        y0 = min(max(center.y - half, bounds.y0), bounds.y1 - side)
        x0 = max(x0, bounds.x0)
        y0 = max(y0, bounds.y0)
        return Rect(x0, y0, min(x0 + side, bounds.x1), min(y0 + side, bounds.y1))

    def _initiate(self, packet: Packet) -> None:
        record = self.lookup_destination(packet.src, packet.dst)
        key = (packet.src, packet.dst)
        seq = self._session_seq.get(key, 0)
        self._session_seq[key] = seq + 1
        packet.header = ZapHeader(
            zone=self._zone_for(record.position, seq),
            ttl=self.config.ttl,
            session=packet.src * 100_003 + packet.dst,
            seq=seq,
        )
        node = self.network.nodes[packet.src]
        packet.record_visit(node.id)
        # ZAP encrypts the payload for the destination once (symmetric,
        # key assumed established as in the paper's model).
        delay = self.cost.symmetric_encrypt()
        self._after_crypto(packet, delay, lambda: self._forward(node, packet))

    def _dispatch(self, node: Node, packet: Packet) -> None:
        if packet.kind is not PacketKind.DATA or not isinstance(
            packet.header, ZapHeader
        ):
            return
        hdr: ZapHeader = packet.header
        dedup = (hdr.session, hdr.seq, node.id, hdr.stage)
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        hdr.retries = 0

        if node.id == packet.dst:
            self._delivered(packet)
            # D keeps flooding like any zone member so it cannot be
            # singled out by its (non-)forwarding behaviour.
        now = self.engine.now
        if hdr.stage == 1:
            if hdr.zone.contains(node.position(now)):
                self._flood(node, packet)
            return
        self._forward(node, packet)

    # ------------------------------------------------------------------
    def _forward(self, node: Node, packet: Packet) -> None:
        hdr: ZapHeader = packet.header
        now = self.engine.now
        pos = node.position(now)

        if hdr.zone.contains(pos):
            hdr.stage = 1
            self._flood(node, packet)
            return
        if hdr.ttl <= 0:
            self._dropped(packet, "ttl-exhausted")
            return

        target = hdr.zone.center
        entries = node.neighbors.live_entries(now)

        if hdr.mode == "perimeter":
            assert hdr.perimeter_entry is not None
            if pos.distance_to(target) < hdr.perimeter_entry.distance_to(target):
                hdr.mode = "greedy"
                hdr.perimeter_entry = None

        if hdr.mode == "greedy":
            choice = next_hop_greedy(pos, target, entries)
            if choice is None:
                hdr.mode = "perimeter"
                hdr.perimeter_entry = pos
                choice = next_hop_right_hand(pos, hdr.prev_pos or target, entries)
        else:
            choice = next_hop_right_hand(pos, hdr.prev_pos or target, entries)

        if choice is None:
            self._dropped(packet, "no-neighbors")
            return
        hdr.ttl -= 1
        hdr.prev_pos = pos
        self._mark_participant(packet, node.id)
        self.network.unicast(
            node.id,
            choice.link_address,
            packet,
            on_failed=lambda reason, c=choice: self._on_link_failure(
                node, c, packet, reason
            ),
            flow=packet.flow_id,
        )

    def _flood(self, node: Node, packet: Packet) -> None:
        """In-zone flood: every zone member rebroadcasts once."""
        hdr: ZapHeader = packet.header
        self._mark_participant(packet, node.id)
        members = self.network.nodes_in_rect(hdr.zone)
        receivers = self.network.local_broadcast(
            node.id, packet, flow=packet.flow_id
        )
        if self.zone_delivery_observer is not None:
            # Sender + in-zone receivers are the visibly active set.
            member_set = set(members)
            in_zone = [node.id] + [r for r in receivers if r in member_set]
            self.zone_delivery_observer(self.engine.now, in_zone)
        self.metrics.note("zap_zone_floods")
        self.metrics.note("zap_zone_population", len(members))

    def _on_link_failure(self, node: Node, choice, packet: Packet, reason: str) -> None:
        hdr: ZapHeader = packet.header
        node.neighbors.remove(choice.link_address)
        hdr.retries += 1
        hdr.ttl += 1
        if hdr.retries > self.config.max_forward_retries:
            self._dropped(packet, f"link-failure:{reason}")
            return
        self._forward(node, packet)
