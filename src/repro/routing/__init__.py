"""Routing protocols: the GPSR baseline and the two anonymous
comparison protocols from the paper's evaluation (ALARM, AO2P).

ALERT itself lives in :mod:`repro.core` (it is the paper's
contribution); all four share the :class:`RoutingProtocol` interface
so the experiment harness can swap them freely.
"""

from repro.routing.alarm import AlarmConfig, AlarmProtocol
from repro.routing.ao2p import Ao2pConfig, Ao2pProtocol
from repro.routing.base import RoutingProtocol
from repro.routing.gpsr import GpsrConfig, GpsrProtocol
from repro.routing.taxonomy import PROTOCOL_TAXONOMY, ProtocolEntry, format_taxonomy
from repro.routing.zap import ZapConfig, ZapProtocol

__all__ = [
    "RoutingProtocol",
    "GpsrProtocol",
    "GpsrConfig",
    "AlarmProtocol",
    "AlarmConfig",
    "Ao2pProtocol",
    "Ao2pConfig",
    "ZapProtocol",
    "ZapConfig",
    "PROTOCOL_TAXONOMY",
    "ProtocolEntry",
    "format_taxonomy",
]
