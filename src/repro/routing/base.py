"""The protocol interface shared by GPSR, ALERT, ALARM, and AO2P.

A protocol attaches to a :class:`~repro.net.network.Network`, claims
every node's receive hook, wires the network's transmission listener to
a :class:`~repro.experiments.metrics.MetricsCollector`, and exposes
``send_data(src, dst, size)`` to traffic sources.  Crypto processing
is charged as *scheduled simulated delay* through :meth:`_after_crypto`
so that end-to-end latency figures emerge from the event timeline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.location.service import LocationService
from repro.net.feedback import FlowFeedback
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind


class RoutingProtocol(ABC):
    """Base class for routing protocols.

    Parameters
    ----------
    network:
        The network to attach to (the protocol takes over every node's
        ``on_receive`` hook).
    location:
        Location service used to resolve destination position/keys.
    metrics:
        Collector for flow records (a fresh one is created if omitted).
    cost_model:
        Crypto cost model (a fresh one if omitted).
    """

    #: protocol name used in metrics and result tables
    name = "base"

    def __init__(
        self,
        network: Network,
        location: LocationService,
        metrics: MetricsCollector | None = None,
        cost_model: CryptoCostModel | None = None,
    ) -> None:
        self.network = network
        self.location = location
        self.engine = network.engine
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.cost = cost_model if cost_model is not None else CryptoCostModel()
        #: optional per-flow delivery-feedback channel for closed-loop
        #: traffic; assigned by the harness (see ``runner.py``) so
        #: protocol constructors stay unchanged.  Purely observational:
        #: reporting consumes no randomness and schedules nothing.
        self.feedback: FlowFeedback | None = None
        network.tx_listener = self.metrics.record_tx
        for node in network.nodes:
            node.on_receive = self._dispatch

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def send_data(
        self,
        src: int,
        dst: int,
        size_bytes: int = 512,
        on_flow: Callable[[int], None] | None = None,
    ) -> int:
        """Originate one data packet from ``src`` to ``dst``.

        Returns the metrics flow id.  Protocol subclasses implement
        the actual initiation in :meth:`_initiate`.

        ``on_flow``, when given, receives the flow id *before* the
        packet is handed to the protocol.  Feedback reporting is
        synchronous — a MAC-layer drop or terminal no-route drop can
        fire inside :meth:`_initiate`, before ``send_data`` returns —
        so a caller that wants to observe its flow's feedback must
        register through this hook rather than on the return value, or
        it misses any signal raised during initiation.
        """
        if src == dst:
            raise ValueError("source and destination must differ")
        flow_id = self.metrics.start_flow(
            src, dst, self.engine.now, size_bytes, protocol=self.name
        )
        if on_flow is not None:
            on_flow(flow_id)
        packet = Packet(
            kind=PacketKind.DATA,
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            created_at=self.engine.now,
            flow_id=flow_id,
        )
        self._initiate(packet)
        return flow_id

    @abstractmethod
    def _initiate(self, packet: Packet) -> None:
        """Start routing a freshly created data packet from its source."""

    @abstractmethod
    def _dispatch(self, node: Node, packet: Packet) -> None:
        """Handle link-layer delivery of ``packet`` at ``node``."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _after_crypto(self, packet: Packet, delay: float, fn: Callable[[], None]) -> None:
        """Charge ``delay`` seconds of crypto processing, then run ``fn``."""
        packet.crypto_delay += delay
        if delay > 0:
            self.engine.schedule_in(
                delay, fn, category="control", cancellable=False
            )
        else:
            fn()

    def _delivered(self, packet: Packet) -> None:
        """Record first delivery at the true destination."""
        if packet.flow_id is not None:
            self.metrics.record_delivery(
                packet.flow_id, self.engine.now, path=packet.trace
            )
            if self.feedback is not None:
                self.feedback.delivery(packet.flow_id, self.engine.now)

    def _dropped(self, packet: Packet, reason: str) -> None:
        """Record a terminal drop."""
        if packet.flow_id is not None:
            self.metrics.record_drop(packet.flow_id, reason)
            if self.feedback is not None:
                self.feedback.drop(packet.flow_id, reason, self.engine.now)

    def _report_link_failure(self, packet: Packet, reason: str) -> None:
        """Report a non-terminal per-hop link failure to feedback."""
        if self.feedback is not None and packet.flow_id is not None:
            self.feedback.link_failure(
                packet.flow_id, reason, self.engine.now
            )

    def _report_timeout(self, flow_id: int | None) -> None:
        """Report an end-to-end confirmation timeout to feedback."""
        if self.feedback is not None:
            self.feedback.timeout(flow_id, self.engine.now)

    def _mark_participant(self, packet: Packet, node_id: int) -> None:
        """Record ``node_id`` as an actual participant for this flow."""
        if packet.flow_id is not None:
            self.metrics.record_participant(packet.flow_id, node_id)

    def lookup_destination(self, requester: int, dst: int):
        """Resolve the destination's location record via the service."""
        return self.location.lookup(requester, dst)
