"""Table 1: the paper's taxonomy of anonymous routing protocols.

A structured registry of the protocols the paper surveys, with their
category (reactive/proactive/middleware, hop-by-hop encryption vs
redundant traffic, topology vs geographic) and the anonymity
properties each provides.  ``format_taxonomy`` re-renders the table.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProtocolEntry:
    """One row of Table 1."""

    name: str
    category: str  # Reactive / Proactive / Middleware
    mechanism: str  # Hop-by-hop encryption / Redundant traffic
    routing: str  # Topology / Geographic
    identity_anonymity: str
    location_anonymity: str
    route_anonymity: bool


PROTOCOL_TAXONOMY: tuple[ProtocolEntry, ...] = (
    ProtocolEntry("MASK", "Reactive", "Hop-by-hop encryption", "Topology",
                  "source", "n/a", True),
    ProtocolEntry("ANODR", "Reactive", "Hop-by-hop encryption", "Topology",
                  "source, destination", "n/a", True),
    ProtocolEntry("Discount-ANODR", "Reactive", "Hop-by-hop encryption",
                  "Topology", "source, destination", "n/a", True),
    ProtocolEntry("Zhou et al.", "Reactive", "Hop-by-hop encryption",
                  "Geographic", "source, destination",
                  "source, destination", False),
    ProtocolEntry("Pathak et al.", "Reactive", "Hop-by-hop encryption",
                  "Geographic", "source, destination",
                  "source, destination", False),
    ProtocolEntry("AO2P", "Reactive", "Hop-by-hop encryption", "Geographic",
                  "source, destination", "source, destination", False),
    ProtocolEntry("PRISM", "Reactive", "Hop-by-hop encryption", "Geographic",
                  "source, destination", "source, destination", False),
    ProtocolEntry("Aad et al.", "Reactive", "Redundant traffic", "Topology",
                  "destination", "n/a", True),
    ProtocolEntry("ASR", "Reactive", "Redundant traffic", "Geographic",
                  "source, destination", "source, destination", False),
    ProtocolEntry("ZAP", "Reactive", "Redundant traffic", "Geographic",
                  "destination", "destination", False),
    ProtocolEntry("ALARM", "Proactive", "Redundant traffic", "Topology",
                  "source, destination", "source", False),
    ProtocolEntry("MAPCP", "Middleware", "Redundant traffic", "Geographic",
                  "source, destination", "n/a", True),
    # ALERT itself, for comparison (not a row in the original table):
    ProtocolEntry("ALERT", "Reactive", "Randomised routing", "Geographic",
                  "source, destination", "source, destination", True),
)


def format_taxonomy(entries: tuple[ProtocolEntry, ...] = PROTOCOL_TAXONOMY) -> str:
    """Render the taxonomy as an aligned text table (Table 1)."""
    headers = (
        "Name", "Category", "Mechanism", "Routing",
        "Identity anonymity", "Location anonymity", "Route anonymity",
    )
    rows = [
        (
            e.name,
            e.category,
            e.mechanism,
            e.routing,
            e.identity_anonymity,
            e.location_anonymity,
            "yes" if e.route_anonymity else "no",
        )
        for e in entries
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(r)))
    return "\n".join(lines)
