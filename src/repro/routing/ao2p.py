"""AO2P: Ad hoc On-demand Position-based Private routing (Wu, TMC 2005;
paper ref. [10]).

The paper's description (§5): "The routing of AO2P is similar to GPSR
except it has a contention phase in which the neighboring nodes of the
current packet holder will contend to be the next hop. … Also, AO2P
selects a position on the line connecting the source and destination
that is further to the source node than the destination … which may
lead to long path length with higher routing cost than GPSR."

Model
-----
* The routing target is the *proxy destination*: the point on the ray
  S→D extended ``proxy_extension_m`` beyond D, clamped to the field,
  so the real destination's position never appears in the packet.
* Each hop adds a contention-phase delay (receiver-side distance-class
  contention) plus one public-key operation (AO2P is hop-by-hop
  encryption in Table 1) — together slightly more than ALARM's per-hop
  cost, matching "the latency of AO2P is a little higher than ALARM".
* The destination, being on the S→proxy line and closer to the proxy
  than the current holder's other neighbors, naturally wins contention
  when in range; we deliver when the destination is selected or when
  it overhears as a direct neighbor of the holder.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.geometry.primitives import Point
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.routing.base import RoutingProtocol
from repro.routing.gpsr import next_hop_greedy, next_hop_right_hand


@dataclass(frozen=True)
class Ao2pConfig:
    """AO2P tunables.

    Parameters
    ----------
    proxy_extension_m:
        How far beyond the destination (along the S→D ray) the proxy
        position is placed.
    contention_classes:
        Number of distance classes in the contention phase.
    contention_slot_s:
        Per-class contention slot time; the expected per-hop contention
        delay is ``(classes / 2) · slot``.
    ttl:
        Maximum hops per packet.
    max_forward_retries:
        Alternative neighbors tried after a link failure.
    """

    proxy_extension_m: float = 200.0
    contention_classes: int = 4
    contention_slot_s: float = 0.002
    ttl: int = 12
    max_forward_retries: int = 3


@dataclass
class Ao2pHeader:
    """Per-packet AO2P routing state (proxy target, not D's position)."""

    proxy: Point
    dst_addr: int
    ttl: int
    mode: str = "greedy"
    perimeter_entry: Point | None = None
    prev_pos: Point | None = None
    retries: int = 0

    def clone(self) -> "Ao2pHeader":
        """Independent copy for a broadcast branch (fields immutable)."""
        return replace(self)


class Ao2pProtocol(RoutingProtocol):
    """The AO2P comparison protocol."""

    name = "AO2P"

    def __init__(self, network, location, metrics=None, cost_model=None,
                 config: Ao2pConfig | None = None) -> None:
        super().__init__(network, location, metrics, cost_model)
        self.config = config if config is not None else Ao2pConfig()
        self._rng = self.engine.rng.stream("ao2p")

    # ------------------------------------------------------------------
    def _proxy_position(self, src_pos: Point, dst_pos: Point) -> Point:
        """The anonymised destination: beyond D on the S→D ray."""
        d = src_pos.distance_to(dst_pos)
        extension = d + self.config.proxy_extension_m
        proxy = src_pos.toward(dst_pos, extension)
        return self.network.field.clamp(proxy)

    def _contention_delay(self, n_candidates: int) -> float:
        """Receiver contention delay for one hop.

        Candidates are classified into distance classes; the winner's
        class index drives how many slots elapse.  More candidates →
        later expected winning slot (bounded by the class count).
        """
        if n_candidates <= 0:
            return self.config.contention_slot_s
        occupied = min(self.config.contention_classes, n_candidates)
        slot = 1 + int(self._rng.integers(0, occupied))
        return slot * self.config.contention_slot_s

    # ------------------------------------------------------------------
    def _initiate(self, packet: Packet) -> None:
        record = self.lookup_destination(packet.src, packet.dst)
        src_pos = self.network.nodes[packet.src].position(self.engine.now)
        packet.header = Ao2pHeader(
            proxy=self._proxy_position(src_pos, record.position),
            dst_addr=packet.dst,
            ttl=self.config.ttl,
        )
        node = self.network.nodes[packet.src]
        packet.record_visit(node.id)
        delay = self.cost.pubkey_encrypt()
        self._after_crypto(packet, delay, lambda: self._forward(node, packet))

    def _dispatch(self, node: Node, packet: Packet) -> None:
        if packet.kind is not PacketKind.DATA or not isinstance(
            packet.header, Ao2pHeader
        ):
            return
        packet.header.retries = 0
        # Hop-by-hop encryption: the new holder re-encrypts for its
        # next hop (one public-key operation per hop).
        delay = self.cost.pubkey_encrypt()
        self._after_crypto(packet, delay, lambda: self._forward(node, packet))

    def _forward(self, node: Node, packet: Packet) -> None:
        hdr: Ao2pHeader = packet.header
        if node.id == hdr.dst_addr:
            self._delivered(packet)
            return
        if hdr.ttl <= 0:
            self._dropped(packet, "ttl-exhausted")
            return
        now = self.engine.now
        self_pos = node.position(now)
        entries = node.neighbors.live_entries(now)

        # The destination contends like any neighbor and, lying on the
        # path toward the proxy, wins whenever it is in range and makes
        # progress toward the proxy.
        direct = next((e for e in entries if e.link_address == hdr.dst_addr), None)
        if direct is not None and direct.position.sq_distance_to(
            hdr.proxy
        ) < self_pos.sq_distance_to(hdr.proxy):
            self._transmit(node, direct, packet, self_pos, contenders=len(entries))
            return

        if hdr.mode == "perimeter":
            assert hdr.perimeter_entry is not None
            if self_pos.distance_to(hdr.proxy) < hdr.perimeter_entry.distance_to(
                hdr.proxy
            ):
                hdr.mode = "greedy"
                hdr.perimeter_entry = None

        if hdr.mode == "greedy":
            choice = next_hop_greedy(self_pos, hdr.proxy, entries)
            if choice is None:
                # Local maximum near the proxy: if the destination is a
                # plain neighbor, it still receives; otherwise perimeter.
                if direct is not None:
                    self._transmit(
                        node, direct, packet, self_pos, contenders=len(entries)
                    )
                    return
                hdr.mode = "perimeter"
                hdr.perimeter_entry = self_pos
                choice = next_hop_right_hand(
                    self_pos, hdr.prev_pos or hdr.proxy, entries
                )
        else:
            choice = next_hop_right_hand(
                self_pos, hdr.prev_pos or hdr.proxy, entries
            )

        if choice is None:
            self._dropped(packet, "no-neighbors")
            return
        self._transmit(node, choice, packet, self_pos, contenders=len(entries))

    def _transmit(
        self,
        node: Node,
        choice,
        packet: Packet,
        self_pos: Point,
        contenders: int,
    ) -> None:
        hdr: Ao2pHeader = packet.header
        hdr.ttl -= 1
        hdr.prev_pos = self_pos
        self._mark_participant(packet, node.id)
        contention = self._contention_delay(contenders)
        packet.crypto_delay += contention
        self.engine.schedule_in(
            contention,
            lambda: self.network.unicast(
                node.id,
                choice.link_address,
                packet,
                on_failed=lambda reason, c=choice: self._on_link_failure(
                    node, c, packet, reason
                ),
                flow=packet.flow_id,
            ),
        )

    def _on_link_failure(self, node: Node, choice, packet: Packet, reason: str) -> None:
        hdr: Ao2pHeader = packet.header
        node.neighbors.remove(choice.link_address)
        hdr.retries += 1
        hdr.ttl += 1
        if hdr.retries > self.config.max_forward_retries:
            self._dropped(packet, f"link-failure:{reason}")
            return
        self._forward(node, packet)
