"""GPSR: Greedy Perimeter Stateless Routing (Karp & Kung; paper ref. [15]).

The baseline of the paper's evaluation: "a packet is always forwarded
to the node nearest to the destination.  When such a node does not
exist, GPSR uses perimeter forwarding to find the hop that is the
closest to the destination."

Implementation notes
--------------------
* Greedy mode forwards to the neighbor-table entry closest to the
  target position, requiring strict progress.
* Perimeter mode planarises the local neighborhood with the Gabriel
  graph and walks it by the right-hand rule, recovering to greedy as
  soon as the packet is closer to the target than where it entered
  perimeter mode.  (The full face-crossing test of the original paper
  is omitted; the TTL bounds any residual walks, matching the paper's
  "forwarding continues until the routing path length reaches a
  predefined TTL … set to 10".)
* The greedy/Gabriel/right-hand-rule helpers are module-level functions
  because ALERT reuses them for its RF-to-RF segments (§2.3: "Between
  any two RFs, the relays perform the GPSR routing").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.net.neighbor_table import NeighborEntry, NeighborTable
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.geometry.primitives import Point
from repro.routing.base import RoutingProtocol

_PROGRESS_EPS = 1e-9


# ----------------------------------------------------------------------
# reusable geographic-forwarding primitives
# ----------------------------------------------------------------------
def next_hop_greedy(
    self_pos: Point, target: Point, entries: list[NeighborEntry]
) -> NeighborEntry | None:
    """The neighbor strictly closest to ``target``, or ``None``.

    Returns ``None`` when no neighbor makes progress (a local maximum
    — GPSR's trigger for perimeter mode, and ALERT's trigger for
    declaring the current node a random forwarder).
    """
    best: NeighborEntry | None = None
    own = self_pos.sq_distance_to(target)
    best_d = own
    for e in entries:
        d = e.position.sq_distance_to(target)
        if d < best_d - _PROGRESS_EPS:
            best = e
            best_d = d
    return best


#: Neighborhood size at which the batched greedy path switches from
#: the scalar epsilon chain to the NumPy vector pass.  Measured
#: crossover on this kernel: the vector pass (with its column-cache
#: build amortised over a round's decisions) wins from ~36 rows; below
#: that the scalar loop's lack of fixed per-array overhead wins.  Same
#: adaptive-cutover idiom as ``Network._REBUCKET_FRACTION``.
_BATCH_MIN = 36


def next_hop_greedy_batched(
    self_pos: Point,
    target: Point,
    table: NeighborTable,
    now: float,
    batch_min: int = _BATCH_MIN,
) -> NeighborEntry | None:
    """:func:`next_hop_greedy` over a table's cached column arrays.

    Node-for-node identical to the scalar path over
    ``table.live_entries(now)`` at any ``batch_min``: squared distances
    come out of one vector pass (``dx*dx + dy*dy`` elementwise — the
    exact two-term IEEE sum ``Point.sq_distance_to`` computes), and the
    scalar epsilon chain is then replayed over only the candidates that
    could ever win it.  A row updates the scalar chain's ``best`` only
    if ``d < best_d - eps`` with ``best_d`` starting at the own
    distance and only ever decreasing, so every winner satisfies
    ``d < own - eps`` — the vector prefilter — and candidate order
    (ascending address) matches the scalar iteration order.

    Small neighborhoods (fewer than ``batch_min`` rows) run the scalar
    chain directly: per-array fixed overhead exceeds the whole loop
    there, and the result is identical either way.
    """
    if len(table) < batch_min:
        return next_hop_greedy(self_pos, target, table.live_entries(now))
    rows, xs, ys, seen = table.columns()
    dx = xs - target.x
    dy = ys - target.y
    d2 = dx * dx + dy * dy
    own = self_pos.sq_distance_to(target)
    mask = d2 < own - _PROGRESS_EPS
    mask &= seen >= now - table.ttl
    cand = np.flatnonzero(mask)
    best: NeighborEntry | None = None
    best_d = own
    for i in cand.tolist():
        d = d2[i]
        if d < best_d - _PROGRESS_EPS:
            best = rows[i]
            best_d = d
    return best


def gabriel_neighbors(
    self_pos: Point, entries: list[NeighborEntry]
) -> list[NeighborEntry]:
    """Local Gabriel-graph planarisation of the one-hop neighborhood.

    Edge (self, v) survives iff no witness w lies strictly inside the
    circle with diameter (self, v).  Planarity is what makes the
    right-hand rule traverse faces instead of looping.
    """
    keep: list[NeighborEntry] = []
    for v in entries:
        mid = self_pos.midpoint(v.position)
        r2 = self_pos.sq_distance_to(v.position) / 4.0
        ok = True
        for w in entries:
            if w is v:
                continue
            if w.position.sq_distance_to(mid) < r2 - _PROGRESS_EPS:
                ok = False
                break
        if ok:
            keep.append(v)
    return keep


def next_hop_right_hand(
    self_pos: Point, reference: Point, entries: list[NeighborEntry]
) -> NeighborEntry | None:
    """First planar neighbor counterclockwise from the reference ray.

    ``reference`` is the previous hop's position (or the target when
    entering perimeter mode).  Returns ``None`` only when there are no
    neighbors at all.
    """
    planar = gabriel_neighbors(self_pos, entries)
    if not planar:
        return None
    ref_angle = math.atan2(reference.y - self_pos.y, reference.x - self_pos.x)
    best: NeighborEntry | None = None
    best_sweep = float("inf")
    for e in planar:
        a = math.atan2(e.position.y - self_pos.y, e.position.x - self_pos.x)
        sweep = (a - ref_angle) % (2.0 * math.pi)
        if sweep < 1e-12:
            sweep = 2.0 * math.pi  # going straight back is the last resort
        if sweep < best_sweep:
            best_sweep = sweep
            best = e
    return best


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GpsrConfig:
    """GPSR tunables.

    Parameters
    ----------
    ttl:
        Maximum hops per packet (paper: 10).
    max_forward_retries:
        Alternative neighbors tried after a link-layer failure before
        the packet is dropped at that hop.
    """

    ttl: int = 10
    max_forward_retries: int = 3


@dataclass
class GpsrHeader:
    """Per-packet GPSR routing state."""

    target: Point
    dst_addr: int
    ttl: int
    mode: str = "greedy"  # or "perimeter"
    perimeter_entry: Point | None = None
    prev_pos: Point | None = None
    retries: int = 0

    def clone(self) -> "GpsrHeader":
        """Independent copy for a broadcast branch (fields immutable)."""
        return replace(self)


class GpsrProtocol(RoutingProtocol):
    """The GPSR baseline protocol."""

    name = "GPSR"

    def __init__(self, network, location, metrics=None, cost_model=None,
                 config: GpsrConfig | None = None) -> None:
        super().__init__(network, location, metrics, cost_model)
        self.config = config if config is not None else GpsrConfig()

    # -- origination ---------------------------------------------------
    def _initiate(self, packet: Packet) -> None:
        record = self.lookup_destination(packet.src, packet.dst)
        packet.header = GpsrHeader(
            target=record.position,
            dst_addr=packet.dst,
            ttl=self.config.ttl,
        )
        node = self.network.nodes[packet.src]
        packet.record_visit(node.id)
        self._forward(node, packet)

    # -- reception -------------------------------------------------------
    def _dispatch(self, node: Node, packet: Packet) -> None:
        if packet.kind is not PacketKind.DATA or not isinstance(
            packet.header, GpsrHeader
        ):
            return
        packet.header.retries = 0  # fresh hop, fresh retry budget
        self._forward(node, packet)

    # -- forwarding core ---------------------------------------------------
    def _forward(self, node: Node, packet: Packet) -> None:
        hdr: GpsrHeader = packet.header
        if node.id == hdr.dst_addr:
            self._delivered(packet)
            return
        if hdr.ttl <= 0:
            self._dropped(packet, "ttl-exhausted")
            return

        now = self.engine.now
        self_pos = node.position(now)
        table = node.neighbors

        # Destination adjacency: if D is a live neighbor, hand it over.
        # (Keyed lookup — same "exists and not expired" predicate the
        # old scan over ``live_entries`` applied.)
        direct = table.get(hdr.dst_addr, now)
        if direct is not None:
            self._transmit(node, direct, packet, self_pos)
            return

        if hdr.mode == "perimeter":
            assert hdr.perimeter_entry is not None
            if (
                self_pos.distance_to(hdr.target)
                < hdr.perimeter_entry.distance_to(hdr.target) - _PROGRESS_EPS
            ):
                hdr.mode = "greedy"
                hdr.perimeter_entry = None

        if hdr.mode == "greedy":
            choice = next_hop_greedy_batched(self_pos, hdr.target, table, now)
            if choice is None:
                # Local maximum: enter perimeter mode.  The row list is
                # only materialised on this (rare) fallback path.
                hdr.mode = "perimeter"
                hdr.perimeter_entry = self_pos
                choice = next_hop_right_hand(
                    self_pos, hdr.prev_pos or hdr.target,
                    table.live_entries(now),
                )
        else:
            choice = next_hop_right_hand(
                self_pos, hdr.prev_pos or hdr.target,
                table.live_entries(now),
            )

        if choice is None:
            self._dropped(packet, "no-neighbors")
            return
        self._transmit(node, choice, packet, self_pos)

    def _transmit(
        self, node: Node, choice: NeighborEntry, packet: Packet, self_pos: Point
    ) -> None:
        hdr: GpsrHeader = packet.header
        hdr.ttl -= 1
        hdr.prev_pos = self_pos
        self._mark_participant(packet, node.id)
        self.network.unicast(
            node.id,
            choice.link_address,
            packet,
            on_failed=lambda reason: self._on_link_failure(
                node, choice, packet, reason
            ),
            flow=packet.flow_id,
        )

    def _on_link_failure(
        self, node: Node, choice: NeighborEntry, packet: Packet, reason: str
    ) -> None:
        """Blacklist the failed neighbor and retry from the same node."""
        hdr: GpsrHeader = packet.header
        self._report_link_failure(packet, reason)
        node.neighbors.remove(choice.link_address)
        hdr.retries += 1
        hdr.ttl += 1  # the failed hop did not advance the packet
        if hdr.retries > self.config.max_forward_retries:
            self._dropped(packet, f"link-failure:{reason}")
            return
        self._forward(node, packet)
