"""ALARM: Anonymous Location-Aided Routing in suspicious MANETs
(Defrawy & Tsudik, ICNP 2007; paper ref. [5]).

The paper's description (§5): "each node periodically disseminates its
own identity to its authenticated neighbors and continuously collects
all other nodes' identities.  Thus, nodes can build a secure map of
other nodes for geographical routing.  In routing, each node encrypts
the packet by its key which is verified by the next hop en route.  Such
dissemination period was set to 30 s."

Model
-----
* Every ``dissemination_interval`` (30 s) each node signs and locally
  broadcasts its (pseudonymous) identity + location; receptions are
  counted (they are the "id dissemination hops" of Fig. 15a) and, via
  epidemic aggregation, every node's *secure map* converges to the
  positions as of the start of the round.  We charge one signature per
  announcement and one verification per reception to the crypto cost
  model and store a per-round global map snapshot — the aggregation
  messages themselves ride inside the counted announcements.
* Data routing is greedy geographic toward the destination's *mapped*
  (up to 30 s stale) position, using live neighbor tables for the
  actual hop; each hop performs one public-key verification, charged
  as simulated latency — the source of ALARM's high latency in
  Fig. 14a.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.geometry.primitives import Point
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.routing.base import RoutingProtocol
from repro.routing.gpsr import next_hop_greedy, next_hop_right_hand
from repro.sim.process import PeriodicTask


@dataclass(frozen=True)
class AlarmConfig:
    """ALARM tunables.

    Parameters
    ----------
    dissemination_interval:
        Period of the identity/location dissemination (paper: 30 s).
    ttl:
        Maximum hops per data packet.
    max_forward_retries:
        Alternative neighbors tried after a link failure at one hop.
    """

    dissemination_interval: float = 30.0
    ttl: int = 10
    max_forward_retries: int = 3


@dataclass
class AlarmHeader:
    """Per-packet ALARM routing state."""

    target: Point
    dst_addr: int
    ttl: int
    mode: str = "greedy"
    perimeter_entry: Point | None = None
    prev_pos: Point | None = None
    retries: int = 0

    def clone(self) -> "AlarmHeader":
        """Independent copy for a broadcast branch (fields immutable)."""
        return replace(self)


class AlarmProtocol(RoutingProtocol):
    """The ALARM comparison protocol."""

    name = "ALARM"

    def __init__(self, network, location, metrics=None, cost_model=None,
                 config: AlarmConfig | None = None) -> None:
        super().__init__(network, location, metrics, cost_model)
        self.config = config if config is not None else AlarmConfig()
        #: the "secure map": node id -> position as of the last round
        self.secure_map: dict[int, Point] = {}
        self.dissemination_rounds = 0
        self._run_dissemination_round()
        self._task = PeriodicTask(
            self.engine,
            self.config.dissemination_interval,
            self._run_dissemination_round,
        )

    def stop(self) -> None:
        """Stop the periodic dissemination (end of a run)."""
        self._task.stop()

    # ------------------------------------------------------------------
    # proactive dissemination
    # ------------------------------------------------------------------
    def _run_dissemination_round(self) -> None:
        """One network-wide identity dissemination round.

        Each node signs one announcement (1 signature) heard by its
        in-range neighbors (1 verification per reception); the
        reception count accumulates into the ``dissemination_rx``
        metric used by Fig. 15a's "ALARM (include id dissemination
        hops)" series.
        """
        now = self.engine.now
        self.dissemination_rounds += 1
        total_rx = 0
        for node in self.nodes_shuffled():
            self.secure_map[node.id] = node.position(now)
            self.cost.sign()
            receivers = self.network.neighbors_of(node.id)
            total_rx += len(receivers)
            self.cost.verify(len(receivers))
            node.tx_count += 1
        self.metrics.note("dissemination_rx", total_rx)
        self.metrics.note("dissemination_tx", self.network.n_nodes)

    def nodes_shuffled(self) -> list[Node]:
        """Nodes in id order (kept as a hook for randomised rounds)."""
        return list(self.network.nodes)

    def amortized_dissemination_rx(self) -> float:
        """Dissemination receptions per data packet sent so far."""
        sent = max(self.metrics.packets_sent, 1)
        return self.metrics.counters.get("dissemination_rx", 0.0) / sent

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def _initiate(self, packet: Packet) -> None:
        target = self.secure_map.get(packet.dst)
        if target is None:  # pragma: no cover - map always complete here
            self._dropped(packet, "unknown-destination")
            return
        packet.header = AlarmHeader(
            target=target, dst_addr=packet.dst, ttl=self.config.ttl
        )
        node = self.network.nodes[packet.src]
        packet.record_visit(node.id)
        # The source encrypts the packet with its key (one public-key
        # operation) before the first hop.
        delay = self.cost.pubkey_encrypt()
        self._after_crypto(packet, delay, lambda: self._forward(node, packet))

    def _dispatch(self, node: Node, packet: Packet) -> None:
        if packet.kind is not PacketKind.DATA or not isinstance(
            packet.header, AlarmHeader
        ):
            return
        packet.header.retries = 0
        # The next hop verifies the previous hop's encryption before
        # processing — the per-hop public-key cost of Fig. 14a.
        delay = self.cost.verify()
        self._after_crypto(packet, delay, lambda: self._forward(node, packet))

    def _forward(self, node: Node, packet: Packet) -> None:
        hdr: AlarmHeader = packet.header
        if node.id == hdr.dst_addr:
            self._delivered(packet)
            return
        if hdr.ttl <= 0:
            self._dropped(packet, "ttl-exhausted")
            return
        now = self.engine.now
        self_pos = node.position(now)
        entries = node.neighbors.live_entries(now)

        direct = next((e for e in entries if e.link_address == hdr.dst_addr), None)
        if direct is not None:
            self._transmit(node, direct, packet, self_pos)
            return

        if hdr.mode == "perimeter":
            assert hdr.perimeter_entry is not None
            if self_pos.distance_to(hdr.target) < hdr.perimeter_entry.distance_to(
                hdr.target
            ):
                hdr.mode = "greedy"
                hdr.perimeter_entry = None

        if hdr.mode == "greedy":
            choice = next_hop_greedy(self_pos, hdr.target, entries)
            if choice is None:
                hdr.mode = "perimeter"
                hdr.perimeter_entry = self_pos
                choice = next_hop_right_hand(
                    self_pos, hdr.prev_pos or hdr.target, entries
                )
        else:
            choice = next_hop_right_hand(
                self_pos, hdr.prev_pos or hdr.target, entries
            )

        if choice is None:
            self._dropped(packet, "no-neighbors")
            return
        self._transmit(node, choice, packet, self_pos)

    def _transmit(self, node: Node, choice, packet: Packet, self_pos: Point) -> None:
        hdr: AlarmHeader = packet.header
        hdr.ttl -= 1
        hdr.prev_pos = self_pos
        self._mark_participant(packet, node.id)
        self.network.unicast(
            node.id,
            choice.link_address,
            packet,
            on_failed=lambda reason, c=choice: self._on_link_failure(
                node, c, packet, reason
            ),
            flow=packet.flow_id,
        )

    def _on_link_failure(self, node: Node, choice, packet: Packet, reason: str) -> None:
        hdr: AlarmHeader = packet.header
        node.neighbors.remove(choice.link_address)
        hdr.retries += 1
        hdr.ttl += 1
        if hdr.retries > self.config.max_forward_retries:
            self._dropped(packet, f"link-failure:{reason}")
            return
        self._forward(node, packet)
