"""Key material: RSA-style keypairs and symmetric keys.

Keypairs are textbook RSA over primes found with Miller–Rabin.  The
default modulus is tiny (64-bit) because these keys exist to exercise
the protocols' key-distribution paths, not to resist attack; see
``repro.crypto.cost_model`` for how the *simulated* expense of
realistic key sizes is charged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Deterministic Miller-Rabin witness sets: these bases are proven
# sufficient for all n below the stated bounds.
_MR_WITNESSES_64 = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
)


def is_probable_prime(n: int) -> bool:
    """Miller–Rabin primality test (deterministic for n < 3.3e24)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES_64:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: np.random.Generator) -> int:
    """Draw a random prime with exactly ``bits`` bits."""
    if bits < 3:
        raise ValueError(f"bits must be >= 3, got {bits}")
    while True:
        # Force top bit (exact width) and bottom bit (odd).
        raw = int(rng.integers(0, 1 << (bits - 2), dtype=np.uint64))
        candidate = (1 << (bits - 1)) | (raw << 1) | 1
        if is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    """RSA public part ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        """Modulus width in bits."""
        return self.n.bit_length()


@dataclass(frozen=True)
class PrivateKey:
    """RSA private part ``(n, d)``."""

    n: int
    d: int


@dataclass(frozen=True)
class KeyPair:
    """An RSA keypair owned by one node."""

    public: PublicKey
    private: PrivateKey


def generate_keypair(rng: np.random.Generator, bits: int = 64) -> KeyPair:
    """Generate a textbook-RSA keypair with a ``bits``-bit modulus.

    Parameters
    ----------
    rng:
        Source of randomness (seeded per node).
    bits:
        Modulus width; the two primes get ``bits // 2`` bits each.
    """
    half = bits // 2
    e = 65537
    while True:
        p = random_prime(half, rng)
        q = random_prime(half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        return KeyPair(PublicKey(n, e), PrivateKey(n, d))


@dataclass(frozen=True)
class SymmetricKey:
    """A shared symmetric key (raw bytes).

    In ALERT this is ``K_s^S``: the per-session key the source embeds
    (public-key-encrypted) in its first packet to the destination.
    """

    material: bytes

    def __post_init__(self) -> None:
        if not self.material:
            raise ValueError("empty key material")

    @classmethod
    def generate(cls, rng: np.random.Generator, length: int = 16) -> "SymmetricKey":
        """Draw ``length`` random key bytes."""
        return cls(bytes(int(b) for b in rng.integers(0, 256, size=length)))

    def as_int(self) -> int:
        """Key material as a big-endian integer (for RSA wrapping)."""
        return int.from_bytes(self.material, "big")

    @classmethod
    def from_int(cls, value: int, length: int) -> "SymmetricKey":
        """Rebuild a key from its integer form."""
        return cls(value.to_bytes(length, "big"))
