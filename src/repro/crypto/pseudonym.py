"""Dynamic pseudonyms (paper §2.2).

Each node identifies itself by ``SHA-1(MAC address || timestamp)``
rather than its MAC address.  The timestamp's sub-second digits are
randomised ("we keep the precision of time stamp to a certain extent,
say 1 second, and randomize the digits within 1/10th") so an attacker
cannot recompute the pseudonym, and pseudonyms expire after a
configurable period so they cannot be associated with nodes over time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Pseudonym:
    """One pseudonym: the digest plus its validity window."""

    digest: bytes
    issued_at: float
    expires_at: float

    def valid_at(self, t: float) -> bool:
        """Whether the pseudonym is still valid at time ``t``."""
        return self.issued_at <= t < self.expires_at

    @property
    def hex(self) -> str:
        """Hex rendering (used in logs and metrics keys)."""
        return self.digest.hex()


def compute_pseudonym(mac_address: bytes, timestamp: float) -> bytes:
    """SHA-1 over ``MAC || timestamp`` — the paper's construction."""
    payload = mac_address + format(timestamp, ".9f").encode()
    return hashlib.sha1(payload).digest()


class PseudonymManager:
    """Issues, rotates, and validates one node's pseudonyms.

    Parameters
    ----------
    mac_address:
        The node's real (hidden) MAC address bytes.
    rng:
        Random stream used to randomise the timestamp's sub-second
        digits.
    lifetime:
        Seconds a pseudonym stays valid before rotation.  "If
        pseudonyms are changed too frequently, the routing may get
        perturbed; ... too infrequently, the adversaries may associate
        pseudonyms with nodes" (§2.2) — the default of 30 s sits in
        between and is swept by an ablation bench.
    """

    def __init__(
        self,
        mac_address: bytes,
        rng: np.random.Generator,
        lifetime: float = 30.0,
    ) -> None:
        if lifetime <= 0:
            raise ValueError(f"lifetime must be positive, got {lifetime!r}")
        self.mac_address = mac_address
        self.lifetime = lifetime
        self._rng = rng
        self._current: Pseudonym | None = None
        self._history: list[Pseudonym] = []
        # Every digest this node ever issued, for O(1) ``was_ours`` —
        # the destination runs that check on every data delivery.
        self._digests: set[bytes] = set()

    def current(self, now: float) -> Pseudonym:
        """The valid pseudonym at ``now``, rotating if expired."""
        if self._current is None or not self._current.valid_at(now):
            self._rotate(now)
        assert self._current is not None
        return self._current

    def _rotate(self, now: float) -> None:
        # Whole-second precision with randomised 1/10th digits, per §2.2.
        base = float(int(now))
        fuzz = float(self._rng.uniform(0.0, 0.1))
        digest = compute_pseudonym(self.mac_address, base + fuzz)
        pseudonym = Pseudonym(
            digest=digest, issued_at=now, expires_at=now + self.lifetime
        )
        self._current = pseudonym
        self._history.append(pseudonym)
        self._digests.add(digest)

    def rotations(self) -> int:
        """How many pseudonyms have been issued so far."""
        return len(self._history)

    def was_ours(self, digest: bytes) -> bool:
        """Whether this node ever used ``digest`` (test/metric helper).

        Real protocol code never calls this — it models the *node's own*
        knowledge, which adversaries do not have.
        """
        return digest in self._digests
