"""Simulated-time cost of cryptographic operations.

The paper's §5.2 calibration, measured single-threaded on a 1.8 GHz
processor: "A typical symmetric encryption costs several milliseconds
while a public key encryption operation costs 2-3 hundred
milliseconds."  Those two constants — and *how many* of each operation
a protocol performs per packet — are what separates ALERT's latency
curve from ALARM's and AO2P's in Figs. 14a/14b.  Charging them as
simulated seconds (rather than wall-clock) keeps benchmarks fast and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CryptoCostModel:
    """Per-operation simulated costs, in seconds.

    Defaults follow §5.2: symmetric ≈ 3 ms, public-key ≈ 250 ms
    (mid-point of "2-3 hundred milliseconds"), signatures and
    verifications priced like a public-key operation, hashes priced as
    negligible-but-nonzero.
    """

    symmetric_encrypt_s: float = 0.003
    symmetric_decrypt_s: float = 0.003
    pubkey_encrypt_s: float = 0.25
    pubkey_decrypt_s: float = 0.25
    sign_s: float = 0.25
    verify_s: float = 0.25
    hash_s: float = 0.00001
    #: running tally of charged operations, by name
    charges: dict[str, int] = field(default_factory=dict)

    def _charge(self, name: str, cost: float, count: int) -> float:
        if count < 0:
            raise ValueError(f"negative op count {count!r}")
        self.charges[name] = self.charges.get(name, 0) + count
        return cost * count

    def symmetric_encrypt(self, count: int = 1) -> float:
        """Cost of ``count`` symmetric encryptions."""
        return self._charge("symmetric_encrypt", self.symmetric_encrypt_s, count)

    def symmetric_decrypt(self, count: int = 1) -> float:
        """Cost of ``count`` symmetric decryptions."""
        return self._charge("symmetric_decrypt", self.symmetric_decrypt_s, count)

    def pubkey_encrypt(self, count: int = 1) -> float:
        """Cost of ``count`` public-key encryptions."""
        return self._charge("pubkey_encrypt", self.pubkey_encrypt_s, count)

    def pubkey_decrypt(self, count: int = 1) -> float:
        """Cost of ``count`` public-key decryptions."""
        return self._charge("pubkey_decrypt", self.pubkey_decrypt_s, count)

    def sign(self, count: int = 1) -> float:
        """Cost of ``count`` signature generations."""
        return self._charge("sign", self.sign_s, count)

    def verify(self, count: int = 1) -> float:
        """Cost of ``count`` signature verifications."""
        return self._charge("verify", self.verify_s, count)

    def hash(self, count: int = 1) -> float:
        """Cost of ``count`` hash computations."""
        return self._charge("hash", self.hash_s, count)

    def total_operations(self) -> int:
        """Total crypto operations charged so far."""
        return sum(self.charges.values())
