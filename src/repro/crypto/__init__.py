"""Cryptographic substrate.

Two layers, deliberately separated:

* **Functional layer** (`keys`, `cipher`, `pseudonym`): real — if
  toy-strength — primitives (Miller–Rabin RSA keygen, hash-counter
  stream cipher, SHA-1 pseudonyms) so that every key-distribution and
  encrypt/decrypt code path in the protocols actually executes and is
  testable for round-trip correctness.
* **Cost layer** (`cost_model`): the *simulated-time* price of each
  operation, calibrated to the paper's §5.2 measurement ("a typical
  symmetric encryption costs several milliseconds while a public key
  encryption operation costs 2-3 hundred milliseconds" on a 1.8 GHz
  CPU).  Protocol latency figures are driven by this layer, never by
  wall-clock time.
"""

from repro.crypto.cipher import (
    PublicKeyCipher,
    SymmetricCipher,
    hybrid_decrypt,
    hybrid_encrypt,
)
from repro.crypto.cost_model import CryptoCostModel
from repro.crypto.keys import KeyPair, SymmetricKey, generate_keypair
from repro.crypto.pseudonym import Pseudonym, PseudonymManager

__all__ = [
    "KeyPair",
    "SymmetricKey",
    "generate_keypair",
    "SymmetricCipher",
    "PublicKeyCipher",
    "hybrid_encrypt",
    "hybrid_decrypt",
    "CryptoCostModel",
    "Pseudonym",
    "PseudonymManager",
]
