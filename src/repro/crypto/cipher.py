"""Symmetric and public-key ciphers (functional layer).

``SymmetricCipher`` is a hash-counter stream cipher (SHA-256 keystream
XOR) standing in for AES; ``PublicKeyCipher`` is chunked textbook RSA
standing in for the paper's RSA.  Both round-trip exactly and fail
loudly on the wrong key with overwhelming probability thanks to an
appended keyed MAC tag.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.keys import KeyPair, PublicKey, SymmetricKey

_TAG_LEN = 8


class IntegrityError(ValueError):
    """Decryption failed authentication (wrong key or tampered data)."""


class ShadowCiphertext(bytes):
    """Placeholder ciphertext for ``crypto_mode="cost-only"`` runs.

    A real ``bytes`` instance of exactly the wire length the genuine
    cipher would have produced — packet sizes, MAC timing, and every
    length-derived metric stay bit-identical — that additionally
    carries the true plaintext so correct-key decryption can restore
    it without doing any modular arithmetic.  The crypto *time* is
    still charged through the cost model by the caller; only the byte
    crunching is skipped.

    Construct with either an ``int`` (zero bytes of that wire length)
    or existing content bytes (e.g. after bit-flip scrambling).
    """

    plaintext: bytes

    def __new__(
        cls, content: int | bytes, plaintext: bytes
    ) -> "ShadowCiphertext":
        self = super().__new__(cls, content)
        self.plaintext = plaintext
        return self

    def __getnewargs__(self) -> tuple[bytes, bytes]:
        # Packets deepcopy their headers on fork; rebuild with both
        # constructor arguments (plain bytes only carries itself).
        return (bytes(self), self.plaintext)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream of exactly ``length`` bytes."""
    if length <= 0:
        return b""
    prefix = key + nonce
    blocks = b"".join(
        hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
        for counter in range((length + 31) // 32)
    )
    return blocks[:length] if len(blocks) != length else blocks


def _xor(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings via one big-int operation."""
    n = len(a)
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(n, "big")


class SymmetricCipher:
    """Authenticated stream cipher under a :class:`SymmetricKey`.

    Wire format: ``nonce (8) || ciphertext || tag (8)``.
    """

    NONCE_LEN = 8

    def __init__(self, key: SymmetricKey) -> None:
        self._key = key.material

    def encrypt(self, plaintext: bytes, nonce: bytes) -> bytes:
        """Encrypt ``plaintext`` under the given 8-byte nonce."""
        if len(nonce) != self.NONCE_LEN:
            raise ValueError(f"nonce must be {self.NONCE_LEN} bytes")
        stream = _keystream(self._key, nonce, len(plaintext))
        ct = _xor(plaintext, stream)
        tag = hmac.new(self._key, nonce + ct, hashlib.sha256).digest()[:_TAG_LEN]
        return nonce + ct + tag

    def encrypt_cost_only(self, plaintext: bytes, nonce: bytes) -> ShadowCiphertext:
        """Wire-length-exact placeholder for :meth:`encrypt`."""
        if len(nonce) != self.NONCE_LEN:
            raise ValueError(f"nonce must be {self.NONCE_LEN} bytes")
        return ShadowCiphertext(
            self.NONCE_LEN + len(plaintext) + _TAG_LEN, plaintext
        )

    def decrypt(self, blob: bytes) -> bytes:
        """Decrypt and authenticate; raises :class:`IntegrityError`."""
        if isinstance(blob, ShadowCiphertext):
            return blob.plaintext
        if len(blob) < self.NONCE_LEN + _TAG_LEN:
            raise IntegrityError("ciphertext too short")
        nonce = blob[: self.NONCE_LEN]
        ct = blob[self.NONCE_LEN : -_TAG_LEN]
        tag = blob[-_TAG_LEN:]
        expect = hmac.new(self._key, nonce + ct, hashlib.sha256).digest()[:_TAG_LEN]
        if not hmac.compare_digest(tag, expect):
            raise IntegrityError("authentication tag mismatch")
        stream = _keystream(self._key, nonce, len(ct))
        return _xor(ct, stream)


class PublicKeyCipher:
    """Chunked textbook RSA over byte strings.

    Plaintext is split into chunks strictly smaller than the modulus;
    each chunk is padded with a one-byte length header so decryption
    restores exact byte boundaries.
    """

    def __init__(self, public: PublicKey, keypair: KeyPair | None = None) -> None:
        self._public = public
        self._keypair = keypair
        n_bytes = (public.n.bit_length() + 7) // 8
        # Reserve one byte of headroom so the chunk integer < n, and one
        # byte for the length header.
        self._chunk = max(n_bytes - 2, 1)
        self._block = n_bytes

    @classmethod
    def for_encryption(cls, public: PublicKey) -> "PublicKeyCipher":
        """Cipher that can encrypt (and verify) only."""
        return cls(public)

    @classmethod
    def for_owner(cls, keypair: KeyPair) -> "PublicKeyCipher":
        """Cipher for the keypair owner (can also decrypt and sign)."""
        return cls(keypair.public, keypair)

    # -- encryption ------------------------------------------------------
    def ciphertext_length(self, plaintext_len: int) -> int:
        """Wire length :meth:`encrypt` produces for a plaintext length."""
        blocks = -(-plaintext_len // self._chunk) if plaintext_len else 1
        return blocks * self._block

    def encrypt_cost_only(self, plaintext: bytes) -> ShadowCiphertext:
        """Wire-length-exact placeholder for :meth:`encrypt`."""
        return ShadowCiphertext(
            self.ciphertext_length(len(plaintext)), plaintext
        )

    def encrypt(self, plaintext: bytes) -> bytes:
        """RSA-encrypt ``plaintext`` (any length) for the public key."""
        out = bytearray()
        for i in range(0, len(plaintext), self._chunk):
            piece = plaintext[i : i + self._chunk]
            framed = bytes([len(piece)]) + piece.ljust(self._chunk, b"\0")
            m = int.from_bytes(framed, "big")
            c = pow(m, self._public.e, self._public.n)
            out.extend(c.to_bytes(self._block, "big"))
        # Empty plaintext still produces one block so the ciphertext is
        # never empty (simplifies packet handling).
        if not plaintext:
            framed = bytes([0]) + b"\0" * self._chunk
            m = int.from_bytes(framed, "big")
            c = pow(m, self._public.e, self._public.n)
            out.extend(c.to_bytes(self._block, "big"))
        return bytes(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt with the private key; requires owner construction."""
        if self._keypair is None:
            raise PermissionError("no private key available")
        if isinstance(ciphertext, ShadowCiphertext):
            return ciphertext.plaintext
        if len(ciphertext) % self._block:
            raise IntegrityError("ciphertext not block-aligned")
        priv = self._keypair.private
        out = bytearray()
        for i in range(0, len(ciphertext), self._block):
            c = int.from_bytes(ciphertext[i : i + self._block], "big")
            if c >= priv.n:
                raise IntegrityError("ciphertext block out of range")
            m = pow(c, priv.d, priv.n)
            try:
                framed = m.to_bytes(self._chunk + 1, "big")
            except OverflowError as exc:
                raise IntegrityError("decryption under wrong key") from exc
            length = framed[0]
            if length > self._chunk:
                raise IntegrityError("corrupt chunk header")
            out.extend(framed[1 : 1 + length])
        return bytes(out)

    # -- signatures ------------------------------------------------------
    def sign(self, message: bytes) -> int:
        """Sign ``message`` (hash-then-exponentiate)."""
        if self._keypair is None:
            raise PermissionError("no private key available")
        priv = self._keypair.private
        digest = int.from_bytes(
            hashlib.sha256(message).digest(), "big"
        ) % priv.n
        return pow(digest, priv.d, priv.n)

    def verify(self, message: bytes, signature: int) -> bool:
        """Verify a signature produced by :meth:`sign`."""
        digest = int.from_bytes(
            hashlib.sha256(message).digest(), "big"
        ) % self._public.n
        return pow(signature, self._public.e, self._public.n) == digest


def hybrid_encrypt(
    public: PublicKey, key: SymmetricKey, plaintext: bytes, nonce: bytes
) -> tuple[bytes, bytes]:
    """ALERT's hybrid scheme: wrap ``key`` under ``public``, encrypt data.

    Returns ``(wrapped_key, ciphertext)`` — exactly the paper's §2.5
    construction where the source embeds ``K_s^S`` encrypted with the
    destination's public key and protects the payload symmetrically.
    """
    wrapped = PublicKeyCipher.for_encryption(public).encrypt(key.material)
    ciphertext = SymmetricCipher(key).encrypt(plaintext, nonce)
    return wrapped, ciphertext


def hybrid_decrypt(
    keypair: KeyPair, wrapped_key: bytes, ciphertext: bytes
) -> bytes:
    """Inverse of :func:`hybrid_encrypt` at the destination."""
    material = PublicKeyCipher.for_owner(keypair).decrypt(wrapped_key)
    key = SymmetricKey(material)
    return SymmetricCipher(key).decrypt(ciphertext)
