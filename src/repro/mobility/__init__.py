"""Node mobility models.

The paper evaluates under the random way point model (ref. [17]) and
the reference-point group mobility model (ref. [18]); both are
implemented here on top of a lazily-extended piecewise-linear
trajectory, so ``position(t)`` is exact (no time-stepping error) and
cheap for monotone time queries.
"""

from repro.mobility.base import (
    MobilityModel,
    Trajectory,
    interpolate_segments,
    positions_at,
)
from repro.mobility.group_mobility import GroupMobility, make_group_mobility
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.static import StaticPosition

__all__ = [
    "MobilityModel",
    "Trajectory",
    "RandomWaypoint",
    "GroupMobility",
    "make_group_mobility",
    "StaticPosition",
    "positions_at",
    "interpolate_segments",
]
