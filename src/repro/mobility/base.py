"""Mobility model interface and the shared trajectory machinery."""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.primitives import Point


class MobilityModel(ABC):
    """A node's position as a function of simulated time.

    Implementations must be deterministic given their construction
    arguments (including any RNG state captured at construction) and
    must support arbitrary, including non-monotone, time queries.
    """

    @abstractmethod
    def position(self, t: float) -> Point:
        """Position of the node at time ``t`` (seconds, ``t >= 0``)."""

    def position_xy(self, t: float) -> tuple[float, float]:
        """Position at ``t`` as a plain ``(x, y)`` tuple.

        Hot-path variant of :meth:`position` that skips the
        :class:`~repro.geometry.primitives.Point` allocation; models
        with trajectory machinery override it.
        """
        p = self.position(t)
        return (p.x, p.y)

    def speed(self) -> float:
        """Nominal speed in m/s (0 for static models); diagnostic only."""
        return 0.0

    @classmethod
    def fill_positions(
        cls,
        models: Sequence["MobilityModel"],
        t: float,
        out: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        """Write the positions of ``models`` at ``t`` into ``out[rows]``.

        The batch hook behind :func:`positions_at`: subclasses override
        it with a vectorised implementation over homogeneous model
        groups.  The fallback loops :meth:`position_xy`, which is
        correct for any model.  Implementations must visit ``models``
        in the given order so that shared-RNG trajectory extensions
        draw in the same sequence as per-node scalar queries.
        """
        for k, m in enumerate(models):
            x, y = m.position_xy(t)
            r = rows[k]
            out[r, 0] = x
            out[r, 1] = y


def interpolate_segments(segments: Sequence[Segment], t: float) -> np.ndarray:
    """Vectorised :meth:`Segment.at` over many segments at one time.

    Returns an ``(N, 2)`` array; row ``k`` is bit-identical to
    ``segments[k].at(t)`` (same operation order, IEEE-754 arithmetic).
    """
    n = len(segments)
    t0 = np.empty(n, dtype=np.float64)
    t1 = np.empty(n, dtype=np.float64)
    sx = np.empty(n, dtype=np.float64)
    sy = np.empty(n, dtype=np.float64)
    ex = np.empty(n, dtype=np.float64)
    ey = np.empty(n, dtype=np.float64)
    for k, seg in enumerate(segments):
        t0[k] = seg.t0
        t1[k] = seg.t1
        s = seg.start
        e = seg.end
        sx[k] = s.x
        sy[k] = s.y
        ex[k] = e.x
        ey[k] = e.y
    dt = t1 - t0
    moving = dt > 0.0
    u = (t - t0) / np.where(moving, dt, 1.0)
    np.clip(u, 0.0, 1.0, out=u)
    u[~moving] = 0.0  # pauses / degenerate legs sit at their start
    out = np.empty((n, 2), dtype=np.float64)
    out[:, 0] = sx + (ex - sx) * u
    out[:, 1] = sy + (ey - sy) * u
    return out


def positions_at(
    models: Sequence[MobilityModel], t: float, out: np.ndarray | None = None
) -> np.ndarray:
    """Positions of all ``models`` at time ``t`` as an ``(N, 2)`` array.

    The batch equivalent of ``[m.position(t) for m in models]``:
    models are grouped by concrete class and dispatched to each class's
    :meth:`MobilityModel.fill_positions`, so homogeneous populations
    (the common case — one mobility model per experiment) interpolate
    the whole snapshot with a handful of NumPy operations instead of N
    Python calls.  Results are bit-identical to the scalar path.

    Groups are processed in first-appearance order and models within a
    group in input order, preserving the RNG draw sequence of a plain
    scalar loop even when models share random streams (RPGM).

    ``out``, when given, must be a float64 ``(N, 2)`` buffer; callers
    like ``Network.snapshot`` reuse one scratch buffer across refreshes
    to diff consecutive snapshots without re-allocating.
    """
    n = len(models)
    if out is None:
        out = np.empty((n, 2), dtype=np.float64)
    elif out.shape != (n, 2) or out.dtype != np.float64:
        raise ValueError(
            f"out must be a float64 ({n}, 2) buffer, "
            f"got {out.dtype} {out.shape}"
        )
    if n == 0:
        return out
    first_cls = type(models[0])
    if all(type(m) is first_cls for m in models):
        # Homogeneous population: one dispatch, no index gymnastics.
        first_cls.fill_positions(models, t, out, np.arange(n))
        return out
    groups: dict[type, list[int]] = {}
    for i, m in enumerate(models):
        groups.setdefault(type(m), []).append(i)
    for cls_, idxs in groups.items():
        rows = np.asarray(idxs, dtype=np.intp)
        cls_.fill_positions([models[i] for i in idxs], t, out, rows)
    return out


class SnapshotInterpolator:
    """Cached batch interpolation over a fixed model population.

    :func:`positions_at` re-derives every model's current segment on
    every call — one Python method call per node per snapshot.  But
    consecutive snapshot queries are near-monotone and trajectory legs
    are long (a 2 m/s leg across a 1 km field lasts minutes), so the
    segment that answered the previous query almost always answers the
    next one.  This class keeps every model's current segment endpoints
    in six parallel arrays and only consults a model when its cached
    segment no longer covers ``t``; the interpolation itself then runs
    as a handful of whole-array NumPy ops.

    Results are bit-identical to :func:`positions_at` (same IEEE-754
    operation order).  Stale rows are refreshed in input order,
    preserving the RNG draw sequence of the scalar path for models
    that share random streams.

    Populations containing models whose class does not expose
    ``current_segment`` (e.g. composite RPGM members) delegate every
    call to :func:`positions_at` unchanged.
    """

    def __init__(self, models: Sequence[MobilityModel]) -> None:
        self._models = list(models)
        n = len(self._models)
        self._delegate = any(
            getattr(type(m), "current_segment", None) is None
            for m in self._models
        )
        if self._delegate:
            return
        # Initially invalid everywhere: t0 > t for any finite t.
        self._t0 = np.full(n, np.inf)
        self._t1 = np.full(n, -np.inf)
        self._sx = np.zeros(n)
        self._sy = np.zeros(n)
        self._ex = np.zeros(n)
        self._ey = np.zeros(n)

    def __call__(self, t: float, out: np.ndarray | None = None) -> np.ndarray:
        """Positions of all models at ``t``; same contract as
        ``positions_at(models, t, out)``."""
        n = len(self._models)
        if self._delegate:
            return positions_at(self._models, t, out=out)
        if out is None:
            out = np.empty((n, 2), dtype=np.float64)
        elif out.shape != (n, 2) or out.dtype != np.float64:
            raise ValueError(
                f"out must be a float64 ({n}, 2) buffer, "
                f"got {out.dtype} {out.shape}"
            )
        t0 = self._t0
        t1 = self._t1
        stale = (t0 > t) | (t1 < t)
        if stale.any():
            models = self._models
            sx, sy, ex, ey = self._sx, self._sy, self._ex, self._ey
            for raw in np.flatnonzero(stale):
                i = int(raw)
                seg = models[i].current_segment(t)
                t0[i] = seg.t0
                t1[i] = seg.t1
                s = seg.start
                e = seg.end
                sx[i] = s.x
                sy[i] = s.y
                ex[i] = e.x
                ey[i] = e.y
        # Identical arithmetic to interpolate_segments().
        dt = t1 - t0
        moving = dt > 0.0
        u = (t - t0) / np.where(moving, dt, 1.0)
        np.clip(u, 0.0, 1.0, out=u)
        u[~moving] = 0.0
        out[:, 0] = self._sx + (self._ex - self._sx) * u
        out[:, 1] = self._sy + (self._ey - self._sy) * u
        return out


@dataclass(frozen=True, slots=True)
class Segment:
    """One constant-velocity leg of a trajectory.

    The node moves from ``start`` at ``t0`` to ``end`` at ``t1``;
    ``t0 == t1`` encodes a pause at ``start``.
    """

    t0: float
    t1: float
    start: Point
    end: Point

    def at(self, t: float) -> Point:
        """Interpolated position at ``t`` within ``[t0, t1]``."""
        if self.t1 <= self.t0:
            return self.start
        u = (t - self.t0) / (self.t1 - self.t0)
        u = min(max(u, 0.0), 1.0)
        return Point(
            self.start.x + (self.end.x - self.start.x) * u,
            self.start.y + (self.end.y - self.start.y) * u,
        )


class Trajectory:
    """A lazily-extended piecewise-linear path.

    Subclass models append legs on demand via the ``_extend`` hook;
    queries bisect into the accumulated segment list so repeated and
    backward queries are O(log segments).
    """

    def __init__(self, origin: Point) -> None:
        self._segments: list[Segment] = []
        self._ends: list[float] = []  # parallel array of segment t1 values
        self._origin = origin
        self._horizon = 0.0
        # Query cache: simulation queries are near-monotone and legs are
        # long (a 2 m/s leg across a 1 km field lasts minutes), so the
        # last segment answers almost every lookup without a bisect.
        self._last_idx = 0

    @property
    def horizon(self) -> float:
        """Time up to which the trajectory has been materialised."""
        return self._horizon

    def append(self, seg: Segment) -> None:
        """Append a leg; legs must be contiguous in time."""
        if self._segments and abs(seg.t0 - self._horizon) > 1e-9:
            raise ValueError(
                f"non-contiguous segment: starts {seg.t0}, horizon {self._horizon}"
            )
        self._segments.append(seg)
        self._ends.append(seg.t1)
        self._horizon = seg.t1

    def ensure(self, t: float, extend) -> None:
        """Materialise legs until the horizon covers ``t``.

        ``extend`` is a zero-argument callable appending at least one
        leg per call (supplied by the owning model).
        """
        guard = 0
        while self._horizon < t:
            before = self._horizon
            extend()
            if self._horizon <= before:
                guard += 1
                if guard > 3:
                    raise RuntimeError("trajectory extend() made no progress")
            else:
                guard = 0

    def at(self, t: float) -> Point:
        """Position at time ``t`` (must be within the horizon)."""
        segments = self._segments
        if not segments:
            return self._origin
        # Fast path: the segment that answered the previous query, with
        # the interpolation inlined — this answers nearly every lookup
        # of a run, so the extra Segment.at frame is worth eliding.
        i = self._last_idx
        if i < len(segments):
            seg = segments[i]
            t0 = seg.t0
            t1 = seg.t1
            if t0 <= t <= t1:
                if t1 <= t0:
                    return seg.start
                u = (t - t0) / (t1 - t0)
                u = min(max(u, 0.0), 1.0)
                start = seg.start
                end = seg.end
                return Point(
                    start.x + (end.x - start.x) * u,
                    start.y + (end.y - start.y) * u,
                )
        if t <= segments[0].t0:
            return segments[0].start
        i = bisect.bisect_left(self._ends, t)
        if i >= len(segments):
            return segments[-1].end
        self._last_idx = i
        return segments[i].at(t)

    def segment_at(self, t: float) -> Segment:
        """The segment covering time ``t`` (for batch interpolation).

        Returns a (possibly degenerate) segment whose clamped
        interpolation at ``t`` equals :meth:`at`.  Uses the same query
        cache as :meth:`at`.
        """
        segments = self._segments
        if not segments:
            o = self._origin
            return Segment(0.0, 0.0, o, o)
        i = self._last_idx
        if i < len(segments):
            seg = segments[i]
            if seg.t0 <= t <= seg.t1:
                return seg
        if t <= segments[0].t0:
            return segments[0]
        i = bisect.bisect_left(self._ends, t)
        if i >= len(segments):
            last = segments[-1]
            return Segment(last.t1, last.t1, last.end, last.end)
        self._last_idx = i
        return segments[i]
