"""Mobility model interface and the shared trajectory machinery."""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.geometry.primitives import Point


class MobilityModel(ABC):
    """A node's position as a function of simulated time.

    Implementations must be deterministic given their construction
    arguments (including any RNG state captured at construction) and
    must support arbitrary, including non-monotone, time queries.
    """

    @abstractmethod
    def position(self, t: float) -> Point:
        """Position of the node at time ``t`` (seconds, ``t >= 0``)."""

    def speed(self) -> float:
        """Nominal speed in m/s (0 for static models); diagnostic only."""
        return 0.0


@dataclass(frozen=True, slots=True)
class Segment:
    """One constant-velocity leg of a trajectory.

    The node moves from ``start`` at ``t0`` to ``end`` at ``t1``;
    ``t0 == t1`` encodes a pause at ``start``.
    """

    t0: float
    t1: float
    start: Point
    end: Point

    def at(self, t: float) -> Point:
        """Interpolated position at ``t`` within ``[t0, t1]``."""
        if self.t1 <= self.t0:
            return self.start
        u = (t - self.t0) / (self.t1 - self.t0)
        u = min(max(u, 0.0), 1.0)
        return Point(
            self.start.x + (self.end.x - self.start.x) * u,
            self.start.y + (self.end.y - self.start.y) * u,
        )


class Trajectory:
    """A lazily-extended piecewise-linear path.

    Subclass models append legs on demand via the ``_extend`` hook;
    queries bisect into the accumulated segment list so repeated and
    backward queries are O(log segments).
    """

    def __init__(self, origin: Point) -> None:
        self._segments: list[Segment] = []
        self._ends: list[float] = []  # parallel array of segment t1 values
        self._origin = origin
        self._horizon = 0.0
        # Query cache: simulation queries are near-monotone and legs are
        # long (a 2 m/s leg across a 1 km field lasts minutes), so the
        # last segment answers almost every lookup without a bisect.
        self._last_idx = 0

    @property
    def horizon(self) -> float:
        """Time up to which the trajectory has been materialised."""
        return self._horizon

    def append(self, seg: Segment) -> None:
        """Append a leg; legs must be contiguous in time."""
        if self._segments and abs(seg.t0 - self._horizon) > 1e-9:
            raise ValueError(
                f"non-contiguous segment: starts {seg.t0}, horizon {self._horizon}"
            )
        self._segments.append(seg)
        self._ends.append(seg.t1)
        self._horizon = seg.t1

    def ensure(self, t: float, extend) -> None:
        """Materialise legs until the horizon covers ``t``.

        ``extend`` is a zero-argument callable appending at least one
        leg per call (supplied by the owning model).
        """
        guard = 0
        while self._horizon < t:
            before = self._horizon
            extend()
            if self._horizon <= before:
                guard += 1
                if guard > 3:
                    raise RuntimeError("trajectory extend() made no progress")
            else:
                guard = 0

    def at(self, t: float) -> Point:
        """Position at time ``t`` (must be within the horizon)."""
        segments = self._segments
        if not segments:
            return self._origin
        # Fast path: the segment that answered the previous query.
        i = self._last_idx
        if i < len(segments):
            seg = segments[i]
            if seg.t0 <= t <= seg.t1:
                return seg.at(t)
        if t <= segments[0].t0:
            return segments[0].start
        i = bisect.bisect_left(self._ends, t)
        if i >= len(segments):
            return segments[-1].end
        self._last_idx = i
        return segments[i].at(t)
