"""A trivially static mobility model (speed 0)."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.geometry.primitives import Point
from repro.mobility.base import MobilityModel, Segment


class StaticPosition(MobilityModel):
    """A node that never moves.

    Used for v = 0 configurations (paper Fig. 13a includes speed 0)
    and for location-server placement.
    """

    def __init__(self, origin: Point) -> None:
        self._origin = origin
        self._xy = (origin.x, origin.y)

    def position(self, t: float) -> Point:
        """The fixed origin, for any ``t``."""
        return self._origin

    def position_xy(self, t: float) -> tuple[float, float]:
        """The fixed origin as a plain tuple."""
        return self._xy

    def speed(self) -> float:
        return 0.0

    def current_segment(self, t: float) -> Segment:
        """An eternal degenerate segment: cacheable for any ``t``.

        Lets :class:`~repro.mobility.base.SnapshotInterpolator` cache a
        static node once and never consult it again (interpolating a
        zero-length, infinite-duration leg yields the origin exactly).
        """
        return Segment(0.0, math.inf, self._origin, self._origin)

    @classmethod
    def fill_positions(
        cls,
        models: Sequence[MobilityModel],
        t: float,
        out: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        """Batch snapshot: stack the cached origins, no interpolation."""
        out[rows] = [m._xy for m in models]  # type: ignore[attr-defined]
