"""A trivially static mobility model (speed 0)."""

from __future__ import annotations

from repro.geometry.primitives import Point
from repro.mobility.base import MobilityModel


class StaticPosition(MobilityModel):
    """A node that never moves.

    Used for v = 0 configurations (paper Fig. 13a includes speed 0)
    and for location-server placement.
    """

    def __init__(self, origin: Point) -> None:
        self._origin = origin

    def position(self, t: float) -> Point:
        """The fixed origin, for any ``t``."""
        return self._origin

    def speed(self) -> float:
        return 0.0
