"""The random way point mobility model (Camp et al., ref. [17]).

A node repeatedly: picks a uniform destination in the field, travels to
it in a straight line at a speed drawn from ``[speed_min, speed_max]``,
then pauses for ``pause_time`` seconds.  The paper's evaluation uses a
fixed speed (2-8 m/s) with no pause, which corresponds to
``speed_min == speed_max`` and ``pause_time == 0``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.field import Field
from repro.geometry.primitives import Point
from repro.mobility.base import (
    MobilityModel,
    Segment,
    Trajectory,
    interpolate_segments,
)


class RandomWaypoint(MobilityModel):
    """Random-waypoint motion inside ``field``.

    Parameters
    ----------
    field:
        Deployment area the waypoints are drawn from.
    origin:
        Starting position (``None`` draws one uniformly).
    speed_min, speed_max:
        Speed range in m/s; each leg draws Uniform(min, max).
    pause_time:
        Pause at each waypoint, seconds.
    rng:
        Private random stream (one per node for independence).
    """

    def __init__(
        self,
        field: Field,
        rng: np.random.Generator,
        origin: Point | None = None,
        speed_min: float = 2.0,
        speed_max: float = 2.0,
        pause_time: float = 0.0,
    ) -> None:
        if speed_min <= 0 or speed_max < speed_min:
            raise ValueError(
                f"need 0 < speed_min <= speed_max, got ({speed_min}, {speed_max})"
            )
        if pause_time < 0:
            raise ValueError(f"pause_time must be >= 0, got {pause_time!r}")
        self.field = field
        self.speed_min = speed_min
        self.speed_max = speed_max
        self.pause_time = pause_time
        self._rng = rng
        if origin is None:
            origin = field.random_point(rng)
        self._traj = Trajectory(origin)
        self._cursor = origin

    def speed(self) -> float:
        """Midpoint of the speed range (diagnostic)."""
        return (self.speed_min + self.speed_max) / 2.0

    def _extend(self) -> None:
        """Append one travel leg (plus pause, if configured)."""
        t0 = self._traj.horizon
        start = self._cursor
        dest = self.field.random_point(self._rng)
        speed = float(self._rng.uniform(self.speed_min, self.speed_max))
        dist = start.distance_to(dest)
        # Degenerate draw (dest == start): treat as a pause-length dwell
        # so progress is still made.
        travel = dist / speed if dist > 0 else max(self.pause_time, 1e-3)
        self._traj.append(Segment(t0, t0 + travel, start, dest))
        self._cursor = dest
        if self.pause_time > 0:
            t1 = self._traj.horizon
            self._traj.append(Segment(t1, t1 + self.pause_time, dest, dest))

    def position(self, t: float) -> Point:
        """Exact position at time ``t``."""
        traj = self._traj
        if traj.horizon < t:
            traj.ensure(t, self._extend)
        return traj.at(t)

    def position_xy(self, t: float) -> tuple[float, float]:
        """Position at ``t`` without the Point allocation of the result."""
        p = self.position(t)
        return (p.x, p.y)

    def current_segment(self, t: float) -> Segment:
        """The (materialised) trajectory segment covering ``t``."""
        self._traj.ensure(t, self._extend)
        return self._traj.segment_at(t)

    @classmethod
    def fill_positions(
        cls,
        models: Sequence[MobilityModel],
        t: float,
        out: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        """Vectorised batch snapshot: one NumPy lerp for all waypoints.

        Trajectories are extended in input order (preserving RNG draw
        order), then all current segments interpolate in one shot.
        """
        segs = [m.current_segment(t) for m in models]  # type: ignore[attr-defined]
        out[rows] = interpolate_segments(segs, t)
