"""Reference-point group mobility (RPGM; Hong et al., ref. [18]).

Each group has a logical *reference point* (group center) that itself
follows random-waypoint motion across the field.  Every member holds a
private random-waypoint motion inside a square of half-side
``group_range`` centred on the reference point; its absolute position
is the vector sum, clamped to the field.  This matches the paper's
configuration "movement range of each group to 150 m with 10 groups and
to 200 m with five groups" (§5.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.field import Field
from repro.geometry.primitives import Point
from repro.mobility.base import MobilityModel, Segment, interpolate_segments
from repro.mobility.random_waypoint import RandomWaypoint


class GroupReference:
    """The shared moving reference point of one group."""

    def __init__(
        self,
        field: Field,
        rng: np.random.Generator,
        speed_min: float,
        speed_max: float,
    ) -> None:
        self._motion = RandomWaypoint(
            field, rng, speed_min=speed_min, speed_max=speed_max
        )

    def position(self, t: float) -> Point:
        """Reference-point position at ``t``."""
        return self._motion.position(t)

    def current_segment(self, t: float) -> Segment:
        """The reference trajectory's segment covering ``t``."""
        return self._motion.current_segment(t)


class GroupMobility(MobilityModel):
    """One member of an RPGM group.

    Parameters
    ----------
    field:
        Global deployment area (absolute positions are clamped to it).
    reference:
        The group's shared :class:`GroupReference`.
    group_range:
        Half-side of the local movement square around the reference
        point ("movement range" in the paper), metres.
    rng:
        Private random stream for the member's local motion.
    local_speed:
        Speed of the member's motion relative to the reference point.
    """

    def __init__(
        self,
        field: Field,
        reference: GroupReference,
        group_range: float,
        rng: np.random.Generator,
        local_speed: float = 1.0,
    ) -> None:
        if group_range <= 0:
            raise ValueError(f"group_range must be positive, got {group_range!r}")
        self.field = field
        self.reference = reference
        self.group_range = group_range
        local_field = Field(2 * group_range, 2 * group_range)
        self._local = RandomWaypoint(
            local_field, rng, speed_min=local_speed, speed_max=local_speed
        )

    def position(self, t: float) -> Point:
        """Absolute position: reference + local offset, clamped to field."""
        center = self.reference.position(t)
        local = self._local.position(t)
        p = Point(
            center.x + local.x - self.group_range,
            center.y + local.y - self.group_range,
        )
        return self.field.clamp(p)

    def speed(self) -> float:
        return self._local.speed()

    @classmethod
    def fill_positions(
        cls,
        models: Sequence[MobilityModel],
        t: float,
        out: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        """Vectorised RPGM batch snapshot.

        Per member, the reference trajectory is extended before the
        local one (matching the scalar ``position`` call order, which
        matters because RPGM members share one RNG stream); both
        interpolations and the clamp then run as single NumPy ops.
        """
        ref_segs: list[Segment] = []
        loc_segs: list[Segment] = []
        for m in models:
            ref_segs.append(m.reference.current_segment(t))  # type: ignore[attr-defined]
            loc_segs.append(m._local.current_segment(t))  # type: ignore[attr-defined]
        centers = interpolate_segments(ref_segs, t)
        locals_ = interpolate_segments(loc_segs, t)
        gr = np.array([m.group_range for m in models])  # type: ignore[attr-defined]
        w = np.array([m.field.width for m in models])  # type: ignore[attr-defined]
        h = np.array([m.field.height for m in models])  # type: ignore[attr-defined]
        x = centers[:, 0] + locals_[:, 0] - gr
        y = centers[:, 1] + locals_[:, 1] - gr
        out[rows, 0] = np.minimum(np.maximum(x, 0.0), w)
        out[rows, 1] = np.minimum(np.maximum(y, 0.0), h)


def make_group_mobility(
    field: Field,
    n_nodes: int,
    n_groups: int,
    group_range: float,
    rng: np.random.Generator,
    speed_min: float = 2.0,
    speed_max: float = 2.0,
    local_speed: float = 1.0,
) -> list[GroupMobility]:
    """Build RPGM motions for ``n_nodes`` split evenly into ``n_groups``.

    Nodes are assigned to groups round-robin so group sizes differ by
    at most one.  Returns one :class:`GroupMobility` per node, in node
    order.
    """
    if n_groups <= 0 or n_groups > n_nodes:
        raise ValueError(f"need 1 <= n_groups <= n_nodes, got {n_groups}")
    references = [
        GroupReference(field, rng, speed_min, speed_max) for _ in range(n_groups)
    ]
    return [
        GroupMobility(field, references[i % n_groups], group_range, rng, local_speed)
        for i in range(n_nodes)
    ]
