"""Planar geometry primitives, the network field, and spatial indexing."""

from repro.geometry.field import Field
from repro.geometry.primitives import Point, Rect
from repro.geometry.spatial_index import GridIndex

__all__ = ["Point", "Rect", "Field", "GridIndex"]
