"""Points and axis-aligned rectangles.

These are the vocabulary types of the whole repository: node positions
are :class:`Point`, zones produced by ALERT's hierarchical partition are
:class:`Rect`.  Both are immutable so they can be embedded in packets
and used as dict keys without defensive copying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np


class Point(NamedTuple):
    """An immutable point in the plane (metres).

    A named tuple rather than a frozen dataclass: points are minted in
    every position interpolation and every hello-round row, and the
    tuple ``__new__`` builds one in a fraction of the cost of a frozen
    dataclass ``__init__`` (which routes each field through
    ``object.__setattr__``).  Field order is ``(x, y)``, so iteration,
    equality, and ``hash`` match the former dataclass exactly
    (``hash((x, y))``).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def sq_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt in hot loops)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def midpoint(self, other: "Point") -> "Point":
        """Midpoint of the segment to ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point displaced by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def toward(self, other: "Point", distance: float) -> "Point":
        """Point at ``distance`` from self along the ray to ``other``.

        If ``other`` coincides with self, returns self unchanged.
        """
        d = self.distance_to(other)
        if d == 0.0:
            return self
        t = distance / d
        return Point(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)

    def as_array(self) -> np.ndarray:
        """This point as a shape-(2,) float64 array."""
        return np.array([self.x, self.y], dtype=np.float64)


@dataclass(frozen=True, slots=True)
class Rect:
    """An immutable axis-aligned rectangle ``[x0, x1) × [y0, y1)``.

    ALERT's *zone position* is "the upper left and bottom-right
    coordinates of a zone" (paper §2.4); ``Rect`` stores the same
    information as min/max corners.  Half-open semantics make the two
    halves of a partition disjoint and exhaustive.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate rect {self!r}")

    # -- basic properties ------------------------------------------------
    @property
    def width(self) -> float:
        """Extent along x."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        """Area in square metres."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Geometric center."""
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    # -- predicates ------------------------------------------------------
    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies in the half-open rectangle.

        The far edges of the *entire field* are handled by
        :meth:`contains_closed` at the call sites that need it; for
        partitioning, half-open containment guarantees that exactly one
        half of every split contains any given point.
        """
        return self.x0 <= p.x < self.x1 and self.y0 <= p.y < self.y1

    def contains_closed(self, p: Point) -> bool:
        """Closed-rectangle containment (both far edges inclusive)."""
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def intersects(self, other: "Rect") -> bool:
        """Whether the two half-open rectangles overlap."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    # -- constructions ---------------------------------------------------
    def split_horizontal(self) -> tuple["Rect", "Rect"]:
        """Split with a horizontal line into (bottom, top) halves.

        A *horizontal partition* in the paper's Fig. 1 sense: the
        dividing line is horizontal, producing two stacked zones.
        """
        ym = (self.y0 + self.y1) / 2.0
        return (
            Rect(self.x0, self.y0, self.x1, ym),
            Rect(self.x0, ym, self.x1, self.y1),
        )

    def split_vertical(self) -> tuple["Rect", "Rect"]:
        """Split with a vertical line into (left, right) halves."""
        xm = (self.x0 + self.x1) / 2.0
        return (
            Rect(self.x0, self.y0, xm, self.y1),
            Rect(xm, self.y0, self.x1, self.y1),
        )

    def clamp(self, p: Point) -> Point:
        """Project ``p`` onto the closed rectangle."""
        return Point(
            min(max(p.x, self.x0), self.x1),
            min(max(p.y, self.y0), self.y1),
        )

    def random_point(self, rng: np.random.Generator) -> Point:
        """Uniform random point inside the rectangle."""
        return Point(
            float(rng.uniform(self.x0, self.x1)),
            float(rng.uniform(self.y0, self.y1)),
        )

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from (x0, y0)."""
        return (
            Point(self.x0, self.y0),
            Point(self.x1, self.y0),
            Point(self.x1, self.y1),
            Point(self.x0, self.y1),
        )
