"""Uniform-grid spatial index for radius (neighbor) queries.

Neighbor discovery is the hot path of every geographic-routing
simulation: each hop asks "which nodes are within radio range of me
right now?".  A uniform grid with cell size equal to the query radius
answers that with a 3×3-cell candidate gather plus one vectorised
distance filter — O(candidates) instead of O(N) per query.

Buckets are built by lexicographically sorting the integer ``(cx, cy)``
cell coordinates.  An earlier revision keyed buckets on a single
multiplicative hash of the pair, which let two distinct cells collide
and silently merge — misplacing their nodes under the first cell's key
and dropping true neighbors.  Sorting on the exact pair cannot collide.

The index is incrementally updatable: :meth:`GridIndex.move` and
:meth:`GridIndex.update_positions` rebucket only nodes whose cell
changed, so a snapshot refresh where most nodes stayed in their cell
(the common case — at the paper's default 2 m/s almost nobody crosses
a 250 m cell boundary between hello rounds) costs a vectorised diff
instead of a full sort-and-bucket rebuild (see
:meth:`repro.net.network.Network.snapshot`).
"""

from __future__ import annotations

import numpy as np

#: Below this population, one vectorised full scan beats per-bucket
#: gathering for rect and nearest queries (radius queries still use the
#: grid: their 3×3-cell candidate set is small at any N).
_SMALL_N = 512


class GridIndex:
    """Spatial hash over an ``(N, 2)`` array of positions.

    Parameters
    ----------
    positions:
        Array of shape ``(N, 2)`` of x/y coordinates in metres.  The
        index takes ownership of this array when it is already
        float64: in-place updates (:meth:`move`,
        :meth:`update_positions`) write through to it.  Pass a copy if
        the caller needs the original preserved.
    cell_size:
        Grid pitch; choose the dominant query radius for best
        performance (queries with other radii remain correct).
    """

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (N, 2), got {positions.shape}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size!r}")
        self.positions = positions
        self.cell_size = float(cell_size)
        self._n = positions.shape[0]
        # Cell coordinates of every node.
        cells = np.floor(positions / self.cell_size).astype(np.int64)
        self._cells = cells
        # Bucket node indices by exact (cx, cy) pair.  The key is the
        # pair's rank in a dense row-major numbering of the occupied
        # bounding box — injective by construction, unlike the old
        # multiplicative hash, which could map two distinct cells to
        # one key and silently merge their buckets.
        if self._n:
            cx_min = int(cells[:, 0].min())
            cx_max = int(cells[:, 0].max())
            cy_min = int(cells[:, 1].min())
            cy_max = int(cells[:, 1].max())
            self._cell_min = (cx_min, cy_min)
            self._cell_max = (cx_max, cy_max)
            # Injective while the occupied box has < 2^63 cells, i.e.
            # for any field reachable from float64 coordinates.
            stride = np.int64(cy_max - cy_min + 1)
            keys = (cells[:, 0] - cx_min) * stride + (cells[:, 1] - cy_min)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            # Start offsets of each run of equal keys.
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [self._n]))
            self._buckets: dict[tuple[int, int], np.ndarray] = {}
            for s, e in zip(starts, ends):
                idx = order[s:e]
                c = cells[idx[0]]
                self._buckets[(int(c[0]), int(c[1]))] = idx
        else:
            self._buckets = {}
            self._cell_min = (0, 0)
            self._cell_max = (-1, -1)

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def adopt_positions(
        self, new_positions: np.ndarray, max_crossed: int | None = None
    ) -> int:
        """Replace the whole coordinate array in one incremental step.

        The fast path behind ``Network.snapshot``: one vectorised cell
        computation + one comparison find the nodes that crossed a cell
        boundary, and only those are rebucketted; the index then owns
        ``new_positions`` (no per-row copying).  Returns the number of
        cell-crossing nodes.

        If ``max_crossed`` is given and more nodes than that crossed
        cells, the index is left untouched and ``-1`` is returned — the
        caller should build a fresh index instead, which is cheaper
        than that much per-node rebucketing.
        """
        new_positions = np.asarray(new_positions, dtype=np.float64)
        if new_positions.shape != (self._n, 2):
            raise ValueError(
                f"new_positions must be ({self._n}, 2), "
                f"got {new_positions.shape}"
            )
        if self._n == 0:
            return 0
        cells = np.floor(new_positions / self.cell_size).astype(np.int64)
        old_cells = self._cells
        crossed = np.flatnonzero(
            (cells[:, 0] != old_cells[:, 0]) | (cells[:, 1] != old_cells[:, 1])
        )
        if max_crossed is not None and crossed.size > max_crossed:
            return -1
        for raw in crossed:
            i = int(raw)
            self._remove_from_bucket(
                (int(old_cells[i, 0]), int(old_cells[i, 1])), i
            )
            self._add_to_bucket((int(cells[i, 0]), int(cells[i, 1])), i)
        self.positions = new_positions
        self._cells = cells
        if crossed.size:
            moved = cells[crossed]
            self._grow_bounds(
                int(moved[:, 0].min()),
                int(moved[:, 1].min()),
                int(moved[:, 0].max()),
                int(moved[:, 1].max()),
            )
        return int(crossed.size)

    def _remove_from_bucket(self, key: tuple[int, int], i: int) -> None:
        bucket = self._buckets[key]
        if bucket.size == 1:
            del self._buckets[key]
        else:
            self._buckets[key] = bucket[bucket != i]

    def _add_to_bucket(self, key: tuple[int, int], i: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = np.array([i], dtype=np.int64)
        else:
            self._buckets[key] = np.append(bucket, np.int64(i))

    def _grow_bounds(self, cx_lo: int, cy_lo: int, cx_hi: int, cy_hi: int) -> None:
        # Bounds only ever grow: ``nearest`` uses them as an upper
        # bound on the ring search, so a conservative (too large) box
        # stays correct — shrinking exactly would cost a full scan.
        self._cell_min = (
            min(self._cell_min[0], cx_lo),
            min(self._cell_min[1], cy_lo),
        )
        self._cell_max = (
            max(self._cell_max[0], cx_hi),
            max(self._cell_max[1], cy_hi),
        )

    def move(self, i: int, x: float, y: float) -> bool:
        """Move node ``i`` to ``(x, y)``, rebucketing only if needed.

        Returns ``True`` when the node changed grid cell (and was
        rebucketted), ``False`` when it merely moved within its cell.
        Query results afterwards are identical to a from-scratch
        rebuild at the new positions.
        """
        if not 0 <= i < self._n:
            raise IndexError(f"node id {i} out of range [0, {self._n})")
        self.positions[i, 0] = x
        self.positions[i, 1] = y
        cs = self.cell_size
        cx = int(np.floor(x / cs))
        cy = int(np.floor(y / cs))
        old = self._cells[i]
        if cx == old[0] and cy == old[1]:
            return False
        self._remove_from_bucket((int(old[0]), int(old[1])), i)
        self._add_to_bucket((cx, cy), i)
        self._cells[i, 0] = cx
        self._cells[i, 1] = cy
        self._grow_bounds(cx, cy, cx, cy)
        return True

    def update_positions(
        self, changed_ids: np.ndarray, new_positions: np.ndarray
    ) -> int:
        """Batch position update; rebuckets only cell-crossing nodes.

        Parameters
        ----------
        changed_ids:
            Unique node indices whose position changed (any node not
            listed keeps its stored position).
        new_positions:
            ``(len(changed_ids), 2)`` array of their new coordinates.

        Returns the number of nodes that changed cell.  The index is
        afterwards result-identical to ``GridIndex(updated_positions,
        cell_size)`` for every query method.
        """
        ids = np.asarray(changed_ids, dtype=np.int64)
        if ids.size == 0:
            return 0
        new_positions = np.asarray(new_positions, dtype=np.float64)
        if new_positions.shape != (ids.size, 2):
            raise ValueError(
                f"new_positions must be ({ids.size}, 2), "
                f"got {new_positions.shape}"
            )
        if ids.min() < 0 or ids.max() >= self._n:
            raise IndexError(
                f"node ids out of range [0, {self._n}): {ids}"
            )
        self.positions[ids] = new_positions
        new_cells = np.floor(new_positions / self.cell_size).astype(np.int64)
        old_cells = self._cells[ids]
        crossed = (new_cells[:, 0] != old_cells[:, 0]) | (
            new_cells[:, 1] != old_cells[:, 1]
        )
        n_crossed = int(np.count_nonzero(crossed))
        if n_crossed == 0:
            return 0
        moved_ids = ids[crossed]
        moved_old = old_cells[crossed]
        moved_new = new_cells[crossed]
        for k in range(n_crossed):
            i = int(moved_ids[k])
            self._remove_from_bucket(
                (int(moved_old[k, 0]), int(moved_old[k, 1])), i
            )
            self._add_to_bucket(
                (int(moved_new[k, 0]), int(moved_new[k, 1])), i
            )
        self._cells[ids] = new_cells
        self._grow_bounds(
            int(moved_new[:, 0].min()),
            int(moved_new[:, 1].min()),
            int(moved_new[:, 0].max()),
            int(moved_new[:, 1].max()),
        )
        return n_crossed

    # ------------------------------------------------------------------
    def _gather_cells(
        self, cx0: int, cy0: int, cx1: int, cy1: int
    ) -> np.ndarray:
        """Indices of nodes in cells of the inclusive range given.

        Probes individual buckets when the range is small; falls back
        to one pass over the occupied buckets when probing would touch
        more (mostly empty) cells than buckets exist.
        """
        buckets = self._buckets
        n_cells = (cx1 - cx0 + 1) * (cy1 - cy0 + 1)
        chunks = []
        if n_cells <= len(buckets):
            for i in range(cx0, cx1 + 1):
                for j in range(cy0, cy1 + 1):
                    bucket = buckets.get((i, j))
                    if bucket is not None:
                        chunks.append(bucket)
        else:
            for (i, j), bucket in buckets.items():
                if cx0 <= i <= cx1 and cy0 <= j <= cy1:
                    chunks.append(bucket)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def _candidates(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of nodes in cells overlapping the query disk's bbox."""
        reach = int(np.ceil(radius / self.cell_size))
        cx = int(np.floor(x / self.cell_size))
        cy = int(np.floor(y / self.cell_size))
        return self._gather_cells(cx - reach, cy - reach, cx + reach, cy + reach)

    def grouped_candidates(
        self, points: np.ndarray, radius: float
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched candidate gathering for many radius queries.

        Groups the query ``points`` (an ``(M, 2)`` array) by the grid
        cell they fall in and returns one ``(query_indices,
        candidate_indices)`` pair per occupied query cell.  Queries in
        one cell share their candidate gather — the cells overlapping
        the disk bounding box, exactly what :meth:`query_radius` would
        collect for each of them individually — so a caller that
        filters the pairwise distances per group reproduces ``M``
        independent ``query_radius`` calls with ~one gather per
        *occupied cell* instead of one per query, and the pairwise
        arithmetic shrinks from ``M × N`` to ``M × candidates``.

        Candidate indices are **unfiltered** (superset within the cell
        neighborhood); the caller applies the exact distance predicate.
        Query indices within a group ascend (stable grouping).
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"points must be (M, 2), got {pts.shape}")
        m = pts.shape[0]
        if m == 0:
            return []
        reach = int(np.ceil(radius / self.cell_size))
        cells = np.floor(pts / self.cell_size).astype(np.int64)
        cx = cells[:, 0]
        cy = cells[:, 1]
        # Injective cell key: dense row-major rank over the queries'
        # own bounding box (same construction as the bucket keys).
        cy_lo = cy.min()
        stride = np.int64(cy.max() - cy_lo + 1)
        keys = cx * stride + (cy - cy_lo)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [m]))
        groups: list[tuple[np.ndarray, np.ndarray]] = []
        for s, e in zip(starts, ends):
            q = order[s:e]
            qx = int(cx[q[0]])
            qy = int(cy[q[0]])
            cand = self._gather_cells(
                qx - reach, qy - reach, qx + reach, qy + reach
            )
            groups.append((q, cand))
        return groups

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of all nodes within ``radius`` of ``(x, y)``.

        Returns indices sorted ascending (deterministic order matters
        for reproducible protocol tie-breaking).
        """
        cand = self._candidates(x, y, radius)
        if cand.size == 0:
            return cand
        d = self.positions[cand] - np.array([x, y])
        mask = (d * d).sum(axis=1) <= radius * radius
        out = cand[mask]
        out.sort()
        return out

    def query_rect(self, x0: float, y0: float, x1: float, y1: float) -> np.ndarray:
        """Indices of nodes inside the half-open rect [x0,x1) × [y0,y1).

        Gathers candidate buckets overlapping the rect (instead of
        scanning all N positions) and filters them exactly; results are
        sorted ascending.
        """
        if self._n == 0 or x1 <= x0 or y1 <= y0:
            return np.empty(0, dtype=np.int64)
        if self._n <= _SMALL_N:
            # One vectorised scan beats per-bucket gathering below a
            # few hundred nodes (same result set either way).
            p = self.positions
            mask = (
                (p[:, 0] >= x0)
                & (p[:, 0] < x1)
                & (p[:, 1] >= y0)
                & (p[:, 1] < y1)
            )
            return np.flatnonzero(mask)
        cs = self.cell_size
        cand = self._gather_cells(
            int(np.floor(x0 / cs)),
            int(np.floor(y0 / cs)),
            # x1/y1 are exclusive, but the edge cell can still hold
            # points strictly inside the rect.
            int(np.floor(x1 / cs)),
            int(np.floor(y1 / cs)),
        )
        if cand.size == 0:
            return cand
        p = self.positions[cand]
        mask = (p[:, 0] >= x0) & (p[:, 0] < x1) & (p[:, 1] >= y0) & (p[:, 1] < y1)
        out = cand[mask]
        out.sort()
        return out

    def nearest(self, x: float, y: float, exclude: int | None = None) -> int:
        """Index of the node nearest to ``(x, y)``.

        Expanding-ring search over the grid buckets: candidate cells
        are visited in growing Chebyshev rings around the query cell,
        stopping once no unvisited ring can beat the best hit.  Ties on
        distance resolve to the smallest node index (matching a full
        ``argmin`` scan).

        Parameters
        ----------
        exclude:
            Optional node index to skip (e.g., the querying node).

        Raises
        ------
        ValueError
            If the index is empty or holds only the excluded node.
        """
        if self._n == 0:
            raise ValueError("nearest() on an empty index")
        if self._n <= _SMALL_N:
            # A full argmin is one vectorised op — faster than ring
            # bookkeeping below a few hundred nodes, identical result
            # (argmin and the ring search both tie-break to the
            # smallest index).
            if self._n == 1 and exclude == 0:
                raise ValueError("nearest() on an empty index")
            d = self.positions - np.array([x, y])
            dist2 = (d * d).sum(axis=1)
            if exclude is not None and 0 <= exclude < self._n:
                dist2[exclude] = np.inf
            return int(np.argmin(dist2))
        cs = self.cell_size
        cx = int(np.floor(x / cs))
        cy = int(np.floor(y / cs))
        # Largest ring that can still reach an occupied cell.
        max_ring = max(
            abs(cx - self._cell_min[0]),
            abs(cx - self._cell_max[0]),
            abs(cy - self._cell_min[1]),
            abs(cy - self._cell_max[1]),
        )
        q = np.array([x, y])
        best_idx = -1
        best_d2 = np.inf
        ring = 0
        while ring <= max_ring:
            # A cell in ring r is at least (r - 1) * cell_size away
            # from any point inside the query's own cell.
            if best_idx >= 0 and (ring - 1) * cs > 0 and (
                ((ring - 1) * cs) ** 2 > best_d2
            ):
                break
            cand = self._ring_candidates(cx, cy, ring)
            if cand.size:
                if exclude is not None:
                    cand = cand[cand != exclude]
                if cand.size:
                    d = self.positions[cand] - q
                    d2 = (d * d).sum(axis=1)
                    k = int(np.argmin(d2))
                    ring_d2 = float(d2[k])
                    # Smallest index among ties within the ring.
                    ring_idx = int(cand[d2 == ring_d2].min())
                    if ring_d2 < best_d2 or (
                        ring_d2 == best_d2 and ring_idx < best_idx
                    ):
                        best_d2 = ring_d2
                        best_idx = ring_idx
            ring += 1
        if best_idx < 0:
            raise ValueError("nearest() on an empty index")
        return best_idx

    def _ring_candidates(self, cx: int, cy: int, ring: int) -> np.ndarray:
        """Indices of nodes in cells at Chebyshev distance ``ring``."""
        buckets = self._buckets
        if ring == 0:
            bucket = buckets.get((cx, cy))
            return bucket if bucket is not None else np.empty(0, dtype=np.int64)
        chunks = []
        for i in range(cx - ring, cx + ring + 1):
            for j in (cy - ring, cy + ring):
                bucket = buckets.get((i, j))
                if bucket is not None:
                    chunks.append(bucket)
        for j in range(cy - ring + 1, cy + ring):
            for i in (cx - ring, cx + ring):
                bucket = buckets.get((i, j))
                if bucket is not None:
                    chunks.append(bucket)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)
