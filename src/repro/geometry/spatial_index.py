"""Uniform-grid spatial index for radius (neighbor) queries.

Neighbor discovery is the hot path of every geographic-routing
simulation: each hop asks "which nodes are within radio range of me
right now?".  A uniform grid with cell size equal to the query radius
answers that with a 3×3-cell candidate gather plus one vectorised
distance filter — O(candidates) instead of O(N) per query.

Buckets are built by lexicographically sorting the integer ``(cx, cy)``
cell coordinates.  An earlier revision keyed buckets on a single
multiplicative hash of the pair, which let two distinct cells collide
and silently merge — misplacing their nodes under the first cell's key
and dropping true neighbors.  Sorting on the exact pair cannot collide.

The index is immutable once built; mobility rebuilds it per time
snapshot (see :class:`repro.net.network.Network`).
"""

from __future__ import annotations

import numpy as np

#: Below this population, one vectorised full scan beats per-bucket
#: gathering for rect and nearest queries (radius queries still use the
#: grid: their 3×3-cell candidate set is small at any N).
_SMALL_N = 512


class GridIndex:
    """Spatial hash over an ``(N, 2)`` array of positions.

    Parameters
    ----------
    positions:
        Array of shape ``(N, 2)`` of x/y coordinates in metres.
    cell_size:
        Grid pitch; choose the dominant query radius for best
        performance (queries with other radii remain correct).
    """

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (N, 2), got {positions.shape}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size!r}")
        self.positions = positions
        self.cell_size = float(cell_size)
        self._n = positions.shape[0]
        # Cell coordinates of every node.
        cells = np.floor(positions / self.cell_size).astype(np.int64)
        self._cells = cells
        # Bucket node indices by exact (cx, cy) pair.  The key is the
        # pair's rank in a dense row-major numbering of the occupied
        # bounding box — injective by construction, unlike the old
        # multiplicative hash, which could map two distinct cells to
        # one key and silently merge their buckets.
        if self._n:
            cx_min = int(cells[:, 0].min())
            cx_max = int(cells[:, 0].max())
            cy_min = int(cells[:, 1].min())
            cy_max = int(cells[:, 1].max())
            self._cell_min = (cx_min, cy_min)
            self._cell_max = (cx_max, cy_max)
            # Injective while the occupied box has < 2^63 cells, i.e.
            # for any field reachable from float64 coordinates.
            stride = np.int64(cy_max - cy_min + 1)
            keys = (cells[:, 0] - cx_min) * stride + (cells[:, 1] - cy_min)
            order = np.argsort(keys, kind="stable")
            self._order = order
            sorted_keys = keys[order]
            # Start offsets of each run of equal keys.
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [self._n]))
            self._buckets: dict[tuple[int, int], np.ndarray] = {}
            for s, e in zip(starts, ends):
                idx = order[s:e]
                c = cells[idx[0]]
                self._buckets[(int(c[0]), int(c[1]))] = idx
        else:
            self._buckets = {}
            self._cell_min = (0, 0)
            self._cell_max = (-1, -1)

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    def _gather_cells(
        self, cx0: int, cy0: int, cx1: int, cy1: int
    ) -> np.ndarray:
        """Indices of nodes in cells of the inclusive range given.

        Probes individual buckets when the range is small; falls back
        to one pass over the occupied buckets when probing would touch
        more (mostly empty) cells than buckets exist.
        """
        buckets = self._buckets
        n_cells = (cx1 - cx0 + 1) * (cy1 - cy0 + 1)
        chunks = []
        if n_cells <= len(buckets):
            for i in range(cx0, cx1 + 1):
                for j in range(cy0, cy1 + 1):
                    bucket = buckets.get((i, j))
                    if bucket is not None:
                        chunks.append(bucket)
        else:
            for (i, j), bucket in buckets.items():
                if cx0 <= i <= cx1 and cy0 <= j <= cy1:
                    chunks.append(bucket)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def _candidates(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of nodes in cells overlapping the query disk's bbox."""
        reach = int(np.ceil(radius / self.cell_size))
        cx = int(np.floor(x / self.cell_size))
        cy = int(np.floor(y / self.cell_size))
        return self._gather_cells(cx - reach, cy - reach, cx + reach, cy + reach)

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of all nodes within ``radius`` of ``(x, y)``.

        Returns indices sorted ascending (deterministic order matters
        for reproducible protocol tie-breaking).
        """
        cand = self._candidates(x, y, radius)
        if cand.size == 0:
            return cand
        d = self.positions[cand] - np.array([x, y])
        mask = (d * d).sum(axis=1) <= radius * radius
        out = cand[mask]
        out.sort()
        return out

    def query_rect(self, x0: float, y0: float, x1: float, y1: float) -> np.ndarray:
        """Indices of nodes inside the half-open rect [x0,x1) × [y0,y1).

        Gathers candidate buckets overlapping the rect (instead of
        scanning all N positions) and filters them exactly; results are
        sorted ascending.
        """
        if self._n == 0 or x1 <= x0 or y1 <= y0:
            return np.empty(0, dtype=np.int64)
        if self._n <= _SMALL_N:
            # One vectorised scan beats per-bucket gathering below a
            # few hundred nodes (same result set either way).
            p = self.positions
            mask = (
                (p[:, 0] >= x0)
                & (p[:, 0] < x1)
                & (p[:, 1] >= y0)
                & (p[:, 1] < y1)
            )
            return np.flatnonzero(mask)
        cs = self.cell_size
        cand = self._gather_cells(
            int(np.floor(x0 / cs)),
            int(np.floor(y0 / cs)),
            # x1/y1 are exclusive, but the edge cell can still hold
            # points strictly inside the rect.
            int(np.floor(x1 / cs)),
            int(np.floor(y1 / cs)),
        )
        if cand.size == 0:
            return cand
        p = self.positions[cand]
        mask = (p[:, 0] >= x0) & (p[:, 0] < x1) & (p[:, 1] >= y0) & (p[:, 1] < y1)
        out = cand[mask]
        out.sort()
        return out

    def nearest(self, x: float, y: float, exclude: int | None = None) -> int:
        """Index of the node nearest to ``(x, y)``.

        Expanding-ring search over the grid buckets: candidate cells
        are visited in growing Chebyshev rings around the query cell,
        stopping once no unvisited ring can beat the best hit.  Ties on
        distance resolve to the smallest node index (matching a full
        ``argmin`` scan).

        Parameters
        ----------
        exclude:
            Optional node index to skip (e.g., the querying node).

        Raises
        ------
        ValueError
            If the index is empty or holds only the excluded node.
        """
        if self._n == 0:
            raise ValueError("nearest() on an empty index")
        if self._n <= _SMALL_N:
            # A full argmin is one vectorised op — faster than ring
            # bookkeeping below a few hundred nodes, identical result
            # (argmin and the ring search both tie-break to the
            # smallest index).
            if self._n == 1 and exclude == 0:
                raise ValueError("nearest() on an empty index")
            d = self.positions - np.array([x, y])
            dist2 = (d * d).sum(axis=1)
            if exclude is not None and 0 <= exclude < self._n:
                dist2[exclude] = np.inf
            return int(np.argmin(dist2))
        cs = self.cell_size
        cx = int(np.floor(x / cs))
        cy = int(np.floor(y / cs))
        # Largest ring that can still reach an occupied cell.
        max_ring = max(
            abs(cx - self._cell_min[0]),
            abs(cx - self._cell_max[0]),
            abs(cy - self._cell_min[1]),
            abs(cy - self._cell_max[1]),
        )
        q = np.array([x, y])
        best_idx = -1
        best_d2 = np.inf
        ring = 0
        while ring <= max_ring:
            # A cell in ring r is at least (r - 1) * cell_size away
            # from any point inside the query's own cell.
            if best_idx >= 0 and (ring - 1) * cs > 0 and (
                ((ring - 1) * cs) ** 2 > best_d2
            ):
                break
            cand = self._ring_candidates(cx, cy, ring)
            if cand.size:
                if exclude is not None:
                    cand = cand[cand != exclude]
                if cand.size:
                    d = self.positions[cand] - q
                    d2 = (d * d).sum(axis=1)
                    k = int(np.argmin(d2))
                    ring_d2 = float(d2[k])
                    # Smallest index among ties within the ring.
                    ring_idx = int(cand[d2 == ring_d2].min())
                    if ring_d2 < best_d2 or (
                        ring_d2 == best_d2 and ring_idx < best_idx
                    ):
                        best_d2 = ring_d2
                        best_idx = ring_idx
            ring += 1
        if best_idx < 0:
            raise ValueError("nearest() on an empty index")
        return best_idx

    def _ring_candidates(self, cx: int, cy: int, ring: int) -> np.ndarray:
        """Indices of nodes in cells at Chebyshev distance ``ring``."""
        buckets = self._buckets
        if ring == 0:
            bucket = buckets.get((cx, cy))
            return bucket if bucket is not None else np.empty(0, dtype=np.int64)
        chunks = []
        for i in range(cx - ring, cx + ring + 1):
            for j in (cy - ring, cy + ring):
                bucket = buckets.get((i, j))
                if bucket is not None:
                    chunks.append(bucket)
        for j in range(cy - ring + 1, cy + ring):
            for i in (cx - ring, cx + ring):
                bucket = buckets.get((i, j))
                if bucket is not None:
                    chunks.append(bucket)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)
