"""Uniform-grid spatial index for radius (neighbor) queries.

Neighbor discovery is the hot path of every geographic-routing
simulation: each hop asks "which nodes are within radio range of me
right now?".  A uniform grid with cell size equal to the query radius
answers that with a 3×3-cell candidate gather plus one vectorised
distance filter — O(candidates) instead of O(N) per query.

The index is immutable once built; mobility rebuilds it per time
snapshot (see :class:`repro.net.network.Network`).
"""

from __future__ import annotations

import numpy as np


class GridIndex:
    """Spatial hash over an ``(N, 2)`` array of positions.

    Parameters
    ----------
    positions:
        Array of shape ``(N, 2)`` of x/y coordinates in metres.
    cell_size:
        Grid pitch; choose the dominant query radius for best
        performance (queries with other radii remain correct).
    """

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (N, 2), got {positions.shape}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size!r}")
        self.positions = positions
        self.cell_size = float(cell_size)
        self._n = positions.shape[0]
        # Cell coordinates of every node.
        cells = np.floor(positions / self.cell_size).astype(np.int64)
        self._cells = cells
        # Bucket node indices by cell using a sort for cache-friendliness.
        if self._n:
            keys = cells[:, 0] * np.int64(0x9E3779B1) + cells[:, 1]
            order = np.argsort(keys, kind="stable")
            self._order = order
            sorted_keys = keys[order]
            # Start offsets of each run of equal keys.
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [self._n]))
            self._buckets: dict[tuple[int, int], np.ndarray] = {}
            for s, e in zip(starts, ends):
                idx = order[s:e]
                c = cells[idx[0]]
                self._buckets[(int(c[0]), int(c[1]))] = idx
        else:
            self._buckets = {}

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    def _candidates(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of nodes in cells overlapping the query disk's bbox."""
        reach = int(np.ceil(radius / self.cell_size))
        cx = int(np.floor(x / self.cell_size))
        cy = int(np.floor(y / self.cell_size))
        chunks = []
        for i in range(cx - reach, cx + reach + 1):
            for j in range(cy - reach, cy + reach + 1):
                bucket = self._buckets.get((i, j))
                if bucket is not None:
                    chunks.append(bucket)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of all nodes within ``radius`` of ``(x, y)``.

        Returns indices sorted ascending (deterministic order matters
        for reproducible protocol tie-breaking).
        """
        cand = self._candidates(x, y, radius)
        if cand.size == 0:
            return cand
        d = self.positions[cand] - np.array([x, y])
        mask = (d * d).sum(axis=1) <= radius * radius
        out = cand[mask]
        out.sort()
        return out

    def query_rect(self, x0: float, y0: float, x1: float, y1: float) -> np.ndarray:
        """Indices of nodes inside the half-open rect [x0,x1) × [y0,y1)."""
        p = self.positions
        mask = (p[:, 0] >= x0) & (p[:, 0] < x1) & (p[:, 1] >= y0) & (p[:, 1] < y1)
        return np.flatnonzero(mask)

    def nearest(self, x: float, y: float, exclude: int | None = None) -> int:
        """Index of the node nearest to ``(x, y)``.

        Parameters
        ----------
        exclude:
            Optional node index to skip (e.g., the querying node).

        Raises
        ------
        ValueError
            If the index is empty (or holds only the excluded node).
        """
        if self._n == 0 or (self._n == 1 and exclude == 0):
            raise ValueError("nearest() on an empty index")
        d = self.positions - np.array([x, y])
        dist2 = (d * d).sum(axis=1)
        if exclude is not None:
            dist2[exclude] = np.inf
        return int(np.argmin(dist2))
