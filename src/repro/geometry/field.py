"""The network field: the deployment area configured into every node.

Per the paper (§2.3), "the information of the bottom-right and upper
left boundary of the network area is configured into each node when it
joins the system"; :class:`Field` is that shared configuration plus
convenience constructors for node placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.primitives import Point, Rect


@dataclass(frozen=True)
class Field:
    """The rectangular deployment area.

    Parameters
    ----------
    width, height:
        Side lengths in metres.  The paper's default evaluation field
        is 1000 m × 1000 m.
    """

    width: float = 1000.0
    height: float = 1000.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"field sides must be positive: {self!r}")

    @property
    def bounds(self) -> Rect:
        """The field as a rectangle anchored at the origin."""
        return Rect(0.0, 0.0, self.width, self.height)

    @property
    def area(self) -> float:
        """Field area *G* in square metres (paper §2.4)."""
        return self.width * self.height

    def density(self, n_nodes: int) -> float:
        """Node density ρ in nodes per square metre."""
        return n_nodes / self.area

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside the (closed) field."""
        return 0.0 <= p.x <= self.width and 0.0 <= p.y <= self.height

    def clamp(self, p: Point) -> Point:
        """Project ``p`` onto the field."""
        return self.bounds.clamp(p)

    def random_point(self, rng: np.random.Generator) -> Point:
        """Uniform random position inside the field."""
        return Point(
            float(rng.uniform(0.0, self.width)),
            float(rng.uniform(0.0, self.height)),
        )

    def random_points(self, n: int, rng: np.random.Generator) -> list[Point]:
        """``n`` i.i.d. uniform positions (vectorised draw)."""
        xs = rng.uniform(0.0, self.width, size=n)
        ys = rng.uniform(0.0, self.height, size=n)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]
