"""repro — a full reproduction of *ALERT: An Anonymous Location-Based
Efficient Routing Protocol in MANETs* (Shen & Zhao, ICPP 2011 / IEEE
TMC 2012).

Quick start::

    from repro import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(protocol="ALERT", n_nodes=200, seed=7)
    result = run_experiment(cfg)
    print(result.delivery_rate, result.mean_latency, result.mean_hops)

Layers (bottom up): :mod:`repro.sim` (event engine), :mod:`repro.geometry`,
:mod:`repro.mobility`, :mod:`repro.crypto`, :mod:`repro.net` (MANET
substrate), :mod:`repro.location`, :mod:`repro.routing` (GPSR / ALARM /
AO2P baselines), :mod:`repro.core` (ALERT itself), :mod:`repro.attacks`,
:mod:`repro.analysis` (§4 closed forms), :mod:`repro.experiments`
(harness).
"""

from repro.core import AlertConfig, AlertProtocol
from repro.experiments import (
    ExperimentConfig,
    MetricsCollector,
    aggregate,
    run_experiment,
    run_many,
)
from repro.geometry import Field, Point, Rect
from repro.net import Network
from repro.routing import (
    AlarmProtocol,
    Ao2pProtocol,
    GpsrProtocol,
)
from repro.sim import Engine

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "Point",
    "Rect",
    "Field",
    "Network",
    "AlertProtocol",
    "AlertConfig",
    "GpsrProtocol",
    "AlarmProtocol",
    "Ao2pProtocol",
    "ExperimentConfig",
    "MetricsCollector",
    "run_experiment",
    "run_many",
    "aggregate",
    "__version__",
]
