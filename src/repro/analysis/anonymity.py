"""Quantitative anonymity metrics used by the attack benchmarks.

These operationalise the informal guarantees of §3: destination
k-anonymity (size of the candidate set an observer is left with),
entropy of the attacker's posterior, and route overlap (how much two
consecutive routes share — the observable GPSR leaks and ALERT hides).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence


def k_anonymity_set(candidates: Iterable[int]) -> int:
    """Size of the attacker's remaining candidate set.

    1 means fully identified; larger is better for the target.
    """
    return len(set(candidates))


def anonymity_entropy(weights: Sequence[float]) -> float:
    """Shannon entropy (bits) of the attacker's posterior over suspects.

    ``weights`` are unnormalised suspicion scores; uniform weights over
    n suspects give ``log2(n)`` bits (perfect n-anonymity).
    """
    total = float(sum(weights))
    if total <= 0:
        return 0.0
    h = 0.0
    for w in weights:
        if w <= 0:
            continue
        p = w / total
        h -= p * math.log2(p)
    return h


def route_overlap(route_a: Sequence[int], route_b: Sequence[int]) -> float:
    """Jaccard overlap of the node sets of two routes.

    GPSR's repeated shortest paths give overlap ≈ 1 between consecutive
    packets of a flow; ALERT's random relay selection drives it toward
    0, which is what defeats route tracing and interception (§3.1).
    """
    a, b = set(route_a), set(route_b)
    if not a and not b:
        return 1.0
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def mean_pairwise_overlap(routes: Sequence[Sequence[int]]) -> float:
    """Mean Jaccard overlap over consecutive route pairs of a flow."""
    if len(routes) < 2:
        return float("nan")
    overlaps = [
        route_overlap(routes[i], routes[i + 1]) for i in range(len(routes) - 1)
    ]
    return sum(overlaps) / len(overlaps)


def endpoint_exposure(routes: Sequence[Sequence[int]], endpoint: int) -> float:
    """Fraction of routes in which ``endpoint`` appears at a path end.

    An intruder that can see full routes identifies endpoints by their
    terminal positions; protocols that bury endpoints among forwarders
    (ALERT's Z_D broadcast) lower this.
    """
    if not routes:
        return float("nan")
    hits = 0
    for r in routes:
        if r and (r[0] == endpoint or r[-1] == endpoint):
            hits += 1
    return hits / len(routes)


def observation_frequency(routes: Sequence[Sequence[int]]) -> Counter:
    """How often each node appears across routes (traffic-analysis view).

    A sharply peaked counter over few nodes marks a stable, traceable
    path; a flat counter over many nodes marks ALERT-style dispersion.
    """
    c: Counter = Counter()
    for r in routes:
        for nid in set(r):
            c[nid] += 1
    return c
