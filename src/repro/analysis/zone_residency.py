"""Simulated destination-zone residency (the measurement behind
Figs. 12 and 13).

The §5.5 experiments track, over a data-transmission session, how many
of the nodes originally inside the destination zone are still there
after time t — the simulated counterpart of eq. (15).  This module
runs that measurement on the mobility substrate directly (no traffic
needed: residency is purely a mobility/geometry property).
"""

from __future__ import annotations

import numpy as np

from repro.core.zones import Direction, destination_zone
from repro.geometry.field import Field
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.static import StaticPosition


def measure_remaining_nodes(
    n_nodes: int,
    speed: float,
    h: int,
    times: list[float],
    seed: int = 0,
    field_size: float = 1000.0,
    n_zones: int = 20,
) -> list[float]:
    """Mean count of original zone members still in the zone at each t.

    Parameters
    ----------
    n_nodes:
        Population of the field (density = n_nodes / field area).
    speed:
        Node speed in m/s (0 = static).
    h:
        Number of partitions defining the destination zone.
    times:
        Offsets (seconds) at which residency is probed.
    n_zones:
        Number of random destination choices averaged over.

    Returns
    -------
    list[float]
        Mean remaining-node count per probe time.
    """
    if not times or min(times) < 0:
        raise ValueError("times must be non-empty and non-negative")
    fld = Field(field_size, field_size)
    rng = np.random.default_rng(seed)
    if speed == 0:
        motions = [StaticPosition(fld.random_point(rng)) for _ in range(n_nodes)]
    else:
        motions = [
            RandomWaypoint(fld, rng, speed_min=speed, speed_max=speed)
            for _ in range(n_nodes)
        ]

    totals = np.zeros(len(times))
    for probe in range(n_zones):
        t0 = float(rng.uniform(0.0, 20.0))
        dest_idx = int(rng.integers(0, n_nodes))
        dest_pos = motions[dest_idx].position(t0)
        zone = destination_zone(fld.bounds, dest_pos, h, Direction.VERTICAL)
        members = [
            i for i, m in enumerate(motions) if zone.contains(m.position(t0))
        ]
        for j, dt in enumerate(times):
            remaining = sum(
                1 for i in members if zone.contains(motions[i].position(t0 + dt))
            )
            totals[j] += remaining
    return list(totals / n_zones)


def required_density_for_remaining(
    target_remaining: float,
    speed: float,
    h: int,
    at_time: float,
    densities: list[int],
    seed: int = 0,
    field_size: float = 1000.0,
) -> float:
    """Smallest density (nodes/km²) keeping ``target_remaining`` nodes
    in the zone after ``at_time`` seconds (Fig. 13b's y-axis).

    Interpolates linearly between the measured densities; returns the
    largest probed density if even that falls short.
    """
    if not densities:
        raise ValueError("need at least one density to probe")
    xs, ys = [], []
    for n in sorted(densities):
        remaining = measure_remaining_nodes(
            n, speed, h, [at_time], seed=seed, field_size=field_size
        )[0]
        xs.append(float(n))
        ys.append(remaining)
        if remaining >= target_remaining:
            break
    if ys[-1] >= target_remaining and len(ys) >= 2:
        return float(np.interp(target_remaining, ys[-2:], xs[-2:]))
    return xs[-1]
