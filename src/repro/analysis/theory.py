"""Closed-form analysis of ALERT (paper §4, equations 1-15).

All functions are vectorised over their primary argument where that is
useful for plotting (the benchmark harness evaluates whole curves at
once), and every equation number refers to the paper.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import comb


def zone_side_lengths(
    h: int | np.ndarray, l_a: float, l_b: float
) -> tuple[np.ndarray, np.ndarray]:
    """Eqs. (1)-(2): side lengths of the h-th partitioned zone.

    ``a(h, l_A) = l_A / 2^floor(h/2)`` and
    ``b(h, l_B) = l_B / 2^ceil(h/2)`` — the ``l_B`` side is halved by
    the first partition.
    """
    h = np.asarray(h, dtype=np.int64)
    if np.any(h < 0):
        raise ValueError("h must be >= 0")
    a = l_a / (2.0 ** np.floor(h / 2.0))
    b = l_b / (2.0 ** np.ceil(h / 2.0))
    return a, b


def separation_probability(sigma: int | np.ndarray, h_max: int) -> np.ndarray:
    """Eq. (5): ``p_s(σ) = 1 / 2^σ`` for ``0 < σ <= H``.

    The probability that exactly σ partitions separate a source from a
    uniformly placed destination.
    """
    sigma = np.asarray(sigma, dtype=np.int64)
    if np.any((sigma <= 0) | (sigma > h_max)):
        raise ValueError(f"σ must satisfy 0 < σ <= H={h_max}")
    return 1.0 / (2.0**sigma)


def expected_participating_nodes(
    h_max: int, l_a: float, l_b: float, rho: float
) -> float:
    """Eqs. (6)-(7): expected number of possible participating nodes.

    ``N_e = Σ_{σ=1}^{H} a(σ)·b(σ)·ρ · p_s(σ)`` — the population of the
    zone in which routing happens, weighted over closeness σ.  ``rho``
    is node density per square metre.
    """
    if h_max < 1:
        raise ValueError(f"H must be >= 1, got {h_max}")
    sigmas = np.arange(1, h_max + 1)
    a, b = zone_side_lengths(sigmas, l_a, l_b)
    p = separation_probability(sigmas, h_max)
    return float(np.sum(a * b * rho * p))


def rf_count_pmf(sigma: int, h_max: int) -> np.ndarray:
    """Eq. (8): ``p_i(σ, i) = C(H-σ, i) (1/2)^{H-σ}``.

    Probability of ``i`` random forwarders on a path whose endpoints
    have closeness σ.  Returns the pmf over ``i = 0 .. H-σ``.
    """
    if not 0 < sigma <= h_max:
        raise ValueError(f"need 0 < σ <= H, got σ={sigma}, H={h_max}")
    n = h_max - sigma
    i = np.arange(0, n + 1)
    return comb(n, i) * (0.5**n)


def expected_random_forwarders(h_max: int, per_sigma: bool = False):
    """Eqs. (9)-(10): expected number of random forwarders.

    With ``per_sigma=True`` returns the array ``N_RF(σ)`` for
    ``σ = 1..H`` (eq. 9); otherwise the closeness-weighted total
    ``N_RF`` (eq. 10).
    """
    if h_max < 1:
        raise ValueError(f"H must be >= 1, got {h_max}")
    per = np.empty(h_max, dtype=np.float64)
    for idx, sigma in enumerate(range(1, h_max + 1)):
        pmf = rf_count_pmf(sigma, h_max)
        i = np.arange(pmf.size)
        per[idx] = float(np.sum(pmf * i))
    if per_sigma:
        return per
    sigmas = np.arange(1, h_max + 1)
    weights = 1.0 / (2.0**sigmas)
    return float(np.sum(per * weights))


def remaining_probability(
    t: float | np.ndarray, r: float, v: float
) -> np.ndarray:
    """Eqs. (11)-(12): ``p_r(t) = exp(-t / β(r))``, ``β(r) = πr / 2v``.

    Probability a node moving at speed ``v`` is still inside a circular
    zone of radius ``r`` after time ``t``.  ``v = 0`` gives 1.
    """
    t = np.asarray(t, dtype=np.float64)
    if np.any(t < 0):
        raise ValueError("t must be >= 0")
    if r <= 0:
        raise ValueError(f"radius must be positive, got {r}")
    if v < 0:
        raise ValueError(f"speed must be >= 0, got {v}")
    if v == 0:
        return np.ones_like(t)
    beta = math.pi * r / (2.0 * v)
    return np.exp(-t / beta)


def equivalent_zone_radius(side: float) -> float:
    """Eq. (13): radius of the circle with a square zone's area.

    ``π r² = (2r')² → r = 2r'/√π`` with ``2r'`` the zone side length.
    """
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return side / math.sqrt(math.pi)


def remaining_nodes(
    t: float | np.ndarray,
    h_max: int,
    l_a: float,
    v: float,
    rho: float,
) -> np.ndarray:
    """Eq. (15): nodes remaining in the destination zone after time t.

    ``N_r(t) = e^{-t v / (√π r')} · a(H, l_A)² · ρ``.  The paper's
    derivation assumes a square zone (square field, even ``H``); for
    odd ``H`` — including the paper's own default H = 5 — we use the
    equal-area square side ``√(a·b)`` so the zone population and decay
    constant match the true zone area.
    """
    a, b = zone_side_lengths(h_max, l_a, l_a)
    side = math.sqrt(float(a) * float(b))
    r = equivalent_zone_radius(side)
    p = remaining_probability(t, r, v)
    return p * side * side * rho


def location_service_overhead(
    n_nodes: int,
    n_servers: int,
    update_frequency: float,
    data_frequency: float,
) -> float:
    """§4.3's overhead ratio.

    ``(N_L (N_L - 1) f + N f) / (N F)`` — the fraction of network
    traffic spent on pseudonym/location maintenance.  The paper's
    usability condition is that this be ≪ 1, satisfied when
    ``N_L ≈ √N`` and ``f ≪ F``.
    """
    if n_nodes <= 0 or n_servers <= 0:
        raise ValueError("n_nodes and n_servers must be positive")
    if update_frequency < 0 or data_frequency <= 0:
        raise ValueError("frequencies must be >= 0 (data frequency > 0)")
    numerator = n_servers * (n_servers - 1) * update_frequency + n_nodes * update_frequency
    return numerator / (n_nodes * data_frequency)
