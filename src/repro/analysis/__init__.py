"""Analysis: the paper's §4 closed forms and anonymity metrics."""

from repro.analysis.anonymity import (
    anonymity_entropy,
    k_anonymity_set,
    route_overlap,
)
from repro.analysis.zone_residency import (
    measure_remaining_nodes,
    required_density_for_remaining,
)
from repro.analysis.theory import (
    expected_participating_nodes,
    expected_random_forwarders,
    location_service_overhead,
    remaining_nodes,
    remaining_probability,
    rf_count_pmf,
    separation_probability,
    zone_side_lengths,
)

__all__ = [
    "zone_side_lengths",
    "separation_probability",
    "expected_participating_nodes",
    "rf_count_pmf",
    "expected_random_forwarders",
    "remaining_probability",
    "remaining_nodes",
    "location_service_overhead",
    "k_anonymity_set",
    "anonymity_entropy",
    "route_overlap",
    "measure_remaining_nodes",
    "required_density_for_remaining",
]
