"""Paper-style text tables for benchmark output.

Every benchmark prints its figure's data as one of these tables so the
"rows/series the paper reports" are regenerated verbatim-shaped.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def _fmt(value: float, ci: float | None = None, digits: int = 3) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    base = f"{value:.{digits}f}" if isinstance(value, float) else str(value)
    if ci is not None and not (isinstance(ci, float) and math.isnan(ci)):
        return f"{base} ±{ci:.{digits}f}"
    return base


def format_series_table(
    title: str,
    x_label: str,
    xs: Sequence,
    columns: Mapping[str, Sequence[float]],
    cis: Mapping[str, Sequence[float]] | None = None,
    digits: int = 3,
) -> str:
    """Render an x-vs-series table.

    Parameters
    ----------
    title:
        Heading line (e.g. ``"Fig. 14a — latency per packet (s)"``).
    x_label:
        Name of the x column.
    xs:
        The x values (one row each).
    columns:
        Series name → y values (same length as ``xs``).
    cis:
        Optional series name → CI half-widths, rendered as ``±``.
    digits:
        Float precision.
    """
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(columns[name])} points, "
                f"expected {len(xs)}"
            )
    cells: list[list[str]] = []
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in names:
            ci = None
            if cis is not None and name in cis:
                ci = cis[name][i]
            row.append(_fmt(columns[name][i], ci, digits))
        cells.append(row)

    headers = [x_label] + names
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [
        title,
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def format_kv_block(title: str, pairs: Mapping[str, object]) -> str:
    """Render a simple key/value block (used for scalar results)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title]
    for k, v in pairs.items():
        if isinstance(v, float):
            lines.append(f"  {k.ljust(width)}  {v:.4f}")
        else:
            lines.append(f"  {k.ljust(width)}  {v}")
    return "\n".join(lines)
