"""ASCII field rendering: see where a route actually went.

Handy in examples and debugging: renders the field as a character
grid with node positions, one or more routes, and the destination
zone.  Purely a presentation helper — nothing simulates here.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.primitives import Rect
from repro.net.network import Network


def render_field(
    network: Network,
    routes: Sequence[Sequence[int]] = (),
    zone: Rect | None = None,
    width: int = 60,
    height: int = 24,
    mark_nodes: bool = True,
) -> str:
    """Render the network field as an ASCII grid.

    * ``.`` — an idle node,
    * ``1``-``9`` — a node on the 1st..9th given route (later routes
      win ties; route endpoints render as ``S`` and ``D``),
    * ``#`` — the destination-zone outline.

    Coordinates are scaled to the grid; y grows downward on screen but
    the rendering flips it so north is up.
    """
    fld = network.field
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        cx = min(int(x / fld.width * width), width - 1)
        cy = min(int(y / fld.height * height), height - 1)
        return cx, height - 1 - cy

    if zone is not None:
        x0, y0 = cell(zone.x0, zone.y0)
        x1, y1 = cell(zone.x1 - 1e-9, zone.y1 - 1e-9)
        for cx in range(min(x0, x1), max(x0, x1) + 1):
            for cy in (y0, y1):
                grid[cy][cx] = "#"
        for cy in range(min(y0, y1), max(y0, y1) + 1):
            for cx in (x0, x1):
                grid[cy][cx] = "#"

    if mark_nodes:
        now = network.engine.now
        for node in network.nodes:
            p = node.position(now)
            cx, cy = cell(p.x, p.y)
            if grid[cy][cx] == " ":
                grid[cy][cx] = "."

    now = network.engine.now
    for i, route in enumerate(routes[:9], start=1):
        for j, nid in enumerate(route):
            p = network.nodes[nid].position(now)
            cx, cy = cell(p.x, p.y)
            if j == 0:
                grid[cy][cx] = "S"
            elif j == len(route) - 1:
                grid[cy][cx] = "D"
            else:
                grid[cy][cx] = str(i)

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"
