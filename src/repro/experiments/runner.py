"""Build-and-run machinery: config → network → protocol → metrics.

``run_experiment`` executes one seeded simulation; ``run_many``
repeats it over seeds (the paper averages 30 runs and draws confidence
intervals); ``aggregate`` computes mean ± 95 % CI with Student's t.
"""

from __future__ import annotations

import gc
import math
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy import stats

from repro.core.alert import AlertProtocol
from repro.core.config import AlertConfig
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import MetricsCollector
from repro.geometry.field import Field
from repro.location.service import LocationService
from repro.mobility.group_mobility import make_group_mobility
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.static import StaticPosition
from repro.net.feedback import FlowFeedback
from repro.net.network import Network
from repro.net.radio import RadioModel
from repro.net.traffic import (
    DEFAULT_BACKOFF_KINDS,
    LOSS_DROP,
    LOSS_TIMEOUT,
    AdaptiveSource,
    CbrSource,
)
from repro.routing.alarm import AlarmProtocol
from repro.routing.ao2p import Ao2pProtocol
from repro.routing.base import RoutingProtocol
from repro.routing.gpsr import GpsrProtocol
from repro.routing.zap import ZapProtocol
from repro.sim.engine import Engine


def default_runs() -> int:
    """Seeded repetitions per data point.

    The paper uses 30; benchmarks default to a faster count, raisable
    via the ``REPRO_RUNS`` environment variable.
    """
    return int(os.environ.get("REPRO_RUNS", "5"))


@dataclass
class RunResult:
    """Everything one simulation run produced."""

    config: ExperimentConfig
    metrics: MetricsCollector
    cost: CryptoCostModel
    protocol: RoutingProtocol
    network: Network
    engine: Engine
    pairs: list[tuple[int, int]]
    #: the traffic sources that drove the run (CBR or adaptive)
    sources: list[CbrSource] = field(default_factory=list)
    #: the delivery-feedback channel (``None`` for open-loop traffic)
    feedback: FlowFeedback | None = None

    # -- §5.2 metric accessors ------------------------------------------
    @property
    def delivery_rate(self) -> float:
        """Fraction of data packets delivered (§5.2 metric 6)."""
        return self.metrics.delivery_rate()

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end delay over delivered packets (metric 5)."""
        return self.metrics.mean_latency()

    @property
    def mean_hops(self) -> float:
        """Accumulated hops / packets sent (metric 4)."""
        return self.metrics.mean_hops()

    @property
    def mean_rf_count(self) -> float:
        """Mean random forwarders per delivered packet (metric 2)."""
        return self.metrics.mean_rf_count()

    @property
    def participating_nodes(self) -> int:
        """Distinct nodes that forwarded any packet (metric 1)."""
        return len(self.metrics.participating_nodes())

    @property
    def event_counts(self) -> dict[str, int]:
        """Processed engine events by category (hello/data/control/...)."""
        return dict(self.engine.event_counts)

    def mean_hops_with_dissemination(self) -> float:
        """Fig. 15a's "ALARM (include id dissemination hops)" metric."""
        base = self.mean_hops
        extra = self.metrics.counters.get("dissemination_rx", 0.0)
        sent = max(self.metrics.packets_sent, 1)
        return base + extra / sent

    # -- traffic / closed-loop accessors --------------------------------
    @property
    def offered_load_pps(self) -> float:
        """Data packets handed to the protocol per simulated second."""
        return self.metrics.packets_sent / max(self.config.duration, 1e-12)

    @property
    def goodput_pps(self) -> float:
        """Data packets delivered end-to-end per simulated second."""
        return self.metrics.packets_delivered / max(self.config.duration, 1e-12)

    @property
    def backoff_events(self) -> int:
        """Total adaptive-source backoff events (0 under CBR)."""
        return sum(getattr(s, "backoff_events", 0) for s in self.sources)

    @property
    def recovery_events(self) -> int:
        """Total adaptive-source recovery events (0 under CBR)."""
        return sum(getattr(s, "recovery_events", 0) for s in self.sources)

    def per_flow_traffic(self) -> list[dict]:
        """Per-pair offered load / goodput / backoff, in source order."""
        counts = self.metrics.per_pair_counts()
        rows = []
        for s in self.sources:
            sent, delivered = counts.get((s.src, s.dst), (0, 0))
            rows.append(
                {
                    "src": s.src,
                    "dst": s.dst,
                    "offered": sent,
                    "delivered": delivered,
                    "backoff_events": getattr(s, "backoff_events", 0),
                    "recovery_events": getattr(s, "recovery_events", 0),
                    "final_interval_s": getattr(
                        s, "interval", self.config.send_interval
                    ),
                }
            )
        return rows


def make_mobility_factory(cfg: ExperimentConfig, engine: Engine, fld: Field):
    """Build the per-node mobility factory for a config."""
    if cfg.mobility == "static" or cfg.speed == 0:
        def static_factory(node_id: int, rng):
            return StaticPosition(fld.random_point(rng))

        return static_factory

    if cfg.mobility == "rwp":
        def rwp_factory(node_id: int, rng):
            return RandomWaypoint(
                fld, rng, speed_min=cfg.speed, speed_max=cfg.speed
            )

        return rwp_factory

    # RPGM: shared group references, built once up front.
    group_rng = engine.rng.stream("group-mobility")
    motions = make_group_mobility(
        fld,
        cfg.n_nodes,
        cfg.n_groups,
        cfg.group_range,
        group_rng,
        speed_min=cfg.speed,
        speed_max=cfg.speed,
    )

    def group_factory(node_id: int, rng):
        return motions[node_id]

    return group_factory


def initial_positions_for(cfg: ExperimentConfig) -> np.ndarray:
    """The t=0 node deployment of a config, as an ``(n_nodes, 2)`` array.

    Replays exactly the random draws :class:`~repro.net.network.Network`
    construction makes (same named streams, same order), so row ``i``
    is bit-identical to ``network.position_of(i)`` at t=0.  Only the
    *origins* are deterministic from the config alone: trajectory legs
    beyond t=0 extend lazily from each node's private stream, whose
    consumption interleaves with protocol activity (pseudonym fuzz), so
    full traces cannot be precomputed without running the protocol.

    The sweep executor uses this to compute each distinct deployment
    once and hand it to co-located cells' workers through shared memory
    (cells differing only in protocol share their mobility seed).
    """
    engine = Engine(seed=cfg.seed)
    fld = Field(cfg.field_size, cfg.field_size)
    factory = make_mobility_factory(cfg, engine, fld)
    out = np.empty((cfg.n_nodes, 2), dtype=np.float64)
    for i in range(cfg.n_nodes):
        mobility = factory(i, engine.rng.stream(f"node-{i}"))
        p = mobility.position(0.0)
        out[i, 0] = p.x
        out[i, 1] = p.y
    return out


def make_protocol(
    cfg: ExperimentConfig,
    network: Network,
    location: LocationService,
    metrics: MetricsCollector,
    cost: CryptoCostModel,
) -> RoutingProtocol:
    """Instantiate the configured protocol."""
    if cfg.protocol == "ALERT":
        alert_cfg = AlertConfig(
            k=cfg.k, h_override=cfg.h_override, **cfg.alert_options
        )
        return AlertProtocol(network, location, metrics, cost, alert_cfg)
    if cfg.protocol == "GPSR":
        return GpsrProtocol(network, location, metrics, cost)
    if cfg.protocol == "ALARM":
        return AlarmProtocol(network, location, metrics, cost)
    if cfg.protocol == "AO2P":
        return Ao2pProtocol(network, location, metrics, cost)
    if cfg.protocol == "ZAP":
        return ZapProtocol(network, location, metrics, cost)
    raise ValueError(f"unknown protocol {cfg.protocol!r}")


def build_traffic(
    cfg: ExperimentConfig,
    engine: Engine,
    protocol: RoutingProtocol,
    network: Network,
    pairs: list[tuple[int, int]],
    max_packets_per_pair: int | None = None,
) -> tuple[list[CbrSource], FlowFeedback | None]:
    """Instantiate the configured traffic sources for ``pairs``.

    ``traffic.model == "cbr"`` builds the paper's open-loop sources and
    wires nothing else — the run is byte-identical to the pre-feedback
    kernel.  ``"adaptive"`` additionally builds one
    :class:`~repro.net.feedback.FlowFeedback` channel, hands it to the
    protocol (delivery/drop/timeout reports) and the MAC (retry-
    exhausted drop reports), and subscribes every source to its own
    flows.
    """
    tc = cfg.traffic
    common = dict(
        interval=cfg.send_interval,
        size_bytes=cfg.packet_size,
        max_packets=max_packets_per_pair,
    )
    if tc.model == "cbr":
        return [
            CbrSource(
                engine, protocol.send_data, src, dst,
                start_offset=1.0 + 0.1 * i, **common,
            )
            for i, (src, dst) in enumerate(pairs)
        ], None

    feedback = FlowFeedback()
    protocol.feedback = feedback
    network.mac.drop_listener = lambda flow: feedback.mac_drop(
        flow, engine.now
    )
    kinds = (
        DEFAULT_BACKOFF_KINDS
        if tc.react_to_mac_drops
        else frozenset({LOSS_DROP, LOSS_TIMEOUT})
    )
    sources = [
        AdaptiveSource(
            engine, protocol.send_data, src, dst,
            start_offset=1.0 + 0.1 * i,
            feedback=feedback,
            min_interval=tc.min_interval,
            max_interval=tc.max_interval,
            backoff_factor=tc.backoff_factor,
            recovery_step=tc.recovery_step,
            backoff_kinds=kinds,
            **common,
        )
        for i, (src, dst) in enumerate(pairs)
    ]
    return sources, feedback


def choose_pairs(
    cfg: ExperimentConfig, engine: Engine
) -> list[tuple[int, int]]:
    """Draw ``n_pairs`` disjoint random S-D pairs."""
    if 2 * cfg.n_pairs > cfg.n_nodes:
        raise ValueError(
            f"config asks for n_pairs={cfg.n_pairs} disjoint S-D pairs, "
            f"which needs {2 * cfg.n_pairs} distinct nodes, but "
            f"n_nodes={cfg.n_nodes}; lower n_pairs or raise n_nodes"
        )
    rng = engine.rng.stream("pairs")
    ids = rng.permutation(cfg.n_nodes)
    return [
        (int(ids[2 * i]), int(ids[2 * i + 1])) for i in range(cfg.n_pairs)
    ]


def run_experiment(
    cfg: ExperimentConfig,
    max_packets_per_pair: int | None = None,
    initial_positions: np.ndarray | None = None,
    on_setup: Callable[[], None] | None = None,
) -> RunResult:
    """Execute one seeded simulation end to end.

    The cyclic garbage collector is suspended for the duration of the
    run: the event loop allocates tens of thousands of short-lived
    packets, headers, and callbacks per simulated minute, and letting
    generational collection scan them mid-run costs ~15 % wall clock.
    Everything the run allocates either dies by refcount or is reachable
    from the returned :class:`RunResult`, so deferring collection to
    after the run changes nothing observable.

    ``initial_positions`` optionally seeds the network's spatial index
    with the t=0 deployment (see :func:`initial_positions_for`); results
    are identical with or without it.  ``on_setup`` is called once the
    network/protocol stack is built, immediately before the first event
    runs — benchmarks use it to separate fixed setup cost (key
    generation, registration) from event-loop cost.
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _run_experiment(
            cfg,
            max_packets_per_pair,
            initial_positions=initial_positions,
            on_setup=on_setup,
        )
    finally:
        if gc_was_enabled:
            gc.enable()


def _run_experiment(
    cfg: ExperimentConfig,
    max_packets_per_pair: int | None = None,
    initial_positions: np.ndarray | None = None,
    on_setup: Callable[[], None] | None = None,
) -> RunResult:
    engine = Engine(seed=cfg.seed)
    fld = Field(cfg.field_size, cfg.field_size)
    network = Network(
        engine,
        fld,
        make_mobility_factory(cfg, engine, fld),
        cfg.n_nodes,
        radio=RadioModel(range_m=cfg.radio_range),
        hello_interval=cfg.hello_interval,
        initial_positions=initial_positions,
    )
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    # The location service tallies its own crypto: the paper's cost
    # metrics (latency, energy) cover the routing protocols only and
    # treat the service as shared infrastructure (§2.2, §4.3).
    location = LocationService(
        network,
        updates_enabled=cfg.destination_update,
        update_interval=cfg.location_update_interval,
        cost_model=CryptoCostModel(),
    )
    protocol = make_protocol(cfg, network, location, metrics, cost)

    if on_setup is not None:
        on_setup()
    network.start_hello()
    engine.run(until=0.5)  # let the first beacons populate tables

    pairs = choose_pairs(cfg, engine)
    sources, feedback = build_traffic(
        cfg, engine, protocol, network, pairs,
        max_packets_per_pair=max_packets_per_pair,
    )

    engine.run(until=cfg.duration)
    for s in sources:
        s.stop()
    engine.run(until=cfg.duration + cfg.drain_time)

    network.stop_hello()
    location.stop()
    if isinstance(protocol, AlarmProtocol):
        protocol.stop()

    return RunResult(
        config=cfg,
        metrics=metrics,
        cost=cost,
        protocol=protocol,
        network=network,
        engine=engine,
        pairs=pairs,
        sources=sources,
        feedback=feedback,
    )


def seed_for_run(cfg: ExperimentConfig, i: int) -> int:
    """Seed of repetition ``i`` of an experiment.

    Shared by the serial (:func:`run_many`) and process-parallel
    (:mod:`repro.experiments.parallel`) paths so the two can never
    drift apart.
    """
    return cfg.seed + 1000 * i


def run_many(
    cfg: ExperimentConfig,
    runs: int | None = None,
    max_packets_per_pair: int | None = None,
) -> list[RunResult]:
    """Repeat an experiment over distinct seeds."""
    n = runs if runs is not None else default_runs()
    return [
        run_experiment(
            cfg.with_(seed=seed_for_run(cfg, i)),
            max_packets_per_pair=max_packets_per_pair,
        )
        for i in range(n)
    ]


def aggregate(values: list[float], confidence: float = 0.95) -> tuple[float, float]:
    """Mean and half-width of the Student-t confidence interval.

    NaNs are dropped; a single sample gets a zero-width interval.
    """
    clean = [v for v in values if not math.isnan(v)]
    if not clean:
        return float("nan"), float("nan")
    mean = float(np.mean(clean))
    if len(clean) < 2:
        return mean, 0.0
    sem = float(stats.sem(clean))
    if sem == 0.0:
        return mean, 0.0
    half = sem * float(stats.t.ppf((1 + confidence) / 2.0, len(clean) - 1))
    return mean, half
