"""Opt-in cProfile instrumentation for simulation runs.

Set ``REPRO_PROFILE=1`` and any driver that wraps its runs in
:func:`maybe_profile` dumps a top-N cumulative-time table to stderr
when the block exits::

    REPRO_PROFILE=1 PYTHONPATH=src python benchmarks/bench_perf_core.py --quick

``benchmarks/bench_profile.py`` is the dedicated driver: it profiles a
single configurable end-to-end run and can save the raw ``pstats``
file for flame-graph viewers.

Interpretation caveat: cProfile charges a fixed cost per Python call,
which inflates call-heavy functions (small per-event helpers here) by
roughly 2x relative to their un-profiled wall clock.  Treat the table
as *relative attribution* — which layers dominate and how they shift
after a change — and use the un-profiled benchmark timings in
``BENCH_perf.json`` for absolute numbers.

Environment variables:

``REPRO_PROFILE``
    Truthy (anything but ``""`` or ``"0"``) enables :func:`maybe_profile`.
``REPRO_PROFILE_TOP``
    Rows to print (default 30).
``REPRO_PROFILE_SORT``
    ``pstats`` sort key (default ``cumulative``; e.g. ``tottime``).
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator


def profile_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for profiled runs."""
    return os.environ.get("REPRO_PROFILE", "0") not in ("", "0")


def format_stats(
    prof: cProfile.Profile, top: int = 30, sort: str = "cumulative"
) -> str:
    """Render a profile as a top-``top`` table sorted by ``sort``."""
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return buf.getvalue()


@contextmanager
def maybe_profile(
    label: str = "run",
    top: int | None = None,
    sort: str | None = None,
    stream=None,
) -> Iterator[cProfile.Profile | None]:
    """Profile the enclosed block iff ``REPRO_PROFILE`` is set.

    Yields the active :class:`cProfile.Profile` (or ``None`` when
    disabled) and prints the formatted table on exit, so callers can
    sprinkle this around hot sections with zero cost by default.
    """
    if not profile_enabled():
        yield None
        return
    top = top if top is not None else int(os.environ.get("REPRO_PROFILE_TOP", "30"))
    sort = sort or os.environ.get("REPRO_PROFILE_SORT", "cumulative")
    out = stream if stream is not None else sys.stderr
    prof = cProfile.Profile()
    prof.enable()
    try:
        yield prof
    finally:
        prof.disable()
        print(f"== REPRO_PROFILE: {label} ==", file=out)
        print(format_stats(prof, top=top, sort=sort), file=out)
