"""Experiment configuration mirroring the paper's §5.2 parameters."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class TrafficConfig:
    """The traffic-source block of an experiment.

    ``model="cbr"`` is the paper's open-loop source; ``"adaptive"``
    swaps in :class:`~repro.net.traffic.AdaptiveSource` driven by a
    per-run :class:`~repro.net.feedback.FlowFeedback` channel (MAC
    drops, routing deliveries/drops, confirmation timeouts).

    Parameters
    ----------
    model:
        ``"cbr"`` or ``"adaptive"``.
    min_interval, max_interval:
        Hard clamp for the adaptive send interval, seconds.  The
        experiment's ``send_interval`` must lie inside the clamp.
    backoff_factor:
        Multiplicative interval growth per loss signal (> 1).
    recovery_step:
        Additive interval reduction per acknowledged delivery, seconds.
        Recovery never undershoots ``send_interval``, so a loss-free
        adaptive flow is bit-identical to CBR.
    react_to_mac_drops:
        Whether MAC retry-exhausted drops trigger backoff (terminal
        routing drops and confirmation timeouts always do).
    """

    model: str = "cbr"
    min_interval: float = 0.05
    max_interval: float = 8.0
    backoff_factor: float = 2.0
    recovery_step: float = 0.25
    react_to_mac_drops: bool = True

    def __post_init__(self) -> None:
        if self.model not in ("cbr", "adaptive"):
            raise ValueError(f"unknown traffic model {self.model!r}")
        if not 0 < self.min_interval <= self.max_interval:
            raise ValueError(
                "need 0 < min_interval <= max_interval, got "
                f"{self.min_interval!r}..{self.max_interval!r}"
            )
        if self.backoff_factor <= 1.0:
            raise ValueError(
                f"backoff_factor must exceed 1, got {self.backoff_factor!r}"
            )
        if self.recovery_step < 0:
            raise ValueError(
                f"recovery_step must be >= 0, got {self.recovery_step!r}"
            )

    def with_(self, **overrides: Any) -> "TrafficConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation's parameters.

    Defaults are the paper's: 1000 m × 1000 m field, 200 nodes moving
    at 2 m/s under random waypoint, 250 m range, 10 random S-D pairs
    sending 512-byte packets every 2 s for 100 s.

    Parameters
    ----------
    protocol:
        One of ``"ALERT"``, ``"GPSR"``, ``"ALARM"``, ``"AO2P"``.
    mobility:
        ``"rwp"`` (random waypoint), ``"group"`` (RPGM), or
        ``"static"``.
    n_groups, group_range:
        RPGM parameters (paper: 10 groups × 150 m, or 5 × 200 m).
    destination_update:
        The location-service update toggle of Figs. 14b/15b/16b.
    k:
        ALERT's destination-zone anonymity parameter.
    h_override:
        Force ALERT's partition count ``H`` (else derived from k).
    alert_options:
        Extra keyword overrides applied to :class:`AlertConfig`
        (e.g. ``{"notify_and_go": True}``).
    drain_time:
        Extra simulated seconds after traffic stops, letting in-flight
        packets land before metrics are read.
    """

    protocol: str = "ALERT"
    n_nodes: int = 200
    field_size: float = 1000.0
    speed: float = 2.0
    mobility: str = "rwp"
    n_groups: int = 10
    group_range: float = 150.0
    duration: float = 100.0
    n_pairs: int = 10
    send_interval: float = 2.0
    packet_size: int = 512
    radio_range: float = 250.0
    destination_update: bool = True
    location_update_interval: float = 2.0
    k: int = 6
    #: The paper's §4/§5 default is a *fixed* H = 5 ("We set H = 5 to
    #: ensure that a reasonable number of nodes are in a destination
    #: zone"), with k emerging from density; pass ``None`` to derive
    #: H from k instead.
    h_override: int | None = 5
    alert_options: dict[str, Any] = field(default_factory=dict)
    seed: int = 1
    drain_time: float = 3.0
    hello_interval: float = 1.0
    #: traffic-source block; a plain dict is coerced to
    #: :class:`TrafficConfig` for sweep/CLI convenience.
    traffic: TrafficConfig = field(default_factory=TrafficConfig)

    def __post_init__(self) -> None:
        if self.protocol not in ("ALERT", "GPSR", "ALARM", "AO2P", "ZAP"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.mobility not in ("rwp", "group", "static"):
            raise ValueError(f"unknown mobility model {self.mobility!r}")
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.n_pairs < 1 or 2 * self.n_pairs > self.n_nodes:
            raise ValueError("n_pairs must fit disjointly into the population")
        if self.speed < 0:
            raise ValueError("speed must be >= 0")
        if isinstance(self.traffic, dict):
            object.__setattr__(self, "traffic", TrafficConfig(**self.traffic))
        if self.traffic.model == "adaptive" and not (
            self.traffic.min_interval
            <= self.send_interval
            <= self.traffic.max_interval
        ):
            raise ValueError(
                f"send_interval={self.send_interval!r} outside the adaptive "
                f"clamp [{self.traffic.min_interval!r}, "
                f"{self.traffic.max_interval!r}]"
            )

    def with_(self, **overrides: Any) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def density_per_km2(self) -> float:
        """Node density in nodes per square kilometre."""
        area_km2 = (self.field_size / 1000.0) ** 2
        return self.n_nodes / area_km2
