"""Parameter sweeps: the engine behind every simulation figure.

``sweep_metric`` runs a grid of (protocol × x-value) cells, each
averaged over seeds, and returns mean/CI series ready for
:func:`repro.experiments.tables.format_series_table`.

Cells execute through the persistent executor of
:mod:`repro.experiments.parallel`: with ``REPRO_WORKERS`` > 1 (the
default is ``os.cpu_count()``) every (protocol × x-value × seed)
simulation runs in a warm process pool with scalar results streaming
back through a shared-memory buffer, and the results are bit-identical
to the serial path because each cell is independently seeded.  Metrics
passed as lambdas cannot cross process boundaries and run serially
(with a logged warning) — prefer the named ``metric_*`` extractors
below.  Pass ``on_result`` to observe partial results while the sweep
is still running.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import Cell, OnResult, parallel_map_cells
from repro.experiments.runner import RunResult, aggregate, default_runs


MetricFn = Callable[[RunResult], float]


# ----------------------------------------------------------------------
# Named metric extractors (picklable, unlike lambdas, so sweeps using
# them parallelise across processes).
# ----------------------------------------------------------------------
def metric_delivery_rate(r: RunResult) -> float:
    """Fraction of data packets delivered (§5.2 metric 6)."""
    return r.delivery_rate


def metric_mean_latency(r: RunResult) -> float:
    """Mean end-to-end delay over delivered packets (metric 5)."""
    return r.mean_latency


def metric_mean_hops(r: RunResult) -> float:
    """Accumulated hops / packets sent (metric 4)."""
    return r.mean_hops


def metric_mean_rf_count(r: RunResult) -> float:
    """Mean random forwarders per delivered packet (metric 2)."""
    return r.mean_rf_count


def metric_participating_nodes(r: RunResult) -> float:
    """Distinct nodes that forwarded any packet (metric 1)."""
    return float(r.participating_nodes)


def sweep_metric(
    base: ExperimentConfig,
    x_field: str,
    x_values: Sequence[Any],
    protocols: Sequence[str],
    metric: MetricFn,
    runs: int | None = None,
    max_packets_per_pair: int | None = None,
    extra_overrides: Mapping[str, Mapping[str, Any]] | None = None,
    workers: int | None = None,
    on_result: OnResult | None = None,
) -> tuple[dict[str, list[float]], dict[str, list[float]]]:
    """Sweep ``x_field`` over ``x_values`` for each protocol.

    Parameters
    ----------
    base:
        Baseline config; each cell applies ``{x_field: value,
        protocol: p}`` on top.
    metric:
        Extractor from a finished :class:`RunResult`.  Use a module-
        level function (e.g. :func:`metric_delivery_rate`) to allow
        parallel execution; lambdas still work but force serial runs.
    extra_overrides:
        Optional per-protocol config overrides (e.g. ALERT options).
    workers:
        Process-pool width; ``None`` defers to ``REPRO_WORKERS`` /
        ``os.cpu_count()``, ``1`` forces serial execution.
    on_result:
        Optional streaming callback ``(cell_idx, seed_idx, value)``,
        fired once per completed seed as results arrive.  Cells are
        ordered x-value-major then protocol (the submission order).

    Returns
    -------
    (means, cis):
        Series name → list over ``x_values``.
    """
    n_runs = runs if runs is not None else default_runs()
    cells: list[Cell] = []
    for value in x_values:
        for proto in protocols:
            overrides: dict[str, Any] = {x_field: value, "protocol": proto}
            if extra_overrides and proto in extra_overrides:
                overrides.update(extra_overrides[proto])
            cells.append(
                Cell(
                    base.with_(**overrides),
                    metric,
                    n_runs,
                    max_packets_per_pair,
                )
            )

    per_cell = parallel_map_cells(cells, workers=workers, on_result=on_result)

    means: dict[str, list[float]] = {p: [] for p in protocols}
    cis: dict[str, list[float]] = {p: [] for p in protocols}
    k = 0
    for _value in x_values:
        for proto in protocols:
            mean, ci = aggregate(per_cell[k])
            means[proto].append(mean)
            cis[proto].append(ci)
            k += 1
    return means, cis


def sweep_single(
    base: ExperimentConfig,
    x_field: str,
    x_values: Sequence[Any],
    metric: MetricFn,
    runs: int | None = None,
    max_packets_per_pair: int | None = None,
    workers: int | None = None,
    on_result: OnResult | None = None,
) -> tuple[list[float], list[float]]:
    """One-protocol sweep; returns (means, cis) over ``x_values``."""
    means, cis = sweep_metric(
        base,
        x_field,
        x_values,
        [base.protocol],
        metric,
        runs=runs,
        max_packets_per_pair=max_packets_per_pair,
        workers=workers,
        on_result=on_result,
    )
    return means[base.protocol], cis[base.protocol]
