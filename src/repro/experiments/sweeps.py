"""Parameter sweeps: the engine behind every simulation figure.

``sweep_metric`` runs a grid of (protocol × x-value) cells, each
averaged over seeds, and returns mean/CI series ready for
:func:`repro.experiments.tables.format_series_table`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult, aggregate, run_many


MetricFn = Callable[[RunResult], float]


def sweep_metric(
    base: ExperimentConfig,
    x_field: str,
    x_values: Sequence[Any],
    protocols: Sequence[str],
    metric: MetricFn,
    runs: int | None = None,
    max_packets_per_pair: int | None = None,
    extra_overrides: Mapping[str, Mapping[str, Any]] | None = None,
) -> tuple[dict[str, list[float]], dict[str, list[float]]]:
    """Sweep ``x_field`` over ``x_values`` for each protocol.

    Parameters
    ----------
    base:
        Baseline config; each cell applies ``{x_field: value,
        protocol: p}`` on top.
    metric:
        Extractor from a finished :class:`RunResult`.
    extra_overrides:
        Optional per-protocol config overrides (e.g. ALERT options).

    Returns
    -------
    (means, cis):
        Series name → list over ``x_values``.
    """
    means: dict[str, list[float]] = {p: [] for p in protocols}
    cis: dict[str, list[float]] = {p: [] for p in protocols}
    for value in x_values:
        for proto in protocols:
            overrides: dict[str, Any] = {x_field: value, "protocol": proto}
            if extra_overrides and proto in extra_overrides:
                overrides.update(extra_overrides[proto])
            cfg = base.with_(**overrides)
            results = run_many(
                cfg, runs=runs, max_packets_per_pair=max_packets_per_pair
            )
            mean, ci = aggregate([metric(r) for r in results])
            means[proto].append(mean)
            cis[proto].append(ci)
    return means, cis


def sweep_single(
    base: ExperimentConfig,
    x_field: str,
    x_values: Sequence[Any],
    metric: MetricFn,
    runs: int | None = None,
    max_packets_per_pair: int | None = None,
) -> tuple[list[float], list[float]]:
    """One-protocol sweep; returns (means, cis) over ``x_values``."""
    means, cis = sweep_metric(
        base,
        x_field,
        x_values,
        [base.protocol],
        metric,
        runs=runs,
        max_packets_per_pair=max_packets_per_pair,
    )
    return means[base.protocol], cis[base.protocol]
