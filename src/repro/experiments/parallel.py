"""Process-parallel experiment execution.

Every sweep cell — one ``(config, seed)`` simulation — is independently
seeded (see :func:`repro.experiments.runner.run_many`), so a figure's
grid of cells is embarrassingly parallel.  This module farms cells out
to a :class:`concurrent.futures.ProcessPoolExecutor` at *seed*
granularity (the finest available, for load balancing) and regroups
results in submission order, which makes the parallel path
bit-identical to the serial one.

Workers are selected via the ``REPRO_WORKERS`` environment variable
(default ``os.cpu_count()``); ``REPRO_WORKERS=1`` forces the serial
fallback.  Work items whose config or metric cannot be pickled (e.g. a
lambda metric) silently fall back to serial execution — parallelism is
an optimisation, never a behavioural requirement.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    RunResult,
    default_runs,
    run_experiment,
    seed_for_run,
)

#: Metric extractors usually return a float, but any picklable value
#: (e.g. a per-packet series) crosses the process boundary fine.
MetricFn = Callable[[RunResult], Any]


def worker_count() -> int:
    """Worker processes to use: ``REPRO_WORKERS`` or ``os.cpu_count()``."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


@dataclass(frozen=True)
class Cell:
    """One sweep cell: a config repeated over ``runs`` seeds.

    ``metric`` maps each finished :class:`RunResult` to the scalar the
    figure plots; extraction happens inside the worker because a full
    ``RunResult`` (engine heap, protocol closures) is not picklable.
    """

    cfg: ExperimentConfig
    metric: MetricFn
    runs: int
    max_packets_per_pair: int | None = None

    def seed_configs(self) -> list[ExperimentConfig]:
        """The per-seed configs, in the same order ``run_many`` uses."""
        return [
            self.cfg.with_(seed=seed_for_run(self.cfg, i))
            for i in range(self.runs)
        ]


def _run_seed(
    payload: tuple[ExperimentConfig, MetricFn, int | None]
) -> float:
    """Worker entry point: one seeded simulation → one metric value."""
    cfg, metric, max_packets_per_pair = payload
    result = run_experiment(cfg, max_packets_per_pair=max_packets_per_pair)
    return metric(result)


def _picklable(*objects: object) -> bool:
    try:
        pickle.dumps(objects)
    except Exception:
        return False
    return True


def parallel_map_cells(
    cells: Sequence[Cell], workers: int | None = None
) -> list[list[float]]:
    """Run every cell's seeds, parallel across processes when possible.

    Returns one list of per-seed metric values per cell, in cell order
    — bit-identical to running each cell serially, because each seed's
    simulation is fully determined by its config.
    """
    payloads: list[tuple[ExperimentConfig, MetricFn, int | None]] = []
    spans: list[tuple[int, int]] = []
    for cell in cells:
        start = len(payloads)
        for cfg in cell.seed_configs():
            payloads.append((cfg, cell.metric, cell.max_packets_per_pair))
        spans.append((start, len(payloads)))

    w = workers if workers is not None else worker_count()
    w = min(w, len(payloads)) if payloads else 1
    if w <= 1 or not _picklable(payloads):
        values = [_run_seed(p) for p in payloads]
    else:
        try:
            with ProcessPoolExecutor(max_workers=w) as pool:
                values = list(pool.map(_run_seed, payloads))
        except (OSError, pickle.PicklingError):
            # Restricted environments (no fork/semaphores) degrade to
            # the serial path rather than failing the sweep.
            values = [_run_seed(p) for p in payloads]
    return [values[s:e] for s, e in spans]


def run_many_parallel(
    cfg: ExperimentConfig,
    metric: MetricFn,
    runs: int | None = None,
    max_packets_per_pair: int | None = None,
    workers: int | None = None,
) -> list[float]:
    """Parallel counterpart of ``[metric(r) for r in run_many(cfg)]``.

    Results are returned in seed order and are bit-identical to the
    serial expression above for any worker count.
    """
    n = runs if runs is not None else default_runs()
    cell = Cell(cfg, metric, n, max_packets_per_pair)
    return parallel_map_cells([cell], workers=workers)[0]
