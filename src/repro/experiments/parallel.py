"""Process-parallel experiment execution.

Every sweep cell — one ``(config, seed)`` simulation — is independently
seeded (see :func:`repro.experiments.runner.run_many`), so a figure's
grid of cells is embarrassingly parallel.  :class:`SweepExecutor` farms
cells out at *seed* granularity (the finest available, for load
balancing) and regroups results in submission order, which makes the
parallel path bit-identical to the serial one.

The executor is persistent: its :class:`~concurrent.futures.\
ProcessPoolExecutor` stays warm across ``map_cells`` calls, so a figure
driver running several sweeps pays the worker-spawn cost once.  Scalar
(``float``) metric values return through a
:mod:`multiprocessing.shared_memory` float64 buffer — one slot per
``(cell, seed)`` — instead of being pickled back; non-float values fall
back to pickle transparently.  Completions stream through
``concurrent.futures.as_completed``, so an ``on_result(cell_idx,
seed_idx, value)`` callback observes partial results while the sweep is
still running.

Robustness semantics:

* a sweep whose worker process dies is retried **once** on a fresh pool
  (only the still-pending seeds are resubmitted) before
  :class:`~concurrent.futures.process.BrokenProcessPool` surfaces;
* exceptions raised *by the metric or simulation* propagate immediately
  with their original type — they are bugs, not infrastructure
  failures, and are never retried;
* every degradation to the serial path is logged (never silent).

Workers are selected via the ``REPRO_WORKERS`` environment variable
(default ``os.cpu_count()``, and clamped to it: more workers than
cores is pure contention); ``REPRO_WORKERS=1`` forces the serial
fallback.  Small env-resolved sweeps also run serially — below
``_SPAWN_BREAKEVEN`` seeds a cold pool's spawn cost exceeds any
parallel win (an explicit ``workers=`` argument is always honored).
Work items whose config or metric cannot be pickled (e.g. a lambda
metric) run serially — parallelism is an optimisation, never a
behavioural requirement.

Besides the result buffer, the parallel path shares *input* position
arrays: cells that repeat one mobility signature (same seed, node
count, field, and mobility parameters — e.g. a protocol comparison at
fixed density) get their t=0 deployment computed once in the parent
(:func:`repro.experiments.runner.initial_positions_for`) and mapped
read-only into every worker, which passes it to
``run_experiment(initial_positions=...)`` to pre-seed the spatial
index.  Results are identical with or without the sharing.
"""

from __future__ import annotations

import atexit
import logging
import os
import pickle
from concurrent.futures import as_completed
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    RunResult,
    default_runs,
    initial_positions_for,
    run_experiment,
    seed_for_run,
)

log = logging.getLogger(__name__)

#: Below this many seeds, an env-resolved sweep on a cold pool runs
#: serially: spawning workers costs more wall clock than the sweep
#: itself (the measured break-even sits around 8 small runs).
_SPAWN_BREAKEVEN = 8

#: Metric extractors usually return a float, but any picklable value
#: (e.g. a per-packet series) crosses the process boundary fine.
MetricFn = Callable[[RunResult], Any]

#: Streaming progress callback: ``(cell_idx, seed_idx, value)``.
OnResult = Callable[[int, int, Any], None]


#: One-shot flag for the over-subscription clamp notice.
_warned_worker_clamp = False


def worker_count() -> int:
    """Worker processes to use: ``REPRO_WORKERS`` or ``os.cpu_count()``.

    The env value is clamped to the machine's core count — a pool
    wider than the CPU only adds contention and spawn cost (observed
    as sweeps running *slower* than serial on small hosts).  Explicit
    ``workers=`` arguments bypass this resolver and stay honored.
    """
    global _warned_worker_clamp
    cpus = os.cpu_count() or 1
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            requested = max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
        if requested > cpus:
            if not _warned_worker_clamp:
                _warned_worker_clamp = True
                log.warning(
                    "REPRO_WORKERS=%d exceeds the %d available core(s); "
                    "clamping to %d",
                    requested, cpus, cpus,
                )
            return cpus
        return requested
    return cpus


@dataclass(frozen=True)
class Cell:
    """One sweep cell: a config repeated over ``runs`` seeds.

    ``metric`` maps each finished :class:`RunResult` to the scalar the
    figure plots; extraction happens inside the worker because a full
    ``RunResult`` (engine heap, protocol closures) is not picklable.
    """

    cfg: ExperimentConfig
    metric: MetricFn
    runs: int
    max_packets_per_pair: int | None = None

    def seed_configs(self) -> list[ExperimentConfig]:
        """The per-seed configs, in the same order ``run_many`` uses."""
        return [
            self.cfg.with_(seed=seed_for_run(self.cfg, i))
            for i in range(self.runs)
        ]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Sentinel return tag: the value was written to the shared buffer.
_IN_SHM = ("__repro_in_shm__",)

#: Worker-process cache of the currently attached result buffer.  Each
#: ``map_cells`` call uses one segment; attaching a new name drops the
#: stale attachment from the previous sweep.
_worker_shm: dict[str, shared_memory.SharedMemory] = {}


#: Worker-process cache of the currently attached *position* segment,
#: kept separate from the result-buffer cache: both segments are live
#: during one sweep, and either cache evicts only its own stale names.
_worker_pos_shm: dict[str, shared_memory.SharedMemory] = {}


def _attach_segment(
    cache: dict[str, shared_memory.SharedMemory], name: str
) -> shared_memory.SharedMemory:
    shm = cache.get(name)
    if shm is None:
        for stale in list(cache):
            cache.pop(stale).close()
        # Attaching re-registers the name with the resource tracker;
        # under the fork start method workers share the parent's
        # tracker, so that is a set-add no-op and the parent's unlink
        # cleans up exactly once.  (Python 3.13's track=False makes
        # this explicit; until then, don't unregister here — doing so
        # would race the owning parent's own unregistration.)
        shm = shared_memory.SharedMemory(name=name)
        cache[name] = shm
    return shm


def _attach_result_buffer(name: str) -> shared_memory.SharedMemory:
    return _attach_segment(_worker_shm, name)


def _shared_positions(pos_ref: tuple | None) -> np.ndarray | None:
    """Read-only view of a shared t=0 deployment, or ``None``.

    ``pos_ref`` is ``(segment_name, byte_offset, n_nodes)``.  Any
    attach failure degrades to ``None`` — the worker then derives the
    deployment itself during network construction, which is slower but
    bit-identical.
    """
    if pos_ref is None:
        return None
    name, offset, n = pos_ref
    try:
        shm = _attach_segment(_worker_pos_shm, name)
        view = np.ndarray(
            (n, 2), dtype=np.float64, buffer=shm.buf, offset=offset
        )
    except (OSError, ValueError) as exc:
        log.warning(
            "shared position segment unavailable (%s); "
            "recomputing deployment in-worker", exc,
        )
        return None
    view.flags.writeable = False
    return view


def _run_seed(payload: tuple) -> Any:
    """Worker entry point: one seeded simulation → one metric value.

    ``payload`` is ``(slot, shm_name, cfg, metric, max_packets)`` with
    an optional trailing ``pos_ref`` naming this config's shared t=0
    deployment (see :meth:`SweepExecutor._build_position_segment`).
    Exact-``float`` values are written into slot ``slot`` of the shared
    float64 buffer and only a tag crosses the pickle boundary; anything
    else (ints, series, None) returns by pickle so the caller sees the
    identical object the serial path would produce.
    """
    slot, shm_name, cfg, metric, max_packets_per_pair = payload[:5]
    pos_ref = payload[5] if len(payload) > 5 else None
    result = run_experiment(
        cfg,
        max_packets_per_pair=max_packets_per_pair,
        initial_positions=_shared_positions(pos_ref),
    )
    value = metric(result)
    if shm_name is not None and type(value) is float:
        shm = _attach_result_buffer(shm_name)
        np.ndarray(
            (shm.size // 8,), dtype=np.float64, buffer=shm.buf
        )[slot] = value
        return _IN_SHM
    return ("value", value)


def _run_seed_local(payload: tuple) -> Any:
    """In-process (serial) twin of :func:`_run_seed` — no transport."""
    _slot, _shm_name, cfg, metric, max_packets_per_pair = payload
    result = run_experiment(cfg, max_packets_per_pair=max_packets_per_pair)
    return metric(result)


# ----------------------------------------------------------------------
# picklability probing
# ----------------------------------------------------------------------
def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _representative_payloads(payloads: Sequence[tuple]) -> list[tuple]:
    """One payload per distinct metric callable.

    Configs are plain dataclasses of scalars; the metric function is
    the only piece whose picklability varies (lambdas and closures
    can't cross process boundaries).  Probing one representative per
    metric avoids re-serializing the whole ``configs × seeds`` payload
    list just to find out.
    """
    seen: set[int] = set()
    reps: list[tuple] = []
    for p in payloads:
        metric_id = id(p[3])
        if metric_id not in seen:
            seen.add(metric_id)
            reps.append(p)
    return reps


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
_PENDING = object()


class SweepExecutor:
    """Persistent sweep executor: warm process pool + shared-memory IPC.

    Parameters
    ----------
    workers:
        Pool width; ``None`` defers to ``REPRO_WORKERS`` /
        ``os.cpu_count()`` at each ``map_cells`` call, ``1`` forces
        serial execution.
    use_shared_memory:
        Transport for exact-``float`` metric values.  ``True`` (the
        default) returns them through a shared float64 buffer; ``False``
        forces the legacy pickle return path (kept for benchmarking —
        results are bit-identical either way).

    The executor is a context manager; ``close()`` shuts the warm pool
    down.  The module-level :func:`parallel_map_cells` uses a shared
    executor per worker count, so independent sweeps reuse one pool.
    """

    #: one retry on a fresh pool before BrokenProcessPool surfaces
    MAX_POOL_RETRIES = 1

    def __init__(
        self, workers: int | None = None, use_shared_memory: bool = True
    ) -> None:
        self._workers_arg = workers
        self.use_shared_memory = use_shared_memory
        self._pool: ProcessPoolExecutor | None = None
        self._pool_width = 0
        #: diagnostics: fresh pools created after a worker death
        self.pool_restarts = 0
        self._warned_serial = False

    # -- pool lifecycle -------------------------------------------------
    @property
    def workers(self) -> int:
        """Resolved pool width for the next ``map_cells`` call."""
        if self._workers_arg is not None:
            return max(1, self._workers_arg)
        return worker_count()

    def _ensure_pool(self, width: int) -> ProcessPoolExecutor:
        if self._pool is None or self._pool_width != width:
            self._shutdown_pool()
            self._pool = ProcessPoolExecutor(max_workers=width)
            self._pool_width = width
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_width = 0

    def close(self) -> None:
        """Shut the warm worker pool down (idempotent)."""
        self._shutdown_pool()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- logging --------------------------------------------------------
    def _warn_serial(self, reason: str) -> None:
        """One-shot (per executor) warning when a sweep degrades."""
        if not self._warned_serial:
            self._warned_serial = True
            log.warning(
                "sweep degraded to serial execution: %s "
                "(parallelism is an optimisation; results are identical)",
                reason,
            )

    # -- execution ------------------------------------------------------
    def map_cells(
        self,
        cells: Sequence[Cell],
        on_result: OnResult | None = None,
    ) -> list[list[Any]]:
        """Run every cell's seeds, parallel across processes when possible.

        Returns one list of per-seed metric values per cell, in cell
        order — bit-identical to running each cell serially, because
        each seed's simulation is fully determined by its config.
        ``on_result`` (if given) fires once per completed ``(cell,
        seed)`` as results stream in; completion order is submission
        order on the serial path and nondeterministic in parallel.
        """
        payloads: list[tuple] = []
        coords: list[tuple[int, int]] = []
        spans: list[tuple[int, int]] = []
        for cell_idx, cell in enumerate(cells):
            start = len(payloads)
            for seed_idx, cfg in enumerate(cell.seed_configs()):
                slot = len(payloads)
                payloads.append(
                    (slot, None, cfg, cell.metric, cell.max_packets_per_pair)
                )
                coords.append((cell_idx, seed_idx))
            spans.append((start, len(payloads)))

        values: list[Any] = [_PENDING] * len(payloads)
        width = min(self.workers, len(payloads)) if payloads else 1
        if (
            width > 1
            and self._workers_arg is None
            and self._pool is None
            and len(payloads) < _SPAWN_BREAKEVEN
        ):
            # Too little work to amortise a cold pool spawn.  Only the
            # env-resolved default degrades: an explicit ``workers=``
            # argument is a deliberate choice (and what the tests use
            # to force the pool on any host), and a warm pool has
            # already paid its spawn cost.
            self._warn_serial(
                f"{len(payloads)} seed(s) is below the ~{_SPAWN_BREAKEVEN}"
                "-seed break-even for spawning a worker pool"
            )
            width = 1
        if width <= 1:
            self._run_serial(payloads, coords, values, on_result)
        elif not all(_picklable(p) for p in _representative_payloads(payloads)):
            self._warn_serial(
                "config or metric is not picklable "
                "(use the named repro.experiments.sweeps.metric_* "
                "extractors instead of lambdas)"
            )
            self._run_serial(payloads, coords, values, on_result)
        else:
            try:
                self._run_parallel(payloads, coords, values, width, on_result)
            except OSError as exc:
                # Restricted environments (no fork/semaphores) degrade
                # to the serial path rather than failing the sweep.
                self._warn_serial(f"process pool unavailable ({exc})")
                self._shutdown_pool()
                self._run_serial(payloads, coords, values, on_result)

        return [values[s:e] for s, e in spans]

    def _run_serial(
        self,
        payloads: Sequence[tuple],
        coords: Sequence[tuple[int, int]],
        values: list[Any],
        on_result: OnResult | None,
    ) -> None:
        for slot, payload in enumerate(payloads):
            if values[slot] is not _PENDING:
                continue
            values[slot] = _run_seed_local(payload)
            if on_result is not None:
                cell_idx, seed_idx = coords[slot]
                on_result(cell_idx, seed_idx, values[slot])

    def _run_parallel(
        self,
        payloads: Sequence[tuple],
        coords: Sequence[tuple[int, int]],
        values: list[Any],
        width: int,
        on_result: OnResult | None,
    ) -> None:
        shm: shared_memory.SharedMemory | None = None
        buf: np.ndarray | None = None
        if self.use_shared_memory:
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=8 * len(payloads)
                )
                buf = np.ndarray(
                    (len(payloads),), dtype=np.float64, buffer=shm.buf
                )
            except (OSError, ValueError) as exc:
                log.warning(
                    "shared-memory result buffer unavailable (%s); "
                    "falling back to pickled results",
                    exc,
                )
                shm = None
        pos_shm, pos_refs = self._build_position_segment(payloads)
        try:
            retries = 0
            while True:
                try:
                    self._drain_pool(
                        payloads, coords, values, width, shm, buf,
                        pos_refs, on_result,
                    )
                    return
                except BrokenProcessPool:
                    self._shutdown_pool()
                    if retries >= self.MAX_POOL_RETRIES:
                        raise
                    retries += 1
                    self.pool_restarts += 1
                    pending = sum(1 for v in values if v is _PENDING)
                    log.warning(
                        "worker process died; retrying %d pending seed(s) "
                        "on a fresh pool (attempt %d/%d)",
                        pending,
                        retries + 1,
                        self.MAX_POOL_RETRIES + 1,
                    )
        finally:
            if shm is not None:
                buf = None  # release the numpy view before closing
                shm.close()
                shm.unlink()
            if pos_shm is not None:
                pos_shm.close()
                pos_shm.unlink()

    def _build_position_segment(
        self, payloads: Sequence[tuple]
    ) -> tuple[shared_memory.SharedMemory | None, list[tuple | None] | None]:
        """Shared t=0 deployments for configs that repeat a mobility seed.

        Groups the payloads by *mobility signature* — the config fields
        that fully determine the t=0 deployment draws (seed, node
        count, field size, mobility model and its parameters).  Every
        signature shared by at least two payloads gets its deployment
        computed once (:func:`initial_positions_for`) and packed into
        one shared-memory segment; the returned ``pos_refs`` list maps
        each payload slot to its ``(name, byte_offset, n_nodes)``
        reference (``None`` where nothing is shared — a deployment used
        once is cheapest computed where it is used).

        Closes ROADMAP's "share the position arrays too" item: sweep
        shapes like protocol comparisons at a fixed density hand every
        co-seeded worker the same read-only array instead of having
        each one re-derive it.
        """
        if not self.use_shared_memory:
            return None, None
        sig_slots: dict[tuple, list[int]] = {}
        for slot, p in enumerate(payloads):
            cfg = p[2]
            sig = (
                cfg.seed, cfg.n_nodes, cfg.field_size, cfg.mobility,
                cfg.speed, cfg.n_groups, cfg.group_range,
            )
            sig_slots.setdefault(sig, []).append(slot)
        shared = {s: sl for s, sl in sig_slots.items() if len(sl) >= 2}
        if not shared:
            return None, None
        arrays = [
            initial_positions_for(payloads[slots[0]][2])
            for slots in shared.values()
        ]
        try:
            pos_shm = shared_memory.SharedMemory(
                create=True, size=sum(a.nbytes for a in arrays)
            )
        except (OSError, ValueError) as exc:
            log.warning(
                "shared-memory position segment unavailable (%s); "
                "workers will derive deployments themselves", exc,
            )
            return None, None
        pos_refs: list[tuple | None] = [None] * len(payloads)
        offset = 0
        for arr, slots in zip(arrays, shared.values()):
            dst = np.ndarray(
                arr.shape, dtype=np.float64, buffer=pos_shm.buf,
                offset=offset,
            )
            dst[:] = arr
            ref = (pos_shm.name, offset, arr.shape[0])
            for slot in slots:
                pos_refs[slot] = ref
            offset += arr.nbytes
        return pos_shm, pos_refs

    def _drain_pool(
        self,
        payloads: Sequence[tuple],
        coords: Sequence[tuple[int, int]],
        values: list[Any],
        width: int,
        shm: shared_memory.SharedMemory | None,
        buf: np.ndarray | None,
        pos_refs: Sequence[tuple | None] | None,
        on_result: OnResult | None,
    ) -> None:
        """Submit every still-pending payload and stream completions."""
        pool = self._ensure_pool(width)
        shm_name = shm.name if shm is not None else None
        futures = {}
        for slot, payload in enumerate(payloads):
            if values[slot] is not _PENDING:
                continue
            pos_ref = pos_refs[slot] if pos_refs is not None else None
            wire = (slot, shm_name, *payload[2:], pos_ref)
            futures[pool.submit(_run_seed, wire)] = slot
        try:
            for fut in as_completed(futures):
                slot = futures[fut]
                tag = fut.result()  # re-raises worker-side exceptions
                if tag == _IN_SHM:
                    assert buf is not None
                    # float64 round-trips exactly: bit-identical to the
                    # worker's (and hence the serial path's) value.
                    values[slot] = float(buf[slot])
                else:
                    values[slot] = tag[1]
                if on_result is not None:
                    cell_idx, seed_idx = coords[slot]
                    on_result(cell_idx, seed_idx, values[slot])
        except BrokenProcessPool:
            raise
        except BaseException:
            # A metric/simulation bug: surface it with its original
            # type; cancel whatever has not started yet.
            for fut in futures:
                fut.cancel()
            raise


# ----------------------------------------------------------------------
# module-level convenience API (shared warm executors)
# ----------------------------------------------------------------------
#: Shared executors keyed by the ``workers`` argument (``None`` =
#: env-resolved).  Reusing them keeps pools warm across sweeps.
_shared_executors: dict[int | None, SweepExecutor] = {}


def get_executor(workers: int | None = None) -> SweepExecutor:
    """The shared persistent executor for a given worker setting."""
    ex = _shared_executors.get(workers)
    if ex is None:
        ex = SweepExecutor(workers)
        _shared_executors[workers] = ex
    return ex


@atexit.register
def _close_shared_executors() -> None:  # pragma: no cover - atexit
    for ex in _shared_executors.values():
        ex.close()


def parallel_map_cells(
    cells: Sequence[Cell],
    workers: int | None = None,
    on_result: OnResult | None = None,
) -> list[list[Any]]:
    """Run every cell's seeds on the shared persistent executor.

    Returns one list of per-seed metric values per cell, in cell order
    — bit-identical to running each cell serially.  See
    :meth:`SweepExecutor.map_cells`.
    """
    return get_executor(workers).map_cells(cells, on_result=on_result)


def run_many_parallel(
    cfg: ExperimentConfig,
    metric: MetricFn,
    runs: int | None = None,
    max_packets_per_pair: int | None = None,
    workers: int | None = None,
    on_result: OnResult | None = None,
) -> list[Any]:
    """Parallel counterpart of ``[metric(r) for r in run_many(cfg)]``.

    Results are returned in seed order and are bit-identical to the
    serial expression above for any worker count.
    """
    n = runs if runs is not None else default_runs()
    cell = Cell(cfg, metric, n, max_packets_per_pair)
    return parallel_map_cells([cell], workers=workers, on_result=on_result)[0]
