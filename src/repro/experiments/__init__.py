"""Experiment harness: configs, metrics, runners, sweeps, table output.

The runner imports the protocol stack, which itself uses the metrics
module, so runner symbols are exposed lazily to keep imports acyclic.
"""

from typing import Any

from repro.experiments.config import ExperimentConfig, TrafficConfig
from repro.experiments.metrics import FlowRecord, MetricsCollector
from repro.experiments.tables import format_kv_block, format_series_table

__all__ = [
    "ExperimentConfig",
    "TrafficConfig",
    "MetricsCollector",
    "FlowRecord",
    "run_experiment",
    "run_many",
    "aggregate",
    "default_runs",
    "RunResult",
    "format_series_table",
    "format_kv_block",
    "sweep_metric",
    "sweep_single",
    "run_many_parallel",
    "parallel_map_cells",
    "worker_count",
    "Cell",
]

_LAZY = {
    "run_experiment": "repro.experiments.runner",
    "run_many": "repro.experiments.runner",
    "aggregate": "repro.experiments.runner",
    "default_runs": "repro.experiments.runner",
    "RunResult": "repro.experiments.runner",
    "sweep_metric": "repro.experiments.sweeps",
    "sweep_single": "repro.experiments.sweeps",
    "run_many_parallel": "repro.experiments.parallel",
    "parallel_map_cells": "repro.experiments.parallel",
    "worker_count": "repro.experiments.parallel",
    "Cell": "repro.experiments.parallel",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
