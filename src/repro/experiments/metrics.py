"""Per-flow metrics collection.

One :class:`FlowRecord` per data packet handed to a routing protocol;
the collector aggregates them into exactly the six metrics of §5.2:

1. number of actual participating nodes,
2. number of random forwarders,
3. number of remaining nodes in a destination zone (measured by the
   zone-membership probes in ``repro.analysis``),
4. number of hops per packet,
5. latency per packet,
6. delivery rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FlowRecord:
    """Lifecycle record of a single data packet (one "flow")."""

    flow_id: int
    src: int
    dst: int
    created_at: float
    size_bytes: int
    protocol: str = ""
    delivered_at: float | None = None
    dropped_reason: str | None = None
    #: successful link exchanges carrying this packet (hops metric)
    tx_count: int = 0
    #: link-layer attempts including MAC retries (energy proxy)
    attempts: int = 0
    #: random forwarders selected en route (ALERT only)
    rf_count: int = 0
    #: partitions performed en route (ALERT only)
    partitions: int = 0
    #: nodes that transmitted the packet (RFs + relays + source)
    participants: set[int] = field(default_factory=set)
    #: delivery path of the (first) delivered branch
    path: list[int] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        """Whether the packet reached its destination."""
        return self.delivered_at is not None

    @property
    def latency(self) -> float | None:
        """End-to-end delay, or ``None`` if undelivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at


class MetricsCollector:
    """Accumulates flow records and miscellaneous counters for one run."""

    def __init__(self) -> None:
        self._flows: dict[int, FlowRecord] = {}
        self._order: list[int] = []
        self._next_id = 1
        #: free-form counters (cover traffic, dissemination receptions…)
        self.counters: dict[str, float] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def start_flow(
        self, src: int, dst: int, now: float, size_bytes: int, protocol: str = ""
    ) -> int:
        """Open a record for a new data packet; returns its flow id."""
        fid = self._next_id
        self._next_id += 1
        self._flows[fid] = FlowRecord(
            flow_id=fid,
            src=src,
            dst=dst,
            created_at=now,
            size_bytes=size_bytes,
            protocol=protocol,
        )
        self._order.append(fid)
        return fid

    def flow(self, flow_id: int) -> FlowRecord:
        """The record for ``flow_id`` (KeyError if unknown)."""
        return self._flows[flow_id]

    def record_tx(self, flow_id: int | None, attempts: int, success: bool) -> None:
        """Link-layer exchange notification (wired to ``Network.tx_listener``)."""
        if flow_id is None or flow_id not in self._flows:
            return
        rec = self._flows[flow_id]
        rec.attempts += attempts
        if success:
            rec.tx_count += 1

    def record_participant(self, flow_id: int, node_id: int) -> None:
        """A node transmitted (relayed/forwarded) the packet."""
        rec = self._flows.get(flow_id)
        if rec is not None:
            rec.participants.add(node_id)

    def record_rf(self, flow_id: int, node_id: int) -> None:
        """A random forwarder was selected for this packet."""
        rec = self._flows.get(flow_id)
        if rec is not None:
            rec.rf_count += 1
            rec.participants.add(node_id)

    def record_partitions(self, flow_id: int, n: int) -> None:
        """``n`` zone partitions were performed at one forwarder."""
        rec = self._flows.get(flow_id)
        if rec is not None:
            rec.partitions += n

    def record_delivery(
        self, flow_id: int, now: float, path: list[int] | None = None
    ) -> None:
        """First delivery of the packet at its true destination."""
        rec = self._flows.get(flow_id)
        if rec is None or rec.delivered_at is not None:
            return
        rec.delivered_at = now
        if path is not None:
            rec.path = list(path)

    def record_drop(self, flow_id: int, reason: str) -> None:
        """Terminal drop (only recorded if not already delivered)."""
        rec = self._flows.get(flow_id)
        if rec is not None and rec.delivered_at is None and rec.dropped_reason is None:
            rec.dropped_reason = reason

    def note(self, key: str, amount: float = 1.0) -> None:
        """Bump a free-form counter."""
        self.counters[key] = self.counters.get(key, 0.0) + amount

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def flows(self) -> list[FlowRecord]:
        """All flow records, in creation order."""
        return [self._flows[fid] for fid in self._order]

    @property
    def packets_sent(self) -> int:
        """Number of data packets handed to the protocol."""
        return len(self._order)

    @property
    def packets_delivered(self) -> int:
        """Number of data packets that reached their destination."""
        return sum(1 for f in self.flows() if f.delivered)

    def per_pair_counts(self) -> dict[tuple[int, int], tuple[int, int]]:
        """``(sent, delivered)`` per (src, dst) pair, in flow order.

        The per-flow view behind ``RunResult.per_flow_traffic()``:
        offered load and goodput of each S-D pair separately.
        """
        out: dict[tuple[int, int], list[int]] = {}
        for f in self.flows():
            sent_delivered = out.setdefault((f.src, f.dst), [0, 0])
            sent_delivered[0] += 1
            if f.delivered:
                sent_delivered[1] += 1
        return {k: (v[0], v[1]) for k, v in out.items()}

    def delivery_rate(self) -> float:
        """Fraction of packets delivered (§5.2 metric 6)."""
        if not self._order:
            return 0.0
        return sum(1 for f in self.flows() if f.delivered) / len(self._order)

    def mean_latency(self) -> float:
        """Mean end-to-end delay over delivered packets (metric 5)."""
        lats = [f.latency for f in self.flows() if f.latency is not None]
        if not lats:
            return float("nan")
        return sum(lats) / len(lats)

    def mean_hops(self) -> float:
        """Accumulated hop counts / packets sent (metric 4).

        The paper divides by packets *sent*, so undelivered packets'
        partial hops count in the numerator.
        """
        if not self._order:
            return float("nan")
        return sum(f.tx_count for f in self.flows()) / len(self._order)

    def mean_rf_count(self, delivered_only: bool = True) -> float:
        """Mean number of random forwarders per packet (metric 2)."""
        flows = [f for f in self.flows() if f.delivered or not delivered_only]
        if not flows:
            return float("nan")
        return sum(f.rf_count for f in flows) / len(flows)

    def participating_nodes(self) -> set[int]:
        """Union of participants over every packet (metric 1)."""
        out: set[int] = set()
        for f in self.flows():
            out |= f.participants
        return out

    def cumulative_participants(self) -> list[int]:
        """Cumulative distinct participants after each packet, in order.

        This is the y-series of Fig. 10a ("cumulated actual
        participating nodes" vs number of packets transmitted).
        """
        seen: set[int] = set()
        series: list[int] = []
        for f in self.flows():
            seen |= f.participants
            series.append(len(seen))
        return series
