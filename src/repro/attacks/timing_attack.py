"""The timing attack (paper §3.2).

"Through packet departure and arrival times, an intruder can identify
the packets transmitted between S and D" — if the S→D delay is (near)
constant, the intruder matches A's departure times against B's arrival
times and concludes they communicate.

The attacker here scores every candidate receiver by how *regular* the
departure→arrival delay looks: for each departure it takes the first
subsequent arrival at the candidate, and computes the coefficient of
variation of those delays.  A protocol with a fixed path (GPSR) gives
a tiny CV → confident match; ALERT's per-packet random routes (and the
deferred two-step zone delivery) inflate the variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class TimingVerdict:
    """Result of correlating one (sender, receiver) pair."""

    matched_pairs: int
    mean_delay: float
    delay_std: float
    #: coefficient of variation; below the attacker's threshold = match
    cv: float
    identified: bool


class TimingAttacker:
    """Correlates departure and arrival timestamps.

    Parameters
    ----------
    cv_threshold:
        Maximum delay coefficient-of-variation the attacker accepts as
        evidence of a fixed S→D relationship.
    min_pairs:
        Minimum matched (departure, arrival) pairs before concluding.
    max_delay:
        Arrivals later than this after a departure are not matched.
    """

    def __init__(
        self,
        cv_threshold: float = 0.15,
        min_pairs: int = 5,
        max_delay: float = 5.0,
    ) -> None:
        self.cv_threshold = cv_threshold
        self.min_pairs = min_pairs
        self.max_delay = max_delay

    def match_delays(
        self, departures: list[float], arrivals: list[float]
    ) -> list[float]:
        """First-subsequent-arrival matching of the two event streams."""
        delays: list[float] = []
        arr = sorted(arrivals)
        idx = 0
        for dep in sorted(departures):
            while idx < len(arr) and arr[idx] < dep:
                idx += 1
            if idx >= len(arr):
                break
            delay = arr[idx] - dep
            if delay <= self.max_delay:
                delays.append(delay)
                idx += 1
        return delays

    def correlate(
        self, departures: list[float], arrivals: list[float]
    ) -> TimingVerdict:
        """Score one candidate pair."""
        delays = self.match_delays(departures, arrivals)
        n = len(delays)
        if n == 0:
            return TimingVerdict(0, float("nan"), float("nan"), float("inf"), False)
        mean = sum(delays) / n
        var = sum((d - mean) ** 2 for d in delays) / n
        std = math.sqrt(var)
        cv = std / mean if mean > 0 else float("inf")
        identified = n >= self.min_pairs and cv <= self.cv_threshold
        return TimingVerdict(n, mean, std, cv, identified)

    def best_candidate(
        self, departures: list[float], candidates: dict[int, list[float]]
    ) -> tuple[int | None, TimingVerdict | None]:
        """The candidate receiver with the most regular delay, if any."""
        best_id: int | None = None
        best: TimingVerdict | None = None
        for cid in sorted(candidates):
            verdict = self.correlate(departures, candidates[cid])
            if verdict.matched_pairs < self.min_pairs:
                continue
            if best is None or verdict.cv < best.cv:
                best = verdict
                best_id = cid
        return best_id, best
