"""Passive observer infrastructure shared by the concrete attacks."""

from __future__ import annotations

from dataclasses import dataclass, field


def union_observations_by_window(
    observations: list["DeliveryObservation"], window: float
) -> list["DeliveryObservation"]:
    """Merge receptions belonging to one packet delivery.

    A single packet's zone delivery can put several frames on the air
    (entry relay, center approach, rebroadcast); an attacker groups
    frames closer together than ``window`` seconds — far shorter than
    the inter-packet gap — and unions their recipient sets into one
    per-packet observation before intersecting.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window!r}")
    merged: list[DeliveryObservation] = []
    bucket_start: float | None = None
    bucket: set[int] = set()
    for obs in sorted(observations, key=lambda o: o.time):
        if bucket_start is None or obs.time - bucket_start > window:
            if bucket_start is not None:
                merged.append(
                    DeliveryObservation(bucket_start, frozenset(bucket))
                )
            bucket_start = obs.time
            bucket = set(obs.recipients)
        else:
            bucket |= obs.recipients
    if bucket_start is not None:
        merged.append(DeliveryObservation(bucket_start, frozenset(bucket)))
    return merged


@dataclass(frozen=True)
class DeliveryObservation:
    """One observed zone delivery: who received a packet, and when.

    The observer sees radio receptions, not identities: ``recipients``
    are the (pseudonymous) addresses it could attribute receptions to.
    """

    time: float
    recipients: frozenset[int]


@dataclass
class PassiveObserver:
    """A battery-powered eavesdropper accumulating observations.

    Concrete attacks consume the observation log; the observer itself
    never interacts with the protocol (paper §2.1: attackers
    "passively receive network packets and detect activities in their
    vicinity").
    """

    deliveries: list[DeliveryObservation] = field(default_factory=list)
    #: (time, node_id) transmission events seen on the air
    transmissions: list[tuple[float, int]] = field(default_factory=list)

    def observe_delivery(self, time: float, recipients) -> None:
        """Record the recipient set of one zone delivery."""
        self.deliveries.append(
            DeliveryObservation(time=time, recipients=frozenset(recipients))
        )

    def observe_transmission(self, time: float, node_id: int) -> None:
        """Record one on-air transmission."""
        self.transmissions.append((time, node_id))

    def observation_count(self) -> int:
        """Total observed events."""
        return len(self.deliveries) + len(self.transmissions)
