"""Adversary models (paper §2.1 attack model, §3 analyses).

Passive, computation-bounded observers: they record transmissions and
recipient sets in their vicinity and run offline analyses —
intersection attacks (§3.3), timing attacks (§3.2), and traffic
analysis / interception (§3.1).  None of them can break the ciphers.
"""

from repro.attacks.adversary import (
    DeliveryObservation,
    PassiveObserver,
    union_observations_by_window,
)
from repro.attacks.intersection_attack import IntersectionAttacker
from repro.attacks.timing_attack import TimingAttacker
from repro.attacks.traffic_analysis import InterceptionAttacker, RouteTracer

__all__ = [
    "PassiveObserver",
    "DeliveryObservation",
    "union_observations_by_window",
    "IntersectionAttacker",
    "TimingAttacker",
    "RouteTracer",
    "InterceptionAttacker",
]
