"""The intersection attack (paper §3.3, Fig. 5).

"An attacker with information about active users at a given time can
determine the sources and destinations that communicate with each
other through repeated observations" — concretely, the attacker
intersects the destination-zone recipient sets over successive packet
deliveries.  If the destination receives every packet, it survives
every intersection while mobile bystanders churn out, so the candidate
set shrinks to {D}.

ALERT's two-step partial multicast makes the destination *absent* from
some observable recipient sets, so the running intersection loses D
and the attack returns an empty (or wrong) candidate set.
"""

from __future__ import annotations

from repro.attacks.adversary import DeliveryObservation


class IntersectionAttacker:
    """Runs the set-intersection analysis over delivery observations."""

    def __init__(self) -> None:
        self._candidates: set[int] | None = None
        self.observations = 0
        #: candidate-set size after each observation (shrinkage curve)
        self.history: list[int] = []

    def observe(self, obs: DeliveryObservation) -> set[int]:
        """Fold one recipient-set observation into the intersection."""
        self.observations += 1
        if self._candidates is None:
            self._candidates = set(obs.recipients)
        else:
            self._candidates &= obs.recipients
        self.history.append(len(self._candidates))
        return set(self._candidates)

    def observe_all(self, observations: list[DeliveryObservation]) -> set[int]:
        """Fold a whole observation log; returns the final candidates."""
        for obs in observations:
            self.observe(obs)
        return self.candidates()

    def candidates(self) -> set[int]:
        """Current candidate set (empty before any observation)."""
        return set(self._candidates) if self._candidates else set()

    def identified(self, true_destination: int) -> bool:
        """Attack success: candidate set collapsed to exactly {D}."""
        return self._candidates == {true_destination}

    def defeated(self, true_destination: int) -> bool:
        """Defense success: D fell out of the attacker's candidates."""
        return self._candidates is not None and true_destination not in self._candidates
