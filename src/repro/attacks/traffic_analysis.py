"""Traffic analysis: route tracing and node-compromise interception (§3.1).

Two adversaries:

* :class:`RouteTracer` — watches the routes packets take and measures
  how predictable the *next* route is from history (the statistical
  pattern §3.1 says ALERT denies).
* :class:`InterceptionAttacker` — "the route anonymity due to random
  relay node selection in ALERT prevents an intruder from intercepting
  packets or compromising vulnerable nodes en route": the attacker
  compromises the j historically busiest relays and we measure what
  fraction of subsequent packets it still catches.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.analysis.anonymity import mean_pairwise_overlap, route_overlap


class RouteTracer:
    """Accumulates observed routes of one S-D flow."""

    def __init__(self) -> None:
        self.routes: list[list[int]] = []

    def observe(self, route: Sequence[int]) -> None:
        """Record one observed route (ordered node ids)."""
        self.routes.append(list(route))

    def consecutive_overlap(self) -> float:
        """Mean Jaccard overlap of consecutive routes (1 = fixed path)."""
        return mean_pairwise_overlap(self.routes)

    def prediction_accuracy(self) -> float:
        """How well the previous route predicts the next one.

        For each consecutive pair, the fraction of the next route's
        relays already seen in the previous route, averaged.  GPSR ≈ 1;
        ALERT much lower.
        """
        if len(self.routes) < 2:
            return float("nan")
        scores = []
        for prev, nxt in zip(self.routes, self.routes[1:]):
            if not nxt:
                continue
            prev_set = set(prev)
            scores.append(sum(1 for n in nxt if n in prev_set) / len(nxt))
        return sum(scores) / len(scores) if scores else float("nan")

    def route_diversity(self) -> int:
        """Number of distinct nodes observed across all routes."""
        return len({n for r in self.routes for n in r})


class InterceptionAttacker:
    """Node-compromise interception.

    Parameters
    ----------
    budget:
        Number of relay nodes the attacker can compromise.
    """

    def __init__(self, budget: int = 3) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget

    def choose_targets(
        self, observed_routes: Sequence[Sequence[int]], exclude: Sequence[int] = ()
    ) -> list[int]:
        """Compromise the historically busiest relays (ends excluded)."""
        counts: Counter = Counter()
        banned = set(exclude)
        for route in observed_routes:
            interior = route[1:-1] if len(route) > 2 else []
            for nid in set(interior):
                if nid not in banned:
                    counts[nid] += 1
        return [nid for nid, _ in counts.most_common(self.budget)]

    def interception_rate(
        self,
        observed_routes: Sequence[Sequence[int]],
        future_routes: Sequence[Sequence[int]],
        exclude: Sequence[int] = (),
    ) -> float:
        """Fraction of future packets crossing a compromised node."""
        targets = set(self.choose_targets(observed_routes, exclude))
        if not future_routes:
            return float("nan")
        hit = sum(1 for r in future_routes if targets & set(r[1:-1]))
        return hit / len(future_routes)


def dos_robustness(
    routes_before: Sequence[Sequence[int]],
    routes_after: Sequence[Sequence[int]],
) -> float:
    """Route change after an (attempted) interception: 1 - overlap.

    High values mean the protocol re-randomised its paths, so the
    compromised relays stop seeing the flow (§3.1's DoS argument).
    """
    if not routes_before or not routes_after:
        return float("nan")
    return 1.0 - route_overlap(
        [n for r in routes_before for n in r],
        [n for r in routes_after for n in r],
    )
