"""Client-facing location service API.

``LocationService`` wires the replicated servers to the network: nodes
register at start-up, push position updates periodically when
*destination update* is enabled, and any node can perform a signed
lookup of another node's (position, public key).

Lookup requests are genuinely signed and verified (the paper's §2.2
protocol: "it will sign the request containing B's identity using its
own identity"), exercising the crypto substrate; the per-lookup crypto
cost is tallied but — matching the paper's latency metric, which starts
the clock when the data packet leaves the source — not charged to
packet latency.
"""

from __future__ import annotations

from itertools import repeat

import numpy as np

from repro.crypto.cipher import PublicKeyCipher
from repro.crypto.cost_model import CryptoCostModel
from repro.geometry.primitives import Point
from repro.location.server import LocationRecord, LocationServer
from repro.net.network import Network
from repro.sim.process import PeriodicTask


class LookupError_(RuntimeError):
    """No live server could answer a location lookup."""


class LocationService:
    """The replicated location service attached to one network.

    Parameters
    ----------
    network:
        The network whose nodes this service covers.
    n_servers:
        Number of replicated servers; the paper's §4.3 overhead
        analysis wants ``N_L ≈ sqrt(N)``, the default.
    updates_enabled:
        The *destination update* toggle.  When ``True`` every node
        pushes its position each ``update_interval``; when ``False``
        only the initial registration exists, so lookups return stale
        positions — exactly the "without destination update" condition
        of Figs. 14b/15b/16b.
    update_interval:
        Push period in seconds when updates are enabled.
    cost_model:
        Where signature/verify costs of lookups are tallied.
    """

    def __init__(
        self,
        network: Network,
        n_servers: int | None = None,
        updates_enabled: bool = True,
        update_interval: float = 2.0,
        cost_model: CryptoCostModel | None = None,
    ) -> None:
        n = network.n_nodes
        if n_servers is None:
            n_servers = max(int(round(n**0.5)), 1)
        if n_servers < 1:
            raise ValueError("need at least one location server")
        self.network = network
        self.updates_enabled = updates_enabled
        self.update_interval = update_interval
        self.cost_model = cost_model if cost_model is not None else CryptoCostModel()
        self.servers = [LocationServer(i) for i in range(n_servers)]
        self._update_task: PeriodicTask | None = None
        self.lookups = 0
        self.failed_lookups = 0
        # Write-round columns that never change between rounds (node
        # ids, long-term public keys), gathered lazily on first use.
        self._ids: list[int] | None = None
        self._publics: list | None = None

        self._register_all()
        if updates_enabled:
            self._update_task = PeriodicTask(
                network.engine,
                update_interval,
                self._push_updates,
                start_offset=update_interval,
            )

    # ------------------------------------------------------------------
    def _home_server(self, node_id: int) -> LocationServer:
        return self.servers[node_id % len(self.servers)]

    def _register_all(self) -> None:
        self._write_round()

    def _push_updates(self) -> None:
        self._write_round()

    def _write_round(self) -> None:
        """Write every node's current record to every server.

        One update round is ``N`` records fanned out to ``N_L``
        replicas — ``N·N_L`` stores, the service's dominant cost at
        large ``N``.  Positions for the whole population come from one
        :func:`positions_at` pass: models are visited in node order, so
        every trajectory extension draws exactly what per-node
        ``position(now)`` calls would (and nodes whose trajectory
        already covers ``now`` draw nothing, same as the warm-cache
        scalar path).  Each node's position cache is primed with its
        fix, leaving per-node state as the scalar loop would.  Each
        server then adopts the round dict by reference in one
        :meth:`LocationServer.adopt_round` call (copy-on-write against
        individual stores); resulting tables and write/replication
        counter totals are identical to per-record stores.
        """
        now = self.network.engine.now
        nodes = self.network.nodes
        pos = np.empty((len(nodes), 2), dtype=np.float64)
        self.network.batch_positions(now, out=pos)
        # Positional map-construction keeps the per-node work (one
        # Point, one record, one cache prime) inside C-level iteration;
        # key generation never rotates, so the public-key column is
        # gathered once and reused every round.
        ids = self._ids
        if ids is None:
            ids = self._ids = [node.id for node in nodes]
            self._publics = [node.keypair.public for node in nodes]
        pts = list(map(Point, pos[:, 0].tolist(), pos[:, 1].tolist()))
        for node, p in zip(nodes, pts):
            node.prime_position(now, p)
        records: dict[int, LocationRecord] = dict(
            zip(
                ids,
                map(LocationRecord, ids, pts, self._publics, repeat(now)),
            )
        )
        n_servers = len(self.servers)
        n = len(records)
        # Node i homes at server i % N_L, so server s owns ceil/floor
        # counts of the contiguous id range.
        base, extra = divmod(n, n_servers)
        for server in self.servers:
            home_count = base + (1 if server.id < extra else 0)
            # The round covers every node, so replicas adopt the one
            # dict by reference (copy-on-write on any individual
            # store) instead of merging N records into each of N_L
            # tables — the service's former dominant cost at large N.
            server.adopt_round(records, home_count)

    # ------------------------------------------------------------------
    def lookup(self, requester_id: int, target_id: int) -> LocationRecord:
        """Signed lookup of ``target_id``'s record.

        Tries servers starting from the requester's home replica and
        fails over to peers, so individual server failures are
        transparent ("each node can be in contact with all location
        servers in range").

        Raises
        ------
        LookupError_
            If no live server holds the record.
        """
        requester = self.network.nodes[requester_id]
        request = f"lookup:{target_id}".encode()
        signer = PublicKeyCipher.for_owner(requester.keypair)
        signature = signer.sign(request)
        self.cost_model.sign()

        order = [self._home_server(requester_id)] + [
            s for s in self.servers if s.id != self._home_server(requester_id).id
        ]
        for server in order:
            if not server.alive:
                continue
            # Server verifies the request signature before answering.
            verifier = PublicKeyCipher.for_encryption(requester.keypair.public)
            self.cost_model.verify()
            if not verifier.verify(request, signature):
                continue  # pragma: no cover - signature always valid here
            record = server.fetch(target_id)
            if record is not None:
                self.lookups += 1
                return record
        self.failed_lookups += 1
        raise LookupError_(f"no live server knows node {target_id}")

    def stop(self) -> None:
        """Stop the periodic update task (end of a run)."""
        if self._update_task is not None:
            self._update_task.stop()
            self._update_task = None

    # ------------------------------------------------------------------
    def message_overhead(self, duration: float, data_frequency: float) -> float:
        """§4.3 overhead ratio for this deployment.

        ``(N_L(N_L-1)f T + N f T) / (N F T)`` with ``f`` the update
        frequency, ``F`` the regular-communication frequency.
        """
        n = self.network.n_nodes
        n_l = len(self.servers)
        f = (1.0 / self.update_interval) if self.updates_enabled else 0.0
        big_f = data_frequency
        if big_f <= 0:
            raise ValueError("data_frequency must be positive")
        numerator = n_l * (n_l - 1) * f * duration + n * f * duration
        return numerator / (n * big_f * duration)
