"""Location servers: replicated stores of (position, public key).

Each node registers with a *home* server; writes replicate to every
peer ("for high reliability, the location servers can replicate data
between each other"), so any live server can answer any lookup and
individual servers are allowed to fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import PublicKey
from repro.geometry.primitives import Point


@dataclass
class LocationRecord:
    """One node's registered state."""

    node_id: int
    position: Point
    public_key: PublicKey
    updated_at: float


class LocationServer:
    """A single location server.

    Parameters
    ----------
    server_id:
        Identifier within the service.
    """

    def __init__(self, server_id: int) -> None:
        self.id = server_id
        self._records: dict[int, LocationRecord] = {}
        #: Whether ``_records`` is a full-round dict shared (by
        #: reference) with peer servers via :meth:`adopt_round`; any
        #: individual write copies before mutating.
        self._round_shared = False
        self._alive = True
        #: write/read counters for the §4.3 overhead accounting
        self.writes = 0
        self.reads = 0
        self.replications = 0

    @property
    def alive(self) -> bool:
        """Whether the server is currently reachable."""
        return self._alive

    def fail(self) -> None:
        """Take the server down (it keeps its data)."""
        self._alive = False

    def restore(self) -> None:
        """Bring the server back up."""
        self._alive = True

    def store(self, record: LocationRecord, replicated: bool = False) -> None:
        """Write a record (no-op while failed).

        ``replicated`` marks writes arriving from a peer rather than a
        node, counted separately for the overhead model.
        """
        if not self._alive:
            return
        if self._round_shared:
            # Copy-on-write: the table is shared with peers that
            # adopted the same round — diverge privately.
            self._records = dict(self._records)
            self._round_shared = False
        self._records[record.node_id] = record
        if replicated:
            self.replications += 1
        else:
            self.writes += 1

    def store_many(
        self, records: dict[int, LocationRecord], home_count: int
    ) -> None:
        """Bulk write one update round's records (no-op while failed).

        Equivalent to calling :meth:`store` for every record — same
        resulting table, same counter totals — but the table merge is a
        single C-level ``dict.update``.  ``home_count`` of the records
        are writes from this server's own nodes; the rest arrived via
        peer replication.  The aliveness check holds for the whole
        batch because a round is one simulation event — no server can
        fail or restore in the middle of it.
        """
        if not self._alive:
            return
        self._records.update(records)
        self.writes += home_count
        self.replications += len(records) - home_count

    def adopt_round(
        self, records: dict[int, LocationRecord], home_count: int
    ) -> None:
        """Adopt a full update round *by reference* (no-op while failed).

        ``records`` must cover the entire node population — exactly
        what :meth:`LocationService._write_round` produces — so for a
        server whose table is itself a (possibly older) full round,
        ``update`` and wholesale replacement yield the same table, and
        the round dict can be shared across all ``N_L`` replicas
        instead of merged ``N`` records at a time into each.  A server
        that diverged through individual :meth:`store` calls falls back
        to the merge (extra keys must survive, exactly as
        :meth:`store_many` would keep them); :meth:`store` on a shared
        table copies before writing.  Resulting tables, reads, and
        write/replication counters are identical to :meth:`store_many`.
        """
        if not self._alive:
            return
        if self._round_shared or not self._records:
            self._records = records
            self._round_shared = True
        else:
            self._records.update(records)
        self.writes += home_count
        self.replications += len(records) - home_count

    def fetch(self, node_id: int) -> LocationRecord | None:
        """Read a record; ``None`` if absent or the server is down."""
        if not self._alive:
            return None
        self.reads += 1
        return self._records.get(node_id)

    def known_nodes(self) -> list[int]:
        """Ids of all registered nodes (diagnostic)."""
        return sorted(self._records)
