"""Secure location service (paper §2.2).

"We assume that the public key and location of the destination of a
data transmission can be known by others, but its real identity
requires protection."  The service provides each node's (position,
public key) on a signed request, with replicated servers that are
allowed to fail, and a *destination update* toggle that drives the
with/without-update comparisons of Figs. 14b, 15b, and 16b.
"""

from repro.location.server import LocationRecord, LocationServer
from repro.location.service import LocationService, LookupError_

__all__ = ["LocationServer", "LocationRecord", "LocationService", "LookupError_"]
