"""ALERT configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.zones import Direction


@dataclass(frozen=True)
class AlertConfig:
    """Tunables of the ALERT protocol.

    Parameters
    ----------
    k:
        Destination k-anonymity target: the expected number of nodes
        in the destination zone ``Z_D`` (paper §2.3).
    h_override:
        Explicit number of partitions ``H``; when ``None`` it is
        derived as ``H = log2(rho*G/k)`` from the network population.
    first_direction:
        Direction of the canonical first split used to compute ``Z_D``
        (§2.4 assumes vertical first).
    segment_ttl:
        Hop budget of each GPSR segment between two random forwarders.
    max_rf_rounds:
        Safety bound on partition rounds per packet (≥ H; voids can
        force a forwarder to re-partition).
    notify_and_go:
        Enable the §2.6 source-anonymity mechanism.
    notify_t, notify_t0:
        The "notify and go" back-off window: everyone transmits at a
        random time in ``[t, t + t0]``.
    cover_size_bytes:
        Size of neighbors' cover packets ("only several bytes of
        random data").
    intersection_defense:
        Enable the §3.3 two-step partial multicast in ``Z_D``.
    multicast_m:
        Number of first-step recipients ``m`` (out of the ~k zone
        members) when the intersection defense is on.
    enable_confirmation:
        Destination returns a confirmation routed back to the source
        zone ``Z_S``; the source resends unconfirmed packets.
    confirmation_timeout:
        Source resend timer, seconds.
    max_resends:
        Resend attempts before giving up.
    charge_session_setup:
        Charge the one-time public-key wrap of the session key to the
        first packet's latency (the paper's steady-state latency
        figures do not include it; see EXPERIMENTS.md).
    zone_flood:
        Zone members rebroadcast once inside ``Z_D`` so zones larger
        than one radio hop are still covered.
    promiscuous_destination:
        The destination listens promiscuously and accepts any
        overheard frame carrying its pseudonym ``P_D`` (that is what
        the cleartext ``P_D`` field of Fig. 4 is for).  Radio frames
        are physically receivable by every node in range of the
        transmitter, so this costs nothing on the air; it is what lets
        ALERT out-deliver GPSR when the destination has drifted from
        its last known position (Fig. 16b).
    crypto_mode:
        ``"real"`` runs the functional ciphers; ``"cost-only"``
        replaces ciphertext bytes with wire-length-exact
        :class:`~repro.crypto.cipher.ShadowCiphertext` placeholders
        while still charging the cost model and drawing the same
        random numbers, so end-to-end metrics are bit-identical
        (guarded by a parity test suite) and large sweeps skip the
        byte crunching.
    """

    k: int = 6
    h_override: int | None = None
    first_direction: Direction = Direction.VERTICAL
    segment_ttl: int = 10
    max_rf_rounds: int = 12
    notify_and_go: bool = False
    notify_t: float = 0.002
    notify_t0: float = 0.02
    cover_size_bytes: int = 16
    intersection_defense: bool = False
    multicast_m: int = 3
    enable_confirmation: bool = False
    confirmation_timeout: float = 1.0
    max_resends: int = 2
    charge_session_setup: bool = False
    zone_flood: bool = True
    promiscuous_destination: bool = True
    crypto_mode: str = "real"

    def __post_init__(self) -> None:
        if self.crypto_mode not in ("real", "cost-only"):
            raise ValueError(
                f"crypto_mode must be 'real' or 'cost-only', "
                f"got {self.crypto_mode!r}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.h_override is not None and self.h_override < 1:
            raise ValueError(f"h_override must be >= 1, got {self.h_override}")
        if self.multicast_m < 1:
            raise ValueError(f"multicast_m must be >= 1, got {self.multicast_m}")
        if self.notify_t < 0 or self.notify_t0 <= 0:
            raise ValueError("notify window must be non-negative / positive")
