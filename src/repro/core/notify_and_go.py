"""The "notify and go" source-anonymity mechanism (paper §2.6).

Phase 1 ("notify"): the source piggybacks a transmission notification
on its periodic update, announcing back-off parameters ``t`` and
``t0``.  Phase 2 ("go"): the source *and every neighbor* transmit at
independent uniform times in ``[t, t + t0]`` — the neighbors sending a
few bytes of random cover data — so an eavesdropper sees η + 1
simultaneous senders and cannot tell which one originated real data
(η-anonymity, η = number of neighbors).

Cover packets carry ``TTL = 0`` encrypted under the next relay's
public key; receivers that cannot find a valid TTL attempt one
public-key decryption and drop the packet, so covers never propagate.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.crypto.cipher import PublicKeyCipher
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind


class NotifyAndGo:
    """Coordinates one notify-and-go round per outgoing source packet.

    Parameters
    ----------
    network:
        The network (covers are physical broadcasts).
    rng:
        Random stream for back-off draws and cover payloads.
    cost:
        Crypto cost model — TTL encryption/decryption attempts are
        tallied here.
    metrics:
        Cover-traffic counters land in ``metrics.counters``.
    t, t0:
        The back-off window ``[t, t + t0]``.
    cover_size_bytes:
        Size of each neighbor's cover packet.
    cost_only:
        Emit wire-length-exact shadow TTL ciphertexts instead of real
        RSA (see ``AlertConfig.crypto_mode``); back-off and payload
        draws are unchanged so the random stream stays aligned.
    """

    def __init__(
        self,
        network: Network,
        rng: np.random.Generator,
        cost: CryptoCostModel,
        metrics: MetricsCollector,
        t: float = 0.002,
        t0: float = 0.02,
        cover_size_bytes: int = 16,
        cost_only: bool = False,
    ) -> None:
        self.network = network
        self.engine = network.engine
        self._rng = rng
        self.cost = cost
        self.metrics = metrics
        self.t = t
        self.t0 = t0
        self.cover_size_bytes = cover_size_bytes
        self.cost_only = cost_only

    def anonymity_set_size(self, source: Node) -> int:
        """η + 1: the source plus its live neighbors."""
        return 1 + len(source.neighbors.live_entries(self.engine.now))

    def run(self, source: Node, send_real: Callable[[], None]) -> float:
        """Launch one round: covers from neighbors, real send from S.

        ``send_real`` is invoked after the source's own back-off.
        Returns the source's drawn back-off (useful to tests).
        """
        now = self.engine.now
        entries = source.neighbors.live_entries(now)
        self.metrics.note("notify_rounds")
        self.metrics.note("notify_anonymity_set", len(entries) + 1)

        # Neighbors' cover packets at independent back-offs.
        for entry in entries:
            backoff = float(self._rng.uniform(self.t, self.t + self.t0))
            neighbor_id = entry.link_address
            self.engine.schedule_in(
                backoff,
                lambda nid=neighbor_id: self._send_cover(nid),
                category="control",
                cancellable=False,
            )

        # The source's real packet.
        source_backoff = float(self._rng.uniform(self.t, self.t + self.t0))
        self.engine.schedule_in(
            source_backoff, send_real, category="data", cancellable=False
        )
        return source_backoff

    def _send_cover(self, node_id: int) -> None:
        """One neighbor emits a cover packet with an encrypted TTL=0."""
        node = self.network.nodes[node_id]
        # .astype/.tobytes consumes the stream exactly like the former
        # per-byte int() loop (same integers() call), without the loop.
        payload = (
            self._rng.integers(0, 256, size=self.cover_size_bytes)
            .astype(np.uint8)
            .tobytes()
        )
        # Encrypt TTL=0 under the node's *own* key: no other node will
        # ever find a valid TTL inside, which is the point.
        cipher = PublicKeyCipher.for_encryption(node.keypair.public)
        if self.cost_only:
            ttl_enc: bytes = cipher.encrypt_cost_only(b"\x00")
        else:
            ttl_enc = cipher.encrypt(b"\x00")
        self.cost.pubkey_encrypt()
        packet = Packet(
            kind=PacketKind.COVER,
            src=node_id,
            dst=-1,
            size_bytes=self.cover_size_bytes + len(ttl_enc),
            payload=payload,
            created_at=self.engine.now,
        )
        packet.header = ttl_enc
        self.metrics.note("cover_tx")
        self.network.local_broadcast(node_id, packet)

    def handle_cover(self, node: Node, packet: Packet) -> None:
        """Receiver-side cover processing: try to decrypt TTL, drop.

        "Every node that receives a packet but cannot find a valid TTL
        will try to decrypt the TTL using its own private key" — one
        public-key decryption attempt per receiver, then the packet
        dies.
        """
        self.cost.pubkey_decrypt()
        self.metrics.note("cover_rx_decrypt_attempts")
        # The decrypt fails (wrong key) or yields TTL=0 — drop either way.
