"""ALERT's universal packet format (paper §2.5, Fig. 4).

"Because of the randomized routing nature in ALERT, we have a universal
format for RREQ/RREP/NAK."  The header mirrors Fig. 4:

==============  =====================================================
Field           Meaning
==============  =====================================================
``ptype``       RREQ / RREP / NAK
``p_src``       pseudonym of the source (``P_S``)
``p_dst``       pseudonym of the destination (``P_D``)
``zone_src``    ``L_{Z_S}``: the H-th partitioned *source* zone,
                encrypted under the destination's public key (bytes)
``zone_dst``    ``L_{Z_D}``: the destination zone position (cleartext
                — every forwarder needs it)
``td``          the currently selected temporary destination
``h``           divisions performed so far
``h_max``       maximum allowed divisions (``H``)
``wrapped_key`` ``K_s^S`` encrypted under ``K_pub^D`` (session setup)
``ttl_enc``     ``(TTL)_{K_pub^RN}``: TTL encrypted for the next relay
                (source-anonymity cover traffic, §2.6)
``bitmap_enc``  ``(Bitmap)_{K_pub^D}``: altered-bit map for the §3.3
                intersection defense
``direction``   the bit flipped by each RF giving the next partition
                direction
==============  =====================================================

Routing state that an implementation needs but the paper leaves
implicit (current GPSR-segment mode, retry counters) lives in the
mutable ``SegmentState`` companion rather than the header, mirroring
the header-vs-per-hop-state split of a real stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.zones import Direction
from repro.geometry.primitives import Point, Rect


class AlertPacketType(Enum):
    """The three roles of the universal packet format."""

    RREQ = "rreq"
    RREP = "rrep"
    NAK = "nak"


@dataclass
class SegmentState:
    """Per-GPSR-segment mutable routing state (not part of Fig. 4)."""

    ttl: int = 10
    prev_pos: Point | None = None
    retries: int = 0


@dataclass
class AlertHeader:
    """The universal ALERT header (Fig. 4)."""

    ptype: AlertPacketType
    p_src: bytes
    p_dst: bytes
    zone_dst: Rect
    zone_src_enc: bytes
    td: Point | None
    h: int
    h_max: int
    direction: Direction
    wrapped_key: bytes = b""
    ttl_enc: bytes = b""
    #: chain of encrypted bitmaps; each zone transmission may scramble
    #: the payload once more, so the destination undoes them in reverse
    bitmap_chain: list[bytes] = field(default_factory=list)
    #: session identifier (pseudonymous; lets endpoints pair RREQ/RREP)
    session: int = 0
    #: sequence number within the session (drives NAK loss detection)
    seq: int = 0
    segment: SegmentState = field(default_factory=SegmentState)
    #: rounds of partitioning performed (safety bound bookkeeping)
    rf_rounds: int = 0
    #: 0 = en route, 1 = zone broadcast/multicast, 2 = zone rebroadcast
    zone_stage: int = 0
    #: set once the RF-round budget is exhausted (last-ditch GPSR run)
    fallback: bool = False

    def flip_direction(self) -> None:
        """Flip the partition-direction bit (done by each RF, §2.5)."""
        self.direction = self.direction.flip()

    def clone(self) -> "AlertHeader":
        """Deep-enough copy for broadcast branches.

        :meth:`repro.net.packet.Packet.fork` calls this for every
        broadcast branch, so each receiver can mutate routing state
        (zone stage, bitmap chain, segment) without affecting siblings.
        The mutable ``bitmap_chain`` list and ``segment`` record are
        copied; everything else is immutable and shared.  Built via
        ``__dict__`` copy rather than the 18-keyword constructor: every
        broadcast branch pays this, making it one of the hottest
        allocation sites of a run.
        """
        new = object.__new__(AlertHeader)
        d = new.__dict__
        d.update(self.__dict__)
        d["bitmap_chain"] = list(self.bitmap_chain)
        seg = object.__new__(SegmentState)
        seg.__dict__.update(self.segment.__dict__)
        d["segment"] = seg
        return new


def header_wire_size(header: AlertHeader, data_bytes: int) -> int:
    """Approximate on-wire size of an ALERT packet in bytes.

    Field sizes follow Fig. 4's layout: two 20-byte SHA-1 pseudonyms,
    two zone positions (4 floats each), one TD coordinate, counters,
    plus the variable-length encrypted fields.
    """
    fixed = (
        20 + 20  # P_S, P_D
        + 32 + 0  # L_ZD (cleartext rect: 4 × 8-byte floats)
        + 16  # TD coordinate
        + 2  # h, H
        + 1  # direction bit + type tag
    )
    return (
        fixed
        + len(header.zone_src_enc)
        + len(header.wrapped_key)
        + len(header.ttl_enc)
        + sum(len(b) for b in header.bitmap_chain)
        + data_bytes
    )
