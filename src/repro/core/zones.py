"""Hierarchical zone partitioning (paper §2.3-2.4).

Three pieces of machinery:

* :func:`required_partitions` — ``H = log2(rho * G / k)``: how many
  alternating splits shrink the field to a zone expected to hold ``k``
  nodes.
* :func:`destination_zone` — the paper's §2.4 recursion: starting from
  the whole field, split ``H`` times in alternating directions, always
  descending into the half containing the destination.  Every node
  computes the same ``Z_D`` from (field, H, D's position), so the
  source can embed it in the packet.
* :func:`separate_from_zone` — the per-forwarder step of §2.3: split
  the zone (alternating, starting from the packet's direction bit)
  until the forwarder and ``Z_D`` fall into different halves; the half
  containing ``Z_D`` is where the next temporary destination is drawn.

Cut-avoidance invariant
-----------------------
A split of an enclosing zone can slice ``Z_D`` in two when the zone's
extent equals ``Z_D``'s extent along the split dimension.  Because both
the zone and ``Z_D`` are axis-aligned binary cells of the same field,
at most one direction can cut ``Z_D`` at any step (both cutting would
force zone == Z_D, impossible while the forwarder is outside ``Z_D``),
so flipping the direction always yields a clean split.
:func:`separate_from_zone` applies that flip and still terminates,
since every iteration strictly halves the zone around the forwarder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.geometry.primitives import Point, Rect


class Direction(Enum):
    """Split direction.

    ``HORIZONTAL`` splits with a horizontal line (halves the height);
    ``VERTICAL`` splits with a vertical line (halves the width).
    """

    HORIZONTAL = 0
    VERTICAL = 1

    def flip(self) -> "Direction":
        """The other direction."""
        return Direction.VERTICAL if self is Direction.HORIZONTAL else Direction.HORIZONTAL

    @property
    def bit(self) -> int:
        """Wire encoding for the packet's direction bit."""
        return self.value

    @classmethod
    def from_bit(cls, bit: int) -> "Direction":
        """Decode the packet's direction bit."""
        return cls(bit & 1)


def required_partitions(n_nodes: int, k: int) -> int:
    """``H = log2(rho*G/k)`` rounded to the nearest integer, min 1.

    ``rho * G`` is the expected node population of the whole field,
    i.e., ``n_nodes``; the paper's example uses N=200, k≈6 → H=5.
    """
    if n_nodes <= 0 or k <= 0:
        raise ValueError(f"n_nodes and k must be positive, got {n_nodes}, {k}")
    if k >= n_nodes:
        return 1
    return max(int(round(math.log2(n_nodes / k))), 1)


def expected_zone_population(n_nodes: int, h: int) -> float:
    """Expected node count of an ``h``-times-partitioned zone."""
    if h < 0:
        raise ValueError(f"h must be >= 0, got {h}")
    return n_nodes / (2.0**h)


def side_lengths(h: int, l_first: float, l_second: float) -> tuple[float, float]:
    """Side lengths of the ``h``-th partitioned zone (paper eqs. 1-2).

    ``l_first`` is the side halved by the *first* split (and every odd
    split thereafter); it shrinks by ``2^ceil(h/2)``.  ``l_second``
    shrinks by ``2^floor(h/2)``.  With the paper's convention (eq. 1-2)
    ``l_first = l_B`` and ``l_second = l_A``.
    """
    if h < 0:
        raise ValueError(f"h must be >= 0, got {h}")
    return l_first / (2.0 ** math.ceil(h / 2)), l_second / (2.0 ** math.floor(h / 2))


def split(zone: Rect, direction: Direction) -> tuple[Rect, Rect]:
    """Split ``zone`` in two along ``direction``."""
    if direction is Direction.HORIZONTAL:
        return zone.split_horizontal()
    return zone.split_vertical()


def split_cuts(zone: Rect, direction: Direction, target: Rect) -> bool:
    """Whether splitting ``zone`` along ``direction`` slices ``target``."""
    if direction is Direction.VERTICAL:
        mid = (zone.x0 + zone.x1) / 2.0
        return target.x0 < mid < target.x1
    mid = (zone.y0 + zone.y1) / 2.0
    return target.y0 < mid < target.y1


def _half_containing_point(halves: tuple[Rect, Rect], p: Point) -> Rect:
    """The half whose half-open extent contains ``p``.

    Points exactly on the shared midline belong to the second half
    (half-open convention); points on the field's far edges are pulled
    into the nearest half.
    """
    a, b = halves
    if a.contains(p):
        return a
    return b


def _half_containing_rect(halves: tuple[Rect, Rect], r: Rect) -> Rect:
    """The half that entirely contains ``r`` (caller guarantees one does)."""
    a, b = halves
    if a.contains_rect(r):
        return a
    if b.contains_rect(r):
        return b
    raise ValueError(f"{r!r} is cut by the split of {a!r}/{b!r}")


def destination_zone(
    bounds: Rect,
    destination: Point,
    h: int,
    first: Direction = Direction.VERTICAL,
) -> Rect:
    """The ``h``-th partitioned zone containing ``destination`` (§2.4).

    Deterministic given (bounds, destination, h, first direction), so
    source and forwarders agree on ``Z_D`` without communication.

    Example (paper §2.4): field (0,0)-(4,2), H=3, destination
    (0.5, 0.8), vertical first → zone (0,0)-(1,1).
    """
    if h < 0:
        raise ValueError(f"h must be >= 0, got {h}")
    if not bounds.contains_closed(destination):
        raise ValueError(f"{destination!r} outside field {bounds!r}")
    zone = bounds
    direction = first
    for _ in range(h):
        halves = split(zone, direction)
        zone = _half_containing_point(halves, _clip_into(zone, destination))
        direction = direction.flip()
    return zone


def _clip_into(zone: Rect, p: Point) -> Point:
    """Nudge a point on the far (open) edges just inside the zone.

    Keeps the half-open containment test meaningful for destinations
    sitting exactly on the field boundary.
    """
    x = p.x
    y = p.y
    if x >= zone.x1:
        x = math.nextafter(zone.x1, zone.x0)
    if y >= zone.y1:
        y = math.nextafter(zone.y1, zone.y0)
    return Point(x, y)


@dataclass(frozen=True)
class SeparationResult:
    """Outcome of a forwarder's partition step.

    Attributes
    ----------
    next_zone:
        The half containing ``Z_D`` — the "other zone" where the next
        temporary destination is drawn.
    partitions:
        Number of splits performed this step (σ, the paper's
        *closeness* between the forwarder and the destination zone).
    next_direction:
        Direction the *next* forwarder should start with (the flipped
        bit of the packet format, §2.5 item 4).
    """

    next_zone: Rect
    partitions: int
    next_direction: Direction


def separate_from_zone(
    zone: Rect,
    self_position: Point,
    zd: Rect,
    first: Direction,
    max_iterations: int = 64,
) -> SeparationResult:
    """Split ``zone`` until ``self_position`` and ``zd`` are separated.

    Implements §2.3's per-forwarder loop with the cut-avoidance flip
    (see module docstring).  Raises if the caller is already inside
    ``Z_D`` (the caller should broadcast instead of partitioning).
    """
    # A forwarder on Z_D's closed boundary counts as inside: splitting
    # can bounce such a point between the zones adjacent to Z_D forever,
    # and the caller's correct move is to broadcast, not partition.
    if zd.contains_closed(self_position):
        raise ValueError("forwarder is inside the destination zone")
    if not zone.contains(self_position) and not zone.contains_closed(self_position):
        raise ValueError(f"forwarder {self_position!r} outside zone {zone!r}")
    if not zone.contains_rect(zd):
        raise ValueError(f"Z_D {zd!r} not inside zone {zone!r}")

    self_pos = _clip_into(zone, self_position)
    direction = first
    partitions = 0
    for _ in range(max_iterations):
        if split_cuts(zone, direction, zd):
            direction = direction.flip()
        halves = split(zone, direction)
        half_self = _half_containing_point(halves, self_pos)
        half_zd = _half_containing_rect(halves, zd)
        partitions += 1
        direction = direction.flip()
        if half_self is not half_zd:
            return SeparationResult(
                next_zone=half_zd,
                partitions=partitions,
                next_direction=direction,
            )
        zone = half_self
    raise RuntimeError(
        "separation did not converge — forwarder effectively inside Z_D"
    )
