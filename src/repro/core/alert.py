"""The ALERT routing protocol (paper §2).

Per-packet lifecycle:

1. **Source** — establishes (or reuses) a session with the destination:
   resolves D's position and public key through the location service,
   derives the destination zone ``Z_D`` (§2.4), generates a symmetric
   session key wrapped under D's public key, encrypts its own H-th
   partitioned source zone ``Z_S`` under D's public key (the return
   address of §2.5), and symmetrically encrypts the payload.  With
   "notify and go" enabled, the real send is deferred by a random
   back-off while neighbors emit cover traffic (§2.6).
2. **Random forwarders** — each RF partitions the field (alternating
   directions, starting from the packet's direction bit) until it is
   separated from ``Z_D``, draws a random temporary destination in the
   half containing ``Z_D``, and GPSR-greedy-routes toward it; the relay
   that finds no neighbor closer to the TD is the next RF (§2.3).
3. **Destination zone** — the first receiver inside ``Z_D`` broadcasts
   to the zone (k-anonymity), or, with the intersection defense on,
   multicasts to ``m`` holders who release the packet on the next
   packet's arrival (§3.3).
4. **Destination** — recognises its pseudonym, unwraps the session key
   (once), undoes bitmap scrambling, decrypts, optionally confirms with
   an RREP routed back to ``Z_S``, and NAKs sequence gaps.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AlertConfig
from repro.core.intersection_defense import (
    HolderState,
    scramble_payload,
    unscramble_payload,
)
from repro.core.notify_and_go import NotifyAndGo
from repro.core.packet_format import (
    AlertHeader,
    AlertPacketType,
    SegmentState,
    header_wire_size,
)
from repro.core.zones import destination_zone, required_partitions, separate_from_zone
from repro.crypto.cipher import IntegrityError, PublicKeyCipher, SymmetricCipher
from repro.crypto.keys import SymmetricKey
from repro.geometry.primitives import Point, Rect
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.routing.base import RoutingProtocol
from repro.routing.gpsr import next_hop_greedy_batched
from repro.sim.process import Timer


#: Neighbor-table size at which ``_maybe_rebroadcast``'s suppression
#: check runs over the cached column arrays instead of the per-entry
#: scalar loop (same cutover idea as ``next_hop_greedy_batched``).
_COLUMNS_MIN = 64


def _rect_to_bytes(r: Rect) -> bytes:
    import struct

    return struct.pack(">dddd", r.x0, r.y0, r.x1, r.y1)


def _rect_from_bytes(blob: bytes) -> Rect:
    import struct

    x0, y0, x1, y1 = struct.unpack(">dddd", blob)
    return Rect(x0, y0, x1, y1)


@dataclass
class SessionState:
    """Source-side state of one S→D transmission session."""

    session_id: int
    src: int
    dst: int
    key: SymmetricKey
    wrapped_key: bytes
    zone_src_enc: bytes
    zd: Rect
    dest_position: Point
    dest_public: object
    seq: int = 0
    established: bool = False
    #: sha256 of sent plaintexts, for end-to-end integrity verification
    sent_digests: dict[int, bytes] = field(default_factory=dict)
    #: metrics flow id per sequence number (confirmation-timeout feedback)
    flow_ids: dict[int, int] = field(default_factory=dict)
    #: retained ciphertexts for resend/NAK recovery
    retained: dict[int, bytes] = field(default_factory=dict)
    confirm_timers: dict[int, Timer] = field(default_factory=dict)
    resends: dict[int, int] = field(default_factory=dict)


class AlertProtocol(RoutingProtocol):
    """ALERT attached to a network (see module docstring)."""

    name = "ALERT"

    def __init__(
        self,
        network,
        location,
        metrics=None,
        cost_model=None,
        config: AlertConfig | None = None,
    ) -> None:
        super().__init__(network, location, metrics, cost_model)
        self.config = config if config is not None else AlertConfig()
        self.h = (
            self.config.h_override
            if self.config.h_override is not None
            else required_partitions(network.n_nodes, self.config.k)
        )
        self._rng = self.engine.rng.stream("alert")
        #: cost-only crypto: shadow ciphertexts, real cost charges,
        #: identical RNG draws (see AlertConfig.crypto_mode)
        self._cost_only = self.config.crypto_mode == "cost-only"
        self._sessions: dict[tuple[int, int], SessionState] = {}
        self._next_session = 1
        #: destination-side unwrapped session keys, by session id
        self._dest_keys: dict[int, SymmetricKey] = {}
        #: destination-side highest seq seen per session (NAK detection)
        self._dest_seq: dict[int, int] = {}
        #: destination-side (session, seq) pairs already processed
        self._dest_received: set[tuple[int, int]] = set()
        #: intersection-defense holder state per session
        self._holders: dict[int, HolderState] = {}
        #: processed (session, seq, node, ptype, stage) dedup set
        self._seen: set[tuple] = set()
        #: optional hook: (time, observable zone recipient ids) per
        #: zone delivery — consumed by the intersection-attack harness.
        #: The observable set is the *addressed* recipients (the m-set
        #: under the defense; all in-range zone members without it).
        self.zone_delivery_observer = None
        self.notify = NotifyAndGo(
            network,
            self._rng,
            self.cost,
            self.metrics,
            t=self.config.notify_t,
            t0=self.config.notify_t0,
            cover_size_bytes=self.config.cover_size_bytes,
            cost_only=self._cost_only,
        )

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def _get_session(self, src: int, dst: int) -> SessionState:
        sess = self._sessions.get((src, dst))
        if sess is not None:
            return sess
        record = self.lookup_destination(src, dst)
        key = SymmetricKey.generate(self._rng)
        dest_cipher = PublicKeyCipher.for_encryption(record.public_key)
        if self._cost_only:
            wrapped: bytes = dest_cipher.encrypt_cost_only(key.material)
        else:
            wrapped = dest_cipher.encrypt(key.material)
        self.cost.pubkey_encrypt()

        bounds = self.network.field.bounds
        src_pos = self.network.nodes[src].position(self.engine.now)
        zone_src = destination_zone(
            bounds, src_pos, self.h, self.config.first_direction
        )
        zone_src_bytes = _rect_to_bytes(zone_src)
        if self._cost_only:
            zone_src_enc: bytes = dest_cipher.encrypt_cost_only(zone_src_bytes)
        else:
            zone_src_enc = dest_cipher.encrypt(zone_src_bytes)
        self.cost.pubkey_encrypt()

        zd = destination_zone(
            bounds, record.position, self.h, self.config.first_direction
        )
        sess = SessionState(
            session_id=self._next_session,
            src=src,
            dst=dst,
            key=key,
            wrapped_key=wrapped,
            zone_src_enc=zone_src_enc,
            zd=zd,
            dest_position=record.position,
            dest_public=record.public_key,
        )
        self._next_session += 1
        self._sessions[(src, dst)] = sess
        return sess

    # ------------------------------------------------------------------
    # origination
    # ------------------------------------------------------------------
    def _initiate(self, packet: Packet) -> None:
        sess = self._get_session(packet.src, packet.dst)
        if self.location.updates_enabled:
            record = self.lookup_destination(packet.src, packet.dst)
            sess.dest_position = record.position
            sess.zd = destination_zone(
                self.network.field.bounds,
                record.position,
                self.h,
                self.config.first_direction,
            )

        seq = sess.seq
        sess.seq += 1
        now = self.engine.now
        data_size = packet.size_bytes
        # .astype/.tobytes consumes the stream exactly like the former
        # per-byte int() loop (same integers() call), without the loop.
        plaintext = (
            self._rng.integers(0, 256, size=data_size)
            .astype(np.uint8)
            .tobytes()
        )
        sess.sent_digests[seq] = hashlib.sha256(plaintext).digest()
        if packet.flow_id is not None:
            sess.flow_ids[seq] = packet.flow_id
        nonce = seq.to_bytes(8, "big")
        cipher = SymmetricCipher(sess.key)
        if self._cost_only:
            ciphertext: bytes = cipher.encrypt_cost_only(plaintext, nonce)
        else:
            ciphertext = cipher.encrypt(plaintext, nonce)
        sess.retained[seq] = ciphertext

        delay = self.cost.symmetric_encrypt()
        if not sess.established and self.config.charge_session_setup:
            # The two public-key ops of session setup were tallied in
            # _get_session; charge their time to this first packet.
            delay += self.cost.pubkey_encrypt_s * 2
        sess.established = True

        header = AlertHeader(
            ptype=AlertPacketType.RREQ,
            p_src=self.network.nodes[packet.src].pseudonym_at(now),
            p_dst=self.network.nodes[packet.dst].pseudonym_at(now),
            zone_dst=sess.zd,
            zone_src_enc=sess.zone_src_enc,
            td=None,
            h=0,
            h_max=self.h,
            direction=self.config.first_direction,
            wrapped_key=sess.wrapped_key,
            session=sess.session_id,
            seq=seq,
        )
        packet.header = header
        packet.payload = ciphertext
        packet.size_bytes = header_wire_size(header, len(ciphertext))

        source = self.network.nodes[packet.src]
        if self.config.enable_confirmation:
            self._arm_confirmation(sess, seq, data_size)

        def start() -> None:
            self._continue_from(source, packet)

        if self.config.notify_and_go:
            self._after_crypto(
                packet, delay, lambda: self.notify.run(source, start)
            )
        else:
            self._after_crypto(packet, delay, start)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, node: Node, packet: Packet) -> None:
        if packet.kind is PacketKind.COVER:
            self.notify.handle_cover(node, packet)
            return
        if not isinstance(packet.header, AlertHeader):
            return
        self._on_packet(node, packet)

    def _on_packet(self, node: Node, packet: Packet) -> None:
        hdr: AlertHeader = packet.header
        # Dedup key: a node may handle the same packet again in a later
        # RF round / with a different TD (routes legitimately revisit
        # nodes after re-partitioning), but never twice for the same
        # (stage, round, TD) — that would be a genuine loop or a
        # duplicate broadcast fork.
        td = hdr.td
        key = (
            hdr.session,
            hdr.seq,
            node.id,
            # The enum's value: 1:1 with the member, and its str hash is
            # cached on the singleton, unlike Enum.__hash__ (pure Python,
            # re-run per lookup — this key is built for every reception).
            # ``_value_`` skips the DynamicClassAttribute descriptor.
            hdr.ptype._value_,
            hdr.zone_stage,
            hdr.rf_rounds,
            (round(td.x, 6), round(td.y, 6)) if td is not None else None,
        )
        seen = self._seen
        before = len(seen)
        seen.add(key)
        if len(seen) == before:  # single hash for the probe + insert
            return
        hdr.segment.retries = 0  # fresh hop, fresh link-retry budget

        now = self.engine.now
        pos = node.position(now)
        in_zone = hdr.zone_dst.contains(pos)

        if self._is_final_recipient(node, packet):
            self._deliver_at_recipient(node, packet)
            # Inside Z_D the destination keeps behaving like any other
            # zone member (forwarding toward the zone center, holding,
            # re-broadcasting) — terminating the delivery chain early
            # would make D observably different from its cover set.
            # Outside the zone (overheard en route) it just listens.
            if not in_zone:
                return

        if in_zone:
            self._zone_phase(node, packet)
        elif hdr.zone_stage == 0:
            self._segment_forward(node, packet)
        # Out-of-zone receivers of a zone broadcast drop the packet:
        # only the destination (handled above) may react to it.

    # ------------------------------------------------------------------
    # RF / segment machinery
    # ------------------------------------------------------------------
    def _continue_from(self, node: Node, packet: Packet) -> None:
        """Entry point at the source (or a responder) after crypto."""
        hdr: AlertHeader = packet.header
        pos = node.position(self.engine.now)
        self._mark_participant(packet, node.id)
        if hdr.zone_dst.contains(pos):
            self._zone_phase(node, packet)
        else:
            self._rf_partition(node, packet)

    def _rf_partition(self, node: Node, packet: Packet) -> None:
        """This node acts as a random forwarder: partition, pick a TD."""
        hdr: AlertHeader = packet.header
        pos = node.position(self.engine.now)

        if hdr.rf_rounds >= self.config.max_rf_rounds:
            # Void-induced stall: make one last GPSR run straight at
            # the zone (still only zone-granular information).
            if hdr.fallback:
                self._dropped(packet, "rf-rounds-exhausted")
                return
            hdr.fallback = True
            hdr.td = hdr.zone_dst.center
            hdr.segment = SegmentState(ttl=self.config.segment_ttl)
            self._segment_forward(node, packet)
            return

        try:
            result = separate_from_zone(
                self.network.field.bounds, pos, hdr.zone_dst, hdr.direction
            )
        except ValueError:
            # Numerically on the zone border: treat as in-zone.
            self._zone_phase(node, packet)
            return

        hdr.h += result.partitions
        hdr.direction = result.next_direction
        hdr.rf_rounds += 1
        hdr.td = result.next_zone.random_point(self._rng)
        hdr.segment = SegmentState(ttl=self.config.segment_ttl)
        if packet.flow_id is not None:
            self.metrics.record_partitions(packet.flow_id, result.partitions)
        self._segment_forward(node, packet)

    def _segment_forward(self, node: Node, packet: Packet) -> None:
        """One greedy GPSR step toward the current temporary destination."""
        hdr: AlertHeader = packet.header
        if hdr.td is None:
            self._rf_partition(node, packet)
            return
        now = self.engine.now
        pos = node.position(now)
        choice = next_hop_greedy_batched(pos, hdr.td, node.neighbors, now)

        if choice is None:
            if hdr.fallback:
                self._dropped(packet, "void-no-progress")
                return
            # No neighbor closer to the TD: this node is the next RF.
            if packet.flow_id is not None:
                self.metrics.record_rf(packet.flow_id, node.id)
            self._rf_partition(node, packet)
            return

        if hdr.segment.ttl <= 0:
            # Segment budget exhausted: promote to RF where we stand.
            if packet.flow_id is not None:
                self.metrics.record_rf(packet.flow_id, node.id)
            self._rf_partition(node, packet)
            return

        hdr.segment.ttl -= 1
        hdr.segment.prev_pos = pos
        self._mark_participant(packet, node.id)
        # Record the transmitting node before the overhear fork copies
        # the trace, so an overheard delivery reports the full path.
        packet.record_visit(node.id)
        self.network.unicast(
            node.id,
            choice.link_address,
            packet,
            on_failed=lambda reason, c=choice: self._on_link_failure(
                node, c, packet, reason
            ),
            flow=packet.flow_id,
            overhear_fork=self._overhear_fork(packet),
        )

    def _overhear_fork(self, packet: Packet) -> tuple[int, Packet] | None:
        """Promiscuous destination reception (see AlertConfig).

        A unicast frame is physically audible to every node in range of
        the transmitter; the destination recognises its cleartext
        pseudonym ``P_D`` and accepts the packet.  The true-id handle
        below is the simulator's stand-in for that radio truth — the
        protocol never routes on it.
        """
        if not self.config.promiscuous_destination or packet.dst < 0:
            return None
        return packet.dst, packet.fork()

    def _on_link_failure(self, node: Node, choice, packet: Packet, reason: str) -> None:
        hdr: AlertHeader = packet.header
        self._report_link_failure(packet, reason)
        node.neighbors.remove(choice.link_address)
        hdr.segment.retries += 1
        hdr.segment.ttl += 1  # failed hop made no progress
        if hdr.segment.retries > 3:
            self._dropped(packet, f"link-failure:{reason}")
            return
        self._segment_forward(node, packet)

    # ------------------------------------------------------------------
    # destination-zone phase
    # ------------------------------------------------------------------
    def _zone_phase(self, node: Node, packet: Packet) -> None:
        hdr: AlertHeader = packet.header
        if hdr.zone_stage == 0:
            if self.config.intersection_defense and hdr.ptype is AlertPacketType.RREQ:
                self._zone_multicast_defended(node, packet)
            else:
                self._zone_broadcast(node, packet)
        elif hdr.zone_stage == 1 and not self.config.intersection_defense:
            self._maybe_rebroadcast(node, packet)
        # stage 2 (rebroadcasts / holder releases) terminates here.

    def _zone_broadcast(self, node: Node, packet: Packet) -> None:
        """Plain §2.3 delivery: broadcast to the k nodes of Z_D.

        If this node's radio disk does not cover the whole zone (it
        typically entered at an edge), it first relays greedily toward
        the zone center — still ordinary in-zone forwarding — until one
        broadcast reaches every member.
        """
        hdr: AlertHeader = packet.header
        now = self.engine.now
        pos = node.position(now)
        rng_m = self.network.radio.range_m
        covers = all(
            pos.distance_to(c) <= rng_m for c in hdr.zone_dst.corners()
        )
        if not covers:
            center = hdr.zone_dst.center
            choice = next_hop_greedy_batched(
                pos, center, node.neighbors, now
            )
            if choice is not None and hdr.zone_dst.contains(choice.position):
                hdr.td = center
                self._mark_participant(packet, node.id)
                self.network.unicast(
                    node.id,
                    choice.link_address,
                    packet,
                    on_failed=lambda reason, c=choice: self._on_link_failure(
                        node, c, packet, reason
                    ),
                    flow=packet.flow_id,
                )
                return
        hdr.zone_stage = 1
        self._mark_participant(packet, node.id)
        members = self.network.nodes_in_rect(hdr.zone_dst)
        self.metrics.note("zone_population", len(members))
        self.metrics.note("zone_broadcasts")
        receivers = self.network.local_broadcast(
            node.id, packet, flow=packet.flow_id
        )
        if (
            self.zone_delivery_observer is not None
            and hdr.ptype is AlertPacketType.RREQ
        ):
            member_set = set(members)
            # The transmitting node visibly holds the packet too.
            observable = [node.id] + [r for r in receivers if r in member_set]
            self.zone_delivery_observer(self.engine.now, observable)

    def _maybe_rebroadcast(self, node: Node, packet: Packet) -> None:
        """Second-hop zone coverage: the member nearest the zone center
        rebroadcasts once (local decision from its own neighbor table)."""
        if not self.config.zone_flood:
            return
        hdr: AlertHeader = packet.header
        now = self.engine.now
        pos = node.position(now)
        center = hdr.zone_dst.center
        my_d = pos.sq_distance_to(center)
        threshold = my_d - 1e-9
        table = node.neighbors
        if len(table) >= _COLUMNS_MIN:
            # Vectorised existence test over the cached column arrays:
            # the same liveness cutoff, half-open containment, and
            # two-term squared-distance float64 arithmetic as the
            # scalar early-return loop, so the decision is identical.
            rows, xs, ys, seen = table.columns()
            zd = hdr.zone_dst
            closer = xs - center.x
            dy = ys - center.y
            closer *= closer
            dy *= dy
            closer += dy
            hit = closer < threshold
            hit &= seen >= now - table.ttl
            hit &= (xs >= zd.x0) & (xs < zd.x1)
            hit &= (ys >= zd.y0) & (ys < zd.y1)
            if hit.any():
                return  # someone more central will do it
        else:
            contains = hdr.zone_dst.contains
            for e in table.live_entries(now):
                ep = e.position
                if contains(ep) and ep.sq_distance_to(center) < threshold:
                    return  # someone more central will do it
        branch = packet.fork()
        branch.header.zone_stage = 2
        self._mark_participant(packet, node.id)
        self.metrics.note("zone_rebroadcasts")
        self.network.local_broadcast(node.id, branch, flow=packet.flow_id)

    def _zone_multicast_defended(self, node: Node, packet: Packet) -> None:
        """§3.3 two-step delivery (intersection-attack defense)."""
        hdr: AlertHeader = packet.header
        self._mark_participant(packet, node.id)
        state = self._holders.setdefault(hdr.session, HolderState())

        # Step 2 for the *previous* packet: holders release it now.
        # Releases are prepared (scramble draws come from the protocol
        # stream) and then transmitted as one fan-out: the MAC resolves
        # every holder's contention in a single batched call — RNG
        # streams are per-subsystem, so hoisting the MAC draws past the
        # scramble draws is stream-neutral and the trace bit-identical.
        releases: list[tuple[int, Packet, int | None]] = []
        for holder_id, held in state.holders:
            held_pkt: Packet = held  # type: ignore[assignment]
            release = held_pkt.fork()
            rhdr: AlertHeader = release.header
            rhdr.zone_stage = 2
            # Fresh scramble so the release is not byte-identical to
            # the original multicast.
            scrambled, bitmap = scramble_payload(
                release.payload,
                self._sessions_public_key(hdr.session),
                self._rng,
                cost_only=self._cost_only,
            )
            self.cost.pubkey_encrypt()
            release.payload = scrambled
            rhdr.bitmap_chain.append(bitmap)
            self.metrics.note("defense_releases")
            releases.append((holder_id, release, release.flow_id))
        if releases:
            self.network.broadcast_fanout(releases)
        state.holders = []

        # Step 1 for *this* packet: scramble and multicast to m members.
        members = [
            nid
            for nid in self.network.nodes_in_rect(hdr.zone_dst)
            if nid != node.id
        ]
        if not members:
            # Degenerate zone: fall back to plain broadcast.
            self._zone_broadcast(node, packet)
            return
        m = min(self.config.multicast_m, len(members))
        chosen = [
            int(i) for i in self._rng.choice(members, size=m, replace=False)
        ]
        scrambled, bitmap = scramble_payload(
            packet.payload,
            self._sessions_public_key(hdr.session),
            self._rng,
            cost_only=self._cost_only,
        )
        self.cost.pubkey_encrypt()
        packet.payload = scrambled
        hdr.bitmap_chain.append(bitmap)
        hdr.zone_stage = 1
        state.held_seq = hdr.seq
        self.metrics.note("defense_multicasts")
        self.metrics.note("defense_recipients", m)
        receivers = self.network.local_broadcast(
            node.id, packet, flow=packet.flow_id, restrict_to=chosen
        )
        if self.zone_delivery_observer is not None:
            # The multicasting RF plus its addressed recipients.
            self.zone_delivery_observer(
                self.engine.now, [node.id] + list(receivers)
            )
        # Receivers become holders of this packet.
        state.holders = [
            (rid, packet.fork()) for rid in receivers
        ]

    def _sessions_public_key(self, session_id: int):
        """The destination public key for a session (any side)."""
        for sess in self._sessions.values():
            if sess.session_id == session_id:
                return sess.dest_public
        raise KeyError(f"unknown session {session_id}")

    # ------------------------------------------------------------------
    # recipient side
    # ------------------------------------------------------------------
    def _is_final_recipient(self, node: Node, packet: Packet) -> bool:
        hdr: AlertHeader = packet.header
        return node.id == packet.dst and node.pseudonyms.was_ours(hdr.p_dst)

    def _deliver_at_recipient(self, node: Node, packet: Packet) -> None:
        hdr: AlertHeader = packet.header
        if hdr.ptype is AlertPacketType.RREQ:
            self._deliver_data(node, packet)
        elif hdr.ptype is AlertPacketType.RREP:
            self._on_confirmation(hdr)
        elif hdr.ptype is AlertPacketType.NAK:
            self._on_nak(hdr)

    def _deliver_data(self, node: Node, packet: Packet) -> None:
        hdr: AlertHeader = packet.header
        # The destination hears most packets several times (zone
        # broadcast, rebroadcast, overhearing); decrypt and process
        # each (session, seq) once and discard duplicates.
        dedup = (hdr.session, hdr.seq)
        if dedup in self._dest_received:
            return
        self._dest_received.add(dedup)
        key = self._dest_keys.get(hdr.session)
        if key is None and hdr.wrapped_key:
            material = PublicKeyCipher.for_owner(node.keypair).decrypt(
                hdr.wrapped_key
            )
            self.cost.pubkey_decrypt()
            key = SymmetricKey(material)
            self._dest_keys[hdr.session] = key

        payload = packet.payload
        if hdr.bitmap_chain:
            for blob in reversed(hdr.bitmap_chain):
                payload = unscramble_payload(payload, blob, node.keypair)
                self.cost.pubkey_decrypt()
        if key is not None:
            try:
                plaintext = SymmetricCipher(key).decrypt(payload)
                self.cost.symmetric_decrypt()
                sess = self._sessions.get((packet.src, packet.dst))
                if sess is not None:
                    digest = sess.sent_digests.get(hdr.seq)
                    if digest == hashlib.sha256(plaintext).digest():
                        self.metrics.note("payload_verified")
                    else:
                        self.metrics.note("payload_mismatch")
            except IntegrityError:
                self.metrics.note("payload_decrypt_failures")
        self._delivered(packet)

        # Sequence-gap detection → NAK (reliability machinery).
        if self.config.enable_confirmation:
            last = self._dest_seq.get(hdr.session, -1)
            if hdr.seq > last + 1:
                for missing in range(last + 1, hdr.seq):
                    self._send_control(
                        node, packet, AlertPacketType.NAK, missing
                    )
            self._dest_seq[hdr.session] = max(last, hdr.seq)
            self._send_control(node, packet, AlertPacketType.RREP, hdr.seq)

    # ------------------------------------------------------------------
    # reliability: confirmation / NAK / resend
    # ------------------------------------------------------------------
    def _arm_confirmation(self, sess: SessionState, seq: int, data_size: int) -> None:
        timer = Timer(
            self.engine,
            lambda: self._resend(sess, seq, data_size),
        )
        timer.start(self.config.confirmation_timeout)
        sess.confirm_timers[seq] = timer

    def _resend(self, sess: SessionState, seq: int, data_size: int) -> None:
        # The confirmation window closed (or a NAK arrived) without an
        # RREP for this seq — the closed-loop timeout signal.  Reported
        # before the resend-budget check so a given-up packet still
        # feeds back.
        self._report_timeout(sess.flow_ids.get(seq))
        count = sess.resends.get(seq, 0)
        if count >= self.config.max_resends:
            self.metrics.note("resend_given_up")
            return
        sess.resends[seq] = count + 1
        ciphertext = sess.retained.get(seq)
        if ciphertext is None:
            return
        self.metrics.note("resends")
        packet = Packet(
            kind=PacketKind.DATA,
            src=sess.src,
            dst=sess.dst,
            size_bytes=0,
            created_at=self.engine.now,
            flow_id=None,  # retransmission; original flow keeps its record
            payload=ciphertext,
        )
        now = self.engine.now
        header = AlertHeader(
            ptype=AlertPacketType.RREQ,
            p_src=self.network.nodes[sess.src].pseudonym_at(now),
            p_dst=self.network.nodes[sess.dst].pseudonym_at(now),
            zone_dst=sess.zd,
            zone_src_enc=sess.zone_src_enc,
            td=None,
            h=0,
            h_max=self.h,
            direction=self.config.first_direction,
            wrapped_key=sess.wrapped_key,
            session=sess.session_id,
            seq=seq,
        )
        packet.header = header
        packet.size_bytes = header_wire_size(header, len(ciphertext))
        self._arm_confirmation(sess, seq, packet.size_bytes)
        self._continue_from(self.network.nodes[sess.src], packet)

    def _send_control(
        self, node: Node, data_packet: Packet, ptype: AlertPacketType, seq: int
    ) -> None:
        """Send an RREP/NAK back toward the source zone Z_S."""
        hdr: AlertHeader = data_packet.header
        try:
            zone_src = _rect_from_bytes(
                PublicKeyCipher.for_owner(node.keypair).decrypt(hdr.zone_src_enc)
            )
            self.cost.pubkey_decrypt()
        except Exception:
            self.metrics.note("control_zone_decode_failures")
            return
        control = Packet(
            kind=PacketKind.DATA if ptype is AlertPacketType.RREP else PacketKind.NAK,
            src=node.id,
            dst=data_packet.src,
            size_bytes=128,
            created_at=self.engine.now,
        )
        control.header = AlertHeader(
            ptype=ptype,
            p_src=node.pseudonym_at(self.engine.now),
            p_dst=hdr.p_src,
            zone_dst=zone_src,
            zone_src_enc=b"",
            td=None,
            h=0,
            h_max=self.h,
            direction=self.config.first_direction,
            session=hdr.session,
            seq=seq,
        )
        self.metrics.note("rrep_sent" if ptype is AlertPacketType.RREP else "nak_sent")
        self._continue_from(node, control)

    def _on_confirmation(self, hdr: AlertHeader) -> None:
        """Source received an RREP: cancel the resend timer."""
        for sess in self._sessions.values():
            if sess.session_id == hdr.session:
                timer = sess.confirm_timers.pop(hdr.seq, None)
                if timer is not None:
                    timer.cancel()
                self.metrics.note("rrep_received")
                return

    def _on_nak(self, hdr: AlertHeader) -> None:
        """Source received a NAK: resend the missing sequence number."""
        for sess in self._sessions.values():
            if sess.session_id == hdr.session:
                self.metrics.note("nak_received")
                self._resend(sess, hdr.seq, 0)
                return
