"""ALERT — the paper's primary contribution.

The core package implements the Anonymous Location-based Efficient
Routing proTocol: hierarchical zone partitioning (§2.3-2.4), the
universal RREQ/RREP/NAK packet format (§2.5), the "notify and go"
source-anonymity mechanism (§2.6), the destination-zone k-anonymity
broadcast, and the two-step partial multicast that counters
intersection attacks (§3.3).
"""

from repro.core.alert import AlertProtocol
from repro.core.config import AlertConfig
from repro.core.packet_format import AlertHeader, AlertPacketType
from repro.core.zones import (
    Direction,
    SeparationResult,
    destination_zone,
    required_partitions,
    separate_from_zone,
    side_lengths,
)

__all__ = [
    "AlertProtocol",
    "AlertConfig",
    "AlertHeader",
    "AlertPacketType",
    "Direction",
    "SeparationResult",
    "destination_zone",
    "required_partitions",
    "separate_from_zone",
    "side_lengths",
]
