"""The two-step partial multicast against intersection attacks (§3.3).

Instead of broadcasting each packet to all ~k nodes of the destination
zone, the last random forwarder multicasts packet *i* to only ``m``
of them; those holders sit on it until packet *i + 1* arrives in the
zone, then one-hop-broadcast the held packet.  The destination is
therefore *not* in the observable recipient set of every packet, which
breaks the attacker's set-intersection over repeated observations.

To stop the attacker from matching the rebroadcast bytes against the
original transmission, the last forwarder flips a random set of
payload bits and attaches the flip positions encrypted under the
destination's public key (the ``Bitmap`` field); the destination
undoes the flips before decrypting.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.crypto.cipher import PublicKeyCipher, ShadowCiphertext
from repro.crypto.keys import KeyPair, PublicKey


def apply_bit_flips(payload: bytes, positions: list[int]) -> bytes:
    """Flip the given bit positions of ``payload`` (involution).

    A :class:`ShadowCiphertext` payload (cost-only runs) stays a
    shadow: its on-air bytes are flipped like any other ciphertext but
    the carried true plaintext rides along unchanged, exactly as the
    real destination recovers the real plaintext after unflipping.
    """
    out = bytearray(payload)
    n_bits = len(out) * 8
    for pos in positions:
        if not 0 <= pos < n_bits:
            raise ValueError(f"bit position {pos} out of range")
        out[pos // 8] ^= 1 << (pos % 8)
    if isinstance(payload, ShadowCiphertext):
        return ShadowCiphertext(bytes(out), payload.plaintext)
    return bytes(out)


def encode_bitmap(positions: list[int]) -> bytes:
    """Serialise flip positions (u32 big-endian each)."""
    return b"".join(struct.pack(">I", p) for p in positions)


def decode_bitmap(blob: bytes) -> list[int]:
    """Inverse of :func:`encode_bitmap`."""
    if len(blob) % 4:
        raise ValueError("bitmap blob not 4-byte aligned")
    return [struct.unpack(">I", blob[i : i + 4])[0] for i in range(0, len(blob), 4)]


def scramble_payload(
    payload: bytes,
    dest_public: PublicKey,
    rng: np.random.Generator,
    n_flips: int = 8,
    cost_only: bool = False,
) -> tuple[bytes, bytes]:
    """Flip ``n_flips`` random bits; return (scrambled, encrypted bitmap).

    ``cost_only`` replaces the RSA bitmap encryption with a
    wire-length-exact shadow; the flip positions are drawn from ``rng``
    either way so the random stream stays aligned with real-crypto runs.
    """
    if not payload:
        return payload, b""
    n_bits = len(payload) * 8
    positions = sorted(
        int(p) for p in rng.choice(n_bits, size=min(n_flips, n_bits), replace=False)
    )
    scrambled = apply_bit_flips(payload, positions)
    cipher = PublicKeyCipher.for_encryption(dest_public)
    if cost_only:
        bitmap_enc: bytes = cipher.encrypt_cost_only(encode_bitmap(positions))
    else:
        bitmap_enc = cipher.encrypt(encode_bitmap(positions))
    return scrambled, bitmap_enc


def unscramble_payload(
    payload: bytes, bitmap_enc: bytes, dest_keypair: KeyPair
) -> bytes:
    """Destination-side recovery: decrypt the bitmap, undo the flips."""
    if not bitmap_enc:
        return payload
    positions = decode_bitmap(
        PublicKeyCipher.for_owner(dest_keypair).decrypt(bitmap_enc)
    )
    return apply_bit_flips(payload, positions)


def coverage_percent(m: int, k: int, p_c: float) -> float:
    """§3.3's coverage formula: ``m/k + (1 - m/k) · p_c``.

    The fraction of the zone's ``k`` nodes that end up receiving the
    packet when ``m`` first-step holders reach a fraction ``p_c`` of
    the remaining nodes in the second step.
    """
    if k <= 0 or not 0 <= m <= k:
        raise ValueError(f"need 0 <= m <= k with k > 0, got m={m}, k={k}")
    if not 0.0 <= p_c <= 1.0:
        raise ValueError(f"p_c must be in [0, 1], got {p_c}")
    frac = m / k
    return frac + (1.0 - frac) * p_c


class HolderState:
    """Held packets of one session awaiting the next zone delivery."""

    def __init__(self) -> None:
        #: (holder node id, held packet) pairs from the previous delivery
        self.holders: list[tuple[int, object]] = []
        #: seq of the packet currently held
        self.held_seq: int | None = None
