"""Tests for named random streams."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "mac") == derive_seed(42, "mac")

    def test_name_sensitivity(self):
        assert derive_seed(42, "mac") != derive_seed(42, "mobility")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "mac") != derive_seed(2, "mac")

    def test_fits_63_bits(self):
        for s in range(20):
            assert 0 <= derive_seed(s, f"n{s}") < 2**63


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_different_names_different_streams(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is not reg.stream("b")

    def test_reproducible_across_registries(self):
        a = RngRegistry(9).stream("x").random(5)
        b = RngRegistry(9).stream("x").random(5)
        assert np.allclose(a, b)

    def test_streams_are_independent(self):
        """Drawing from one stream must not perturb another."""
        reg1 = RngRegistry(5)
        reg1.stream("a").random(100)  # burn stream a
        seq1 = reg1.stream("b").random(5)

        reg2 = RngRegistry(5)
        seq2 = reg2.stream("b").random(5)  # no burn of a
        assert np.allclose(seq1, seq2)

    def test_reset_restores_initial_state(self):
        reg = RngRegistry(3)
        first = reg.stream("m").random(4)
        reg.reset("m")
        again = reg.stream("m").random(4)
        assert np.allclose(first, again)

    def test_names_in_creation_order(self):
        reg = RngRegistry(0)
        reg.stream("z")
        reg.stream("a")
        assert reg.names() == ["z", "a"]
