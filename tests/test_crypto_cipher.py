"""Tests for the symmetric / public-key ciphers and hybrid scheme."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import (
    IntegrityError,
    PublicKeyCipher,
    SymmetricCipher,
    hybrid_decrypt,
    hybrid_encrypt,
)
from repro.crypto.keys import SymmetricKey, generate_keypair

RNG = np.random.default_rng(42)
KP = generate_keypair(RNG, bits=64)
KEY = SymmetricKey.generate(RNG)
NONCE = b"\x00" * 8


class TestSymmetricCipher:
    def test_roundtrip(self):
        c = SymmetricCipher(KEY)
        blob = c.encrypt(b"hello world", NONCE)
        assert c.decrypt(blob) == b"hello world"

    def test_ciphertext_differs_from_plaintext(self):
        c = SymmetricCipher(KEY)
        blob = c.encrypt(b"hello world", NONCE)
        assert b"hello world" not in blob

    def test_nonce_changes_ciphertext(self):
        c = SymmetricCipher(KEY)
        a = c.encrypt(b"data", b"\x00" * 8)
        b = c.encrypt(b"data", b"\x01" * 8)
        assert a != b

    def test_wrong_key_fails_auth(self):
        blob = SymmetricCipher(KEY).encrypt(b"secret", NONCE)
        other = SymmetricCipher(SymmetricKey(b"other-key-bytes!"))
        with pytest.raises(IntegrityError):
            other.decrypt(blob)

    def test_tampered_ciphertext_fails_auth(self):
        blob = bytearray(SymmetricCipher(KEY).encrypt(b"secret", NONCE))
        blob[10] ^= 0xFF
        with pytest.raises(IntegrityError):
            SymmetricCipher(KEY).decrypt(bytes(blob))

    def test_short_blob_rejected(self):
        with pytest.raises(IntegrityError):
            SymmetricCipher(KEY).decrypt(b"tiny")

    def test_bad_nonce_length_rejected(self):
        with pytest.raises(ValueError):
            SymmetricCipher(KEY).encrypt(b"x", b"short")

    def test_empty_plaintext(self):
        c = SymmetricCipher(KEY)
        assert c.decrypt(c.encrypt(b"", NONCE)) == b""

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=600), st.binary(min_size=8, max_size=8))
    def test_roundtrip_property(self, data, nonce):
        c = SymmetricCipher(KEY)
        assert c.decrypt(c.encrypt(data, nonce)) == data


class TestPublicKeyCipher:
    def test_roundtrip(self):
        enc = PublicKeyCipher.for_encryption(KP.public)
        dec = PublicKeyCipher.for_owner(KP)
        ct = enc.encrypt(b"wrapped session key material")
        assert dec.decrypt(ct) == b"wrapped session key material"

    def test_empty_plaintext_roundtrip(self):
        enc = PublicKeyCipher.for_encryption(KP.public)
        dec = PublicKeyCipher.for_owner(KP)
        assert dec.decrypt(enc.encrypt(b"")) == b""

    def test_decrypt_without_private_key_raises(self):
        enc = PublicKeyCipher.for_encryption(KP.public)
        with pytest.raises(PermissionError):
            enc.decrypt(enc.encrypt(b"data"))

    def test_wrong_key_decrypt_garbles_or_raises(self):
        other = generate_keypair(np.random.default_rng(9), bits=64)
        ct = PublicKeyCipher.for_encryption(KP.public).encrypt(b"data-data")
        dec = PublicKeyCipher.for_owner(other)
        try:
            assert dec.decrypt(ct) != b"data-data"
        except IntegrityError:
            pass  # also acceptable

    def test_misaligned_ciphertext_rejected(self):
        dec = PublicKeyCipher.for_owner(KP)
        with pytest.raises(IntegrityError):
            dec.decrypt(b"\x01\x02\x03")

    def test_sign_verify(self):
        signer = PublicKeyCipher.for_owner(KP)
        sig = signer.sign(b"message")
        assert PublicKeyCipher.for_encryption(KP.public).verify(b"message", sig)

    def test_verify_rejects_tampered_message(self):
        signer = PublicKeyCipher.for_owner(KP)
        sig = signer.sign(b"message")
        assert not signer.verify(b"messagX", sig)

    def test_verify_rejects_wrong_signer(self):
        other = generate_keypair(np.random.default_rng(11), bits=64)
        sig = PublicKeyCipher.for_owner(other).sign(b"m")
        assert not PublicKeyCipher.for_encryption(KP.public).verify(b"m", sig)

    def test_sign_without_private_raises(self):
        with pytest.raises(PermissionError):
            PublicKeyCipher.for_encryption(KP.public).sign(b"m")

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, data):
        enc = PublicKeyCipher.for_encryption(KP.public)
        dec = PublicKeyCipher.for_owner(KP)
        assert dec.decrypt(enc.encrypt(data)) == data


class TestHybrid:
    def test_hybrid_roundtrip(self):
        wrapped, ct = hybrid_encrypt(KP.public, KEY, b"payload bytes", NONCE)
        assert hybrid_decrypt(KP, wrapped, ct) == b"payload bytes"

    def test_hybrid_wrong_keypair_fails(self):
        other = generate_keypair(np.random.default_rng(13), bits=64)
        wrapped, ct = hybrid_encrypt(KP.public, KEY, b"payload", NONCE)
        with pytest.raises((IntegrityError, ValueError)):
            hybrid_decrypt(other, wrapped, ct)


class TestShadowCiphertext:
    """Cost-only placeholders must be wire-compatible with real output."""

    @given(pt=st.binary(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_symmetric_shadow_length_matches_real(self, pt):
        c = SymmetricCipher(KEY)
        assert len(c.encrypt_cost_only(pt, NONCE)) == len(c.encrypt(pt, NONCE))

    @given(pt=st.binary(max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_pubkey_shadow_length_matches_real(self, pt):
        c = PublicKeyCipher.for_encryption(KP.public)
        shadow = c.encrypt_cost_only(pt)
        assert len(shadow) == len(c.encrypt(pt))
        assert len(shadow) == c.ciphertext_length(len(pt))

    @given(pt=st.binary(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_shadow_decrypts_to_plaintext(self, pt):
        sym = SymmetricCipher(KEY)
        assert sym.decrypt(sym.encrypt_cost_only(pt, NONCE)) == pt
        pub = PublicKeyCipher.for_owner(KP)
        assert pub.decrypt(pub.encrypt_cost_only(pt)) == pt

    def test_shadow_survives_deepcopy(self):
        import copy

        from repro.crypto.cipher import ShadowCiphertext

        s = SymmetricCipher(KEY).encrypt_cost_only(b"secret", NONCE)
        clone = copy.deepcopy(s)
        assert isinstance(clone, ShadowCiphertext)
        assert bytes(clone) == bytes(s)
        assert clone.plaintext == b"secret"

    def test_shadow_bytes_are_zero_filled(self):
        s = SymmetricCipher(KEY).encrypt_cost_only(b"abc", NONCE)
        assert set(bytes(s)) == {0}

    def test_pubkey_shadow_decrypt_requires_private_key(self):
        enc_only = PublicKeyCipher.for_encryption(KP.public)
        shadow = enc_only.encrypt_cost_only(b"x")
        with pytest.raises(PermissionError):
            enc_only.decrypt(shadow)
