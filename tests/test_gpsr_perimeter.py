"""GPSR perimeter-mode test on a hand-crafted void topology.

The topology forces a local maximum at the source: both of S's
neighbors are farther from D than S is, so greedy fails immediately
and only the right-hand rule around the void can deliver.

Layout (range 250 m)::

    P1(0,240) --- Q(230,300)
       |               \
    S(0,0)            R(420,150) --- D(520,0)
       |
    P2(0,-240)

S-D distance 520 (no direct link); the only route is
S → P1 → Q → R → D, whose first hop is a pure perimeter step.
"""

from __future__ import annotations

import pytest

from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.geometry.field import Field
from repro.geometry.primitives import Point
from repro.location.service import LocationService
from repro.mobility.static import StaticPosition
from repro.net.network import Network
from repro.routing.gpsr import GpsrConfig, GpsrProtocol
from repro.sim.engine import Engine

POSITIONS = [
    Point(0, 300),      # 0: S
    Point(0, 540),      # 1: P1
    Point(0, 60),       # 2: P2
    Point(230, 600),    # 3: Q
    Point(420, 450),    # 4: R
    Point(520, 300),    # 5: D
]


def build_void_network():
    engine = Engine(seed=1)
    fld = Field(700, 700)

    def factory(node_id, rng):
        return StaticPosition(POSITIONS[node_id])

    net = Network(engine, fld, factory, len(POSITIONS))
    return net


class TestVoidTopology:
    def test_topology_is_a_void(self):
        """Sanity: S has neighbors, but none makes greedy progress."""
        net = build_void_network()
        s, d = POSITIONS[0], POSITIONS[5]
        assert s.distance_to(d) > net.radio.range_m
        nbrs = net.neighbors_of(0)
        assert sorted(nbrs) == [1, 2]
        for n in nbrs:
            assert POSITIONS[n].distance_to(d) > s.distance_to(d)

    def test_perimeter_mode_delivers(self):
        net = build_void_network()
        metrics = MetricsCollector()
        location = LocationService(net, cost_model=CryptoCostModel())
        proto = GpsrProtocol(net, location, metrics, config=GpsrConfig(ttl=10))
        net.start_hello()
        net.engine.run(until=0.5)
        proto.send_data(0, 5)
        net.engine.run(until=net.engine.now + 2.0)
        flow = metrics.flows()[0]
        assert flow.delivered, f"dropped: {flow.dropped_reason}"
        assert flow.path == [0, 1, 3, 4, 5]
        location.stop()

    def test_tight_ttl_kills_the_detour(self):
        net = build_void_network()
        metrics = MetricsCollector()
        location = LocationService(net, cost_model=CryptoCostModel())
        proto = GpsrProtocol(net, location, metrics, config=GpsrConfig(ttl=2))
        net.start_hello()
        net.engine.run(until=0.5)
        proto.send_data(0, 5)
        net.engine.run(until=net.engine.now + 2.0)
        assert not metrics.flows()[0].delivered
        location.stop()
