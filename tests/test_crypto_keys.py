"""Tests for key generation primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import (
    KeyPair,
    SymmetricKey,
    generate_keypair,
    is_probable_prime,
    random_prime,
)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 15, 91, 561, 7917):
            assert not is_probable_prime(c)

    def test_carmichael_numbers_rejected(self):
        for c in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(c)

    def test_large_known_prime(self):
        assert is_probable_prime(2**61 - 1)  # Mersenne prime

    def test_large_known_composite(self):
        assert not is_probable_prime((2**31 - 1) * (2**13 - 1))

    def test_random_prime_width(self):
        rng = np.random.default_rng(0)
        for bits in (8, 16, 32):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_random_prime_min_bits(self):
        with pytest.raises(ValueError):
            random_prime(2, np.random.default_rng(0))


class TestKeypair:
    def test_generates_valid_rsa(self):
        kp = generate_keypair(np.random.default_rng(1), bits=64)
        m = 123456789
        c = pow(m, kp.public.e, kp.public.n)
        assert pow(c, kp.private.d, kp.private.n) == m

    def test_distinct_keypairs(self):
        rng = np.random.default_rng(2)
        a = generate_keypair(rng)
        b = generate_keypair(rng)
        assert a.public.n != b.public.n

    def test_deterministic_given_rng(self):
        a = generate_keypair(np.random.default_rng(3))
        b = generate_keypair(np.random.default_rng(3))
        assert a.public.n == b.public.n

    def test_modulus_width(self):
        kp = generate_keypair(np.random.default_rng(4), bits=64)
        assert 60 <= kp.public.bits <= 64

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**30))
    def test_roundtrip_property(self, m):
        kp = generate_keypair(np.random.default_rng(5), bits=64)
        c = pow(m % kp.public.n, kp.public.e, kp.public.n)
        assert pow(c, kp.private.d, kp.private.n) == m % kp.public.n


class TestSymmetricKey:
    def test_empty_material_raises(self):
        with pytest.raises(ValueError):
            SymmetricKey(b"")

    def test_generate_length(self):
        k = SymmetricKey.generate(np.random.default_rng(0), length=24)
        assert len(k.material) == 24

    def test_int_roundtrip(self):
        k = SymmetricKey.generate(np.random.default_rng(1), length=16)
        assert SymmetricKey.from_int(k.as_int(), 16) == k

    def test_generate_deterministic(self):
        a = SymmetricKey.generate(np.random.default_rng(2))
        b = SymmetricKey.generate(np.random.default_rng(2))
        assert a == b
