"""Tests for the repro-sim command-line front end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, config_from_args, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        cfg = config_from_args(args)
        assert cfg.protocol == "ALERT"
        assert cfg.n_nodes == 200
        assert cfg.destination_update is True
        assert cfg.h_override == 5

    def test_protocol_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--protocol", "OSPF"])

    def test_no_destination_update_flag(self):
        args = build_parser().parse_args(["--no-destination-update"])
        assert config_from_args(args).destination_update is False

    def test_alert_options_mapped(self):
        args = build_parser().parse_args(
            ["--notify-and-go", "--intersection-defense"]
        )
        cfg = config_from_args(args)
        assert cfg.alert_options == {
            "notify_and_go": True,
            "intersection_defense": True,
        }

    def test_partitions_zero_derives_from_k(self):
        args = build_parser().parse_args(["--partitions", "0", "--k", "8"])
        cfg = config_from_args(args)
        assert cfg.h_override is None and cfg.k == 8

    def test_group_mobility_args(self):
        args = build_parser().parse_args(
            ["--mobility", "group", "--groups", "5", "--group-range", "200"]
        )
        cfg = config_from_args(args)
        assert cfg.mobility == "group"
        assert cfg.n_groups == 5 and cfg.group_range == 200.0


class TestMain:
    def test_runs_and_prints_metrics(self, capsys):
        code = main(
            [
                "--protocol", "GPSR", "--nodes", "30", "--duration", "6",
                "--pairs", "2", "--field", "600", "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivery rate" in out
        assert "hops per packet" in out

    def test_alert_prints_rf_metric(self, capsys):
        main(
            [
                "--nodes", "40", "--duration", "6", "--pairs", "2",
                "--field", "600", "--partitions", "4",
            ]
        )
        assert "random forwarders" in capsys.readouterr().out
