"""Tests for the radio model and the DCF-style MAC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.mac import Mac80211Dcf
from repro.net.radio import RadioModel


class TestRadioModel:
    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            RadioModel(range_m=0)
        with pytest.raises(ValueError):
            RadioModel(bandwidth_bps=0)

    def test_unit_disk(self):
        r = RadioModel(range_m=250)
        assert r.in_range(249.9)
        assert r.in_range(250.0)
        assert not r.in_range(250.1)

    def test_tx_time_scales_with_size(self):
        r = RadioModel()
        assert r.tx_time(1024) > r.tx_time(512) > r.tx_time(0) > 0

    def test_paper_scale_airtime(self):
        """512 B at 2 Mb/s ≈ 2.2 ms + preamble — millisecond scale."""
        r = RadioModel()
        t = r.tx_time(512)
        assert 0.002 < t < 0.004

    def test_propagation_delay(self):
        r = RadioModel()
        assert r.propagation_delay(300.0) == pytest.approx(1e-6, rel=1e-3)


class TestMacUnicast:
    def _mac(self, seed=0, **kw):
        return Mac80211Dcf(RadioModel(), np.random.default_rng(seed), **kw)

    def test_idle_channel_mostly_succeeds(self):
        mac = self._mac()
        ok = sum(mac.unicast(512, 100.0, 0.0).success for _ in range(200))
        assert ok >= 198  # only residual base_loss can fail all retries

    def test_delay_includes_airtime(self):
        mac = self._mac()
        out = mac.unicast(512, 100.0, 0.0)
        assert out.delay_s >= mac.radio.tx_time(512)

    def test_loaded_channel_slower_and_lossier(self):
        idle = self._mac(seed=1)
        busy = self._mac(seed=1)
        idle_out = [idle.unicast(512, 100.0, 0.0) for _ in range(300)]
        busy_out = [busy.unicast(512, 100.0, 30.0) for _ in range(300)]
        idle_attempts = sum(o.attempts for o in idle_out)
        busy_attempts = sum(o.attempts for o in busy_out)
        assert busy_attempts > idle_attempts
        assert sum(o.success for o in busy_out) < sum(o.success for o in idle_out)

    def test_retry_limit_bounds_attempts(self):
        mac = self._mac(max_retries=3)
        for _ in range(100):
            out = mac.unicast(512, 100.0, 1000.0)  # hopeless load
            assert out.attempts <= 4

    def test_counters_accumulate(self):
        mac = self._mac()
        for _ in range(10):
            mac.unicast(512, 100.0, 0.0)
        assert mac.attempts_total >= 10

    def test_failure_prob_capped(self):
        mac = self._mac()
        assert mac._attempt_failure_prob(1e9) <= 0.95

    def test_backoff_grows_with_attempt(self):
        mac = self._mac(seed=5)
        early = np.mean([mac._backoff(0) for _ in range(500)])
        late = np.mean([mac._backoff(5) for _ in range(500)])
        assert late > early


class TestMacDropListener:
    def _mac(self, seed=0, **kw):
        return Mac80211Dcf(RadioModel(), np.random.default_rng(seed), **kw)

    def test_fires_synchronously_with_drops_total(self):
        # The listener must observe the counter *already incremented*,
        # once per drop, in the exact order drops happen — the contract
        # FlowFeedback.mac_drop relies on.
        mac = self._mac(max_retries=2)
        seen = []
        mac.drop_listener = lambda flow: seen.append((flow, mac.drops_total))
        outcomes = [
            mac.unicast(512, 100.0, 1000.0, flow=i) for i in range(200)
        ]
        failures = [i for i, o in enumerate(outcomes) if not o.success]
        assert failures  # hopeless load: retry exhaustion happened
        assert mac.drops_total == len(failures)
        assert seen == [
            (flow, n) for n, flow in enumerate(failures, start=1)
        ]

    def test_control_frames_report_none_flow(self):
        mac = self._mac(max_retries=1)
        seen = []
        mac.drop_listener = seen.append
        while mac.drops_total == 0:
            mac.unicast(512, 100.0, 1000.0)  # no flow id (control)
        assert seen == [None] * mac.drops_total

    def test_listener_does_not_perturb_rng(self):
        # Wiring feedback must never change MAC outcomes: same seed,
        # with and without a listener, gives identical exchanges.
        plain = self._mac(seed=8, max_retries=2)
        hooked = self._mac(seed=8, max_retries=2)
        hooked.drop_listener = lambda flow: None
        a = [plain.unicast(512, 100.0, 30.0, flow=i) for i in range(300)]
        b = [hooked.unicast(512, 100.0, 30.0, flow=i) for i in range(300)]
        assert a == b
        assert plain.drops_total == hooked.drops_total


class TestMacBroadcast:
    def test_single_attempt(self):
        mac = Mac80211Dcf(RadioModel(), np.random.default_rng(2))
        out = mac.broadcast(512, 0.0)
        assert out.attempts == 1

    def test_idle_broadcast_mostly_succeeds(self):
        mac = Mac80211Dcf(RadioModel(), np.random.default_rng(3))
        ok = sum(mac.broadcast(512, 0.0).success for _ in range(300))
        assert ok >= 290

    def test_collision_counter(self):
        mac = Mac80211Dcf(RadioModel(), np.random.default_rng(4))
        for _ in range(200):
            mac.broadcast(512, 50.0)
        assert mac.collisions_total > 0
