"""Parity contracts for shared t=0 deployments.

The sweep executor hands workers precomputed position arrays
(:func:`repro.experiments.runner.initial_positions_for`) through shared
memory; a worker pre-seeds its network's spatial index with them
(``Network(initial_positions=...)``).  Both halves carry an exactness
contract: the replayed deployment must be bit-identical to the one the
network would derive itself, and pre-seeding must not perturb a single
observable of the run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import initial_positions_for, run_experiment
from tests.test_golden_trace import trace_summary

CONFIGS = {
    "rwp": ExperimentConfig(
        n_nodes=40, duration=5.0, n_pairs=2, field_size=800.0, seed=21
    ),
    "static": ExperimentConfig(
        n_nodes=40, duration=5.0, n_pairs=2, field_size=800.0, seed=22,
        speed=0.0,
    ),
    "group": ExperimentConfig(
        n_nodes=40, duration=5.0, n_pairs=2, field_size=800.0, seed=23,
        mobility="group", n_groups=4, group_range=150.0,
    ),
}


class TestInitialPositionsFor:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_matches_network_deployment(self, name):
        """Row i equals the network's own node i position at t=0."""
        cfg = CONFIGS[name]
        replayed = initial_positions_for(cfg)
        assert replayed.shape == (cfg.n_nodes, 2)
        result = run_experiment(cfg, max_packets_per_pair=0)
        for i in range(cfg.n_nodes):
            p = result.network.nodes[i].position(0.0)
            assert (replayed[i, 0], replayed[i, 1]) == (p.x, p.y)


class TestPreSeededNetwork:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_run_is_bit_identical(self, name):
        cfg = CONFIGS[name]
        plain = run_experiment(cfg)
        seeded = run_experiment(
            cfg, initial_positions=initial_positions_for(cfg)
        )
        assert trace_summary(seeded) == trace_summary(plain)
        assert seeded.event_counts == plain.event_counts

    def test_read_only_view_accepted(self):
        """Workers hand the network a read-only shared view; the
        network must copy, never write through."""
        cfg = CONFIGS["rwp"]
        pos = initial_positions_for(cfg)
        pos.flags.writeable = False
        seeded = run_experiment(cfg, initial_positions=pos)
        assert trace_summary(seeded) == trace_summary(run_experiment(cfg))

    def test_shape_mismatch_raises(self):
        cfg = CONFIGS["rwp"]
        with pytest.raises(ValueError, match="initial_positions"):
            run_experiment(
                cfg, initial_positions=np.zeros((cfg.n_nodes + 1, 2))
            )

    def test_stale_array_only_costs_a_rebuild(self):
        """A wrong (but well-shaped) deployment must not change any
        observable — the first snapshot adopts or rebuilds over it."""
        cfg = CONFIGS["rwp"]
        wrong = np.full((cfg.n_nodes, 2), cfg.field_size / 2.0)
        seeded = run_experiment(cfg, initial_positions=wrong)
        assert trace_summary(seeded) == trace_summary(run_experiment(cfg))
