"""Tests for hierarchical zone partitioning — the heart of ALERT."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.zones import (
    Direction,
    destination_zone,
    expected_zone_population,
    required_partitions,
    separate_from_zone,
    side_lengths,
    split,
    split_cuts,
)
from repro.geometry.primitives import Point, Rect

FIELD = Rect(0, 0, 1000, 1000)
pos = st.floats(0.0, 1000.0, allow_nan=False, allow_infinity=False)


class TestDirection:
    def test_flip(self):
        assert Direction.HORIZONTAL.flip() is Direction.VERTICAL
        assert Direction.VERTICAL.flip() is Direction.HORIZONTAL

    def test_bit_roundtrip(self):
        for d in Direction:
            assert Direction.from_bit(d.bit) is d


class TestRequiredPartitions:
    def test_paper_default(self):
        # N = 200, k ≈ 6 → H = 5 (paper §4).
        assert required_partitions(200, 6) == 5

    def test_k_ge_n_gives_one(self):
        assert required_partitions(10, 10) == 1
        assert required_partitions(10, 50) == 1

    def test_monotone_in_n(self):
        hs = [required_partitions(n, 6) for n in (50, 100, 200, 400)]
        assert hs == sorted(hs)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            required_partitions(0, 5)
        with pytest.raises(ValueError):
            required_partitions(5, 0)

    def test_expected_population(self):
        assert expected_zone_population(200, 5) == pytest.approx(6.25)
        with pytest.raises(ValueError):
            expected_zone_population(10, -1)


class TestSideLengths:
    def test_paper_equations(self):
        # Eqs (3)-(4): h=3 → first side /2^2, second /2^1.
        first, second = side_lengths(3, 1000.0, 800.0)
        assert first == pytest.approx(250.0)
        assert second == pytest.approx(400.0)

    def test_zero_partitions(self):
        assert side_lengths(0, 10.0, 20.0) == (10.0, 20.0)

    def test_area_halves_per_partition(self):
        for h in range(8):
            a, b = side_lengths(h, 1000.0, 1000.0)
            assert a * b == pytest.approx(1e6 / 2**h)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            side_lengths(-1, 1.0, 1.0)


class TestDestinationZone:
    def test_paper_example(self):
        """§2.4: field (0,0)-(4,2), H=3, D=(0.5,0.8) → zone (0,0)-(1,1)."""
        bounds = Rect(0, 0, 4, 2)
        zd = destination_zone(bounds, Point(0.5, 0.8), 3, Direction.VERTICAL)
        assert zd == Rect(0, 0, 1, 1)

    def test_zero_partitions_is_field(self):
        assert destination_zone(FIELD, Point(3, 3), 0) == FIELD

    def test_contains_destination(self):
        zd = destination_zone(FIELD, Point(123.4, 567.8), 5)
        assert zd.contains(Point(123.4, 567.8))

    def test_area(self):
        zd = destination_zone(FIELD, Point(10, 10), 5)
        assert zd.area == pytest.approx(FIELD.area / 32)

    def test_boundary_destination_ok(self):
        zd = destination_zone(FIELD, Point(1000.0, 1000.0), 4)
        assert zd.contains_closed(Point(1000.0, 1000.0))

    def test_outside_field_raises(self):
        with pytest.raises(ValueError):
            destination_zone(FIELD, Point(1001, 0), 3)

    def test_negative_h_raises(self):
        with pytest.raises(ValueError):
            destination_zone(FIELD, Point(1, 1), -1)

    def test_deterministic_everywhere(self):
        """Any two parties compute the same Z_D for the same D."""
        d = Point(717.3, 88.1)
        assert destination_zone(FIELD, d, 5) == destination_zone(FIELD, d, 5)

    def test_first_direction_matters(self):
        d = Point(600, 600)
        zv = destination_zone(FIELD, d, 1, Direction.VERTICAL)
        zh = destination_zone(FIELD, d, 1, Direction.HORIZONTAL)
        assert zv != zh
        assert zv.width == 500 and zh.height == 500

    @settings(max_examples=100, deadline=None)
    @given(pos, pos, st.integers(0, 10))
    def test_invariants_property(self, x, y, h):
        d = Point(x, y)
        zd = destination_zone(FIELD, d, h)
        # 1. contains the destination (closed form for boundary points)
        assert zd.contains_closed(d)
        # 2. area is exactly G / 2^h
        assert math.isclose(zd.area, FIELD.area / 2**h)
        # 3. nested in the field
        assert FIELD.contains_rect(zd)
        # 4. alternating splits: side lengths follow eqs (1)-(2)
        w_first, w_second = side_lengths(h, 1000.0, 1000.0)
        assert {round(zd.width, 6), round(zd.height, 6)} == {
            round(w_first, 6), round(w_second, 6),
        }


class TestSplitCuts:
    def test_detects_cut(self):
        zone = Rect(0, 0, 100, 100)
        target = Rect(40, 40, 60, 60)  # straddles both midlines
        assert split_cuts(zone, Direction.VERTICAL, target)
        assert split_cuts(zone, Direction.HORIZONTAL, target)

    def test_no_cut_when_contained_in_half(self):
        zone = Rect(0, 0, 100, 100)
        target = Rect(0, 0, 25, 25)
        assert not split_cuts(zone, Direction.VERTICAL, target)
        assert not split_cuts(zone, Direction.HORIZONTAL, target)

    def test_touching_midline_is_not_cut(self):
        zone = Rect(0, 0, 100, 100)
        target = Rect(0, 0, 50, 50)  # ends exactly at the midline
        assert not split_cuts(zone, Direction.VERTICAL, target)


class TestSeparateFromZone:
    def test_basic_separation(self):
        zd = destination_zone(FIELD, Point(900, 900), 5)
        res = separate_from_zone(FIELD, Point(50, 50), zd, Direction.VERTICAL)
        assert res.next_zone.contains_rect(zd)
        assert not res.next_zone.contains(Point(50, 50))
        assert res.partitions >= 1

    def test_inside_zd_raises(self):
        zd = destination_zone(FIELD, Point(10, 10), 4)
        with pytest.raises(ValueError):
            separate_from_zone(FIELD, Point(10, 10), zd, Direction.VERTICAL)

    def test_outside_zone_raises(self):
        zd = destination_zone(FIELD, Point(10, 10), 4)
        with pytest.raises(ValueError):
            separate_from_zone(
                Rect(0, 0, 100, 100), Point(500, 500), zd, Direction.VERTICAL
            )

    def test_zd_outside_zone_raises(self):
        zd = destination_zone(FIELD, Point(900, 900), 4)
        with pytest.raises(ValueError):
            separate_from_zone(
                Rect(0, 0, 100, 100), Point(50, 50), zd, Direction.VERTICAL
            )

    def test_close_pair_needs_more_partitions(self):
        zd = destination_zone(FIELD, Point(510, 510), 5)
        far = separate_from_zone(FIELD, Point(10, 10), zd, Direction.VERTICAL)
        near = separate_from_zone(FIELD, Point(400, 400), zd, Direction.VERTICAL)
        assert near.partitions >= far.partitions

    def test_direction_alternates(self):
        zd = destination_zone(FIELD, Point(900, 900), 5)
        res = separate_from_zone(FIELD, Point(50, 50), zd, Direction.VERTICAL)
        # One split, vertical → next direction must be horizontal.
        if res.partitions == 1:
            assert res.next_direction is Direction.HORIZONTAL

    @settings(max_examples=150, deadline=None)
    @given(pos, pos, pos, pos, st.integers(1, 8), st.sampled_from(list(Direction)))
    def test_separation_properties(self, sx, sy, dx, dy, h, first):
        """The paper's per-forwarder step never cuts Z_D, always
        separates, and the forwarder ends up outside the next zone."""
        s = Point(sx, sy)
        zd = destination_zone(FIELD, Point(dx, dy), h)
        if zd.contains_closed(s):
            with pytest.raises(ValueError):
                separate_from_zone(FIELD, s, zd, first)
            return
        res = separate_from_zone(FIELD, s, zd, first)
        assert res.next_zone.contains_rect(zd)           # Z_D intact
        assert not res.next_zone.contains(s)             # separated
        assert 1 <= res.partitions <= 64
        assert FIELD.contains_rect(res.next_zone)

    @settings(max_examples=60, deadline=None)
    @given(pos, pos, pos, pos, st.integers(1, 8), st.integers(0, 2**31))
    def test_repeated_separation_converges(self, sx, sy, dx, dy, h, seed):
        """Successive forwarders at random TDs (the protocol's actual
        behaviour) reach Z_D within a bounded number of rounds."""
        import numpy as np

        rng = np.random.default_rng(seed)
        zd = destination_zone(FIELD, Point(dx, dy), h)
        current = Point(sx, sy)
        direction = Direction.VERTICAL
        for _ in range(60):
            if zd.contains_closed(current):
                return  # reached the destination zone (or its edge)
            res = separate_from_zone(FIELD, current, zd, direction)
            direction = res.next_direction
            # The next forwarder is near a random TD in the next zone.
            current = res.next_zone.random_point(rng)
        raise AssertionError(f"did not converge: {current} vs {zd}")


class TestSplit:
    def test_split_dispatch(self):
        r = Rect(0, 0, 4, 8)
        assert split(r, Direction.VERTICAL) == r.split_vertical()
        assert split(r, Direction.HORIZONTAL) == r.split_horizontal()
