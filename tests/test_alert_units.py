"""Focused unit tests on ALERT internals with crafted geometry."""

from __future__ import annotations

import pytest

from repro.core.alert import AlertProtocol, _rect_from_bytes, _rect_to_bytes
from repro.core.config import AlertConfig
from repro.core.packet_format import AlertPacketType
from repro.core.zones import Direction, destination_zone
from repro.crypto.cipher import PublicKeyCipher
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.geometry.field import Field
from repro.geometry.primitives import Point, Rect
from repro.location.service import LocationService
from repro.mobility.static import StaticPosition
from repro.net.network import Network
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine


def build_line_network(n=12, spacing=180.0, field_side=2200.0):
    """Nodes on a horizontal line, `spacing` apart (all links usable)."""
    engine = Engine(seed=2)
    fld = Field(field_side, field_side)
    y = field_side / 2

    def factory(node_id, rng):
        return StaticPosition(Point(60.0 + node_id * spacing, y))

    net = Network(engine, fld, factory, n)
    return net


def attach_alert(net, cfg=None):
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    location = LocationService(net, cost_model=CryptoCostModel())
    proto = AlertProtocol(
        net, location, metrics, cost,
        cfg if cfg is not None else AlertConfig(h_override=4),
    )
    net.start_hello()
    net.engine.run(until=0.5)
    return proto, metrics, cost, location


class TestRectCodec:
    def test_roundtrip(self):
        r = Rect(12.5, 0.0, 800.25, 431.0)
        assert _rect_from_bytes(_rect_to_bytes(r)) == r

    def test_source_zone_encrypts_for_destination_only(self):
        net = build_line_network()
        proto, metrics, _, _ = attach_alert(net)
        proto.send_data(0, 11)
        net.engine.run(until=net.engine.now + 2.0)
        sess = proto._sessions[(0, 11)]
        dest = net.nodes[11]
        blob = PublicKeyCipher.for_owner(dest.keypair).decrypt(sess.zone_src_enc)
        zone_src = _rect_from_bytes(blob)
        # The decrypted return zone contains the source's position.
        assert zone_src.contains_closed(net.nodes[0].position(0.0))


class TestLineTopology:
    def test_delivery_down_the_line(self):
        net = build_line_network()
        proto, metrics, _, _ = attach_alert(net)
        for _ in range(4):
            proto.send_data(0, 11)
            net.engine.run(until=net.engine.now + 1.5)
        assert metrics.delivery_rate() >= 0.75

    def test_header_bookkeeping(self):
        """h accumulates partitions; direction bit flips along the way."""
        net = build_line_network()
        proto, metrics, _, _ = attach_alert(net)
        seen_headers = []
        orig = AlertProtocol._rf_partition

        def spy(self, node, packet):
            seen_headers.append(
                (packet.header.h, packet.header.direction, packet.header.rf_rounds)
            )
            return orig(self, node, packet)

        AlertProtocol._rf_partition = spy
        try:
            proto.send_data(0, 11)
            net.engine.run(until=net.engine.now + 2.0)
        finally:
            AlertProtocol._rf_partition = orig
        assert seen_headers, "at least the source partitions"
        hs = [h for h, _, _ in seen_headers]
        assert hs == sorted(hs)  # divisions-so-far only grows

    def test_source_in_destination_zone_broadcasts_immediately(self):
        """S and D in the same Z_D: no partitioning, straight to the
        k-anonymity broadcast."""
        net = build_line_network(n=6, spacing=30.0)
        proto, metrics, _, _ = attach_alert(net, AlertConfig(h_override=3))
        proto.send_data(0, 5)
        net.engine.run(until=net.engine.now + 1.0)
        flow = metrics.flows()[0]
        assert flow.delivered
        assert flow.rf_count == 0
        assert metrics.counters.get("zone_broadcasts", 0) >= 1


class TestDispatchHygiene:
    def test_foreign_packets_ignored(self):
        """Packets without an ALERT header are dropped silently."""
        net = build_line_network(n=4, spacing=100.0)
        proto, metrics, _, _ = attach_alert(net)
        alien = Packet(kind=PacketKind.DATA, src=0, dst=3, size_bytes=64)
        alien.header = object()
        net.nodes[1].deliver(alien)  # must not raise
        assert metrics.packets_sent == 0

    def test_is_final_recipient_requires_pseudonym_match(self):
        net = build_line_network(n=4, spacing=100.0)
        proto, _, _, _ = attach_alert(net)
        proto.send_data(0, 3)
        net.engine.run(until=net.engine.now + 1.0)
        # Craft a packet claiming a bogus destination pseudonym.
        fld = net.field
        zd = destination_zone(fld.bounds, net.nodes[3].position(0.0), 4)
        from repro.core.packet_format import AlertHeader
        hdr = AlertHeader(
            ptype=AlertPacketType.RREQ,
            p_src=b"x" * 20,
            p_dst=b"y" * 20,  # not node 3's pseudonym
            zone_dst=zd,
            zone_src_enc=b"",
            td=None,
            h=0,
            h_max=4,
            direction=Direction.VERTICAL,
        )
        pkt = Packet(kind=PacketKind.DATA, src=0, dst=3, size_bytes=64)
        pkt.header = hdr
        assert not proto._is_final_recipient(net.nodes[3], pkt)
