"""Tests for CBR traffic sources and the location service."""

from __future__ import annotations

import pytest

from repro.location.server import LocationRecord, LocationServer
from repro.location.service import LocationService, LookupError_
from repro.net.traffic import CbrSource
from repro.sim.engine import Engine
from repro.crypto.keys import PublicKey
from repro.geometry.primitives import Point
from tests.conftest import build_network


class TestCbrSource:
    def test_sends_at_interval(self):
        eng = Engine()
        sent = []
        CbrSource(eng, lambda s, d, n: sent.append(eng.now), 0, 1,
                  interval=2.0, start_offset=1.0)
        eng.run(until=7.5)
        assert sent == [1.0, 3.0, 5.0, 7.0]

    def test_max_packets(self):
        eng = Engine()
        sent = []
        CbrSource(eng, lambda s, d, n: sent.append(1), 0, 1,
                  interval=1.0, max_packets=3, start_offset=0.5)
        eng.run(until=60.0)
        assert len(sent) == 3

    def test_max_packets_leaves_no_pending_tick(self):
        # Regression: the source used to book one more periodic tick
        # after the final packet, leaving a live event on the heap long
        # after the flow finished (and inflating drain-time workloads).
        eng = Engine()
        sent = []
        CbrSource(eng, lambda s, d, n: sent.append(eng.now), 0, 1,
                  interval=1.0, max_packets=3, start_offset=0.5)
        eng.run(until=60.0)
        assert sent == [0.5, 1.5, 2.5]
        assert eng.pending() == 0
        assert eng.events_processed == 3  # one event per packet, no extras

    def test_max_packets_zero_sends_nothing_and_drains(self):
        eng = Engine()
        sent = []
        CbrSource(eng, lambda s, d, n: sent.append(1), 0, 1,
                  interval=1.0, max_packets=0)
        eng.run(until=10.0)
        assert sent == []
        assert eng.pending() == 0

    def test_stop(self):
        eng = Engine()
        sent = []
        src = CbrSource(eng, lambda s, d, n: sent.append(1), 0, 1, interval=1.0)
        eng.schedule_at(2.5, src.stop)
        eng.run(until=30.0)
        assert len(sent) == 2

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            CbrSource(Engine(), lambda *a: None, 3, 3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CbrSource(Engine(), lambda *a: None, 0, 1, interval=0.0)
        with pytest.raises(ValueError):
            CbrSource(Engine(), lambda *a: None, 0, 1, size_bytes=0)


class TestLocationServer:
    def _record(self, nid=1):
        return LocationRecord(nid, Point(1, 2), PublicKey(123457, 65537), 0.0)

    def test_store_fetch(self):
        s = LocationServer(0)
        s.store(self._record())
        assert s.fetch(1) is not None
        assert s.fetch(2) is None

    def test_failed_server_ignores_io(self):
        s = LocationServer(0)
        s.store(self._record())
        s.fail()
        assert s.fetch(1) is None
        s.store(self._record(2))
        s.restore()
        assert s.fetch(1) is not None
        assert s.fetch(2) is None  # write during failure was dropped

    def test_counters_distinguish_replication(self):
        s = LocationServer(0)
        s.store(self._record(1))
        s.store(self._record(2), replicated=True)
        assert s.writes == 1 and s.replications == 1


class TestLocationService:
    def test_default_server_count_is_sqrt_n(self):
        net = build_network(n_nodes=49, static=True)
        svc = LocationService(net)
        assert len(svc.servers) == 7
        svc.stop()

    def test_lookup_returns_record(self):
        net = build_network(static=True)
        svc = LocationService(net)
        rec = svc.lookup(0, 5)
        assert rec.node_id == 5
        assert rec.public_key == net.nodes[5].keypair.public
        truth = net.position_of(5)
        assert truth.distance_to(rec.position) < 1.0
        svc.stop()

    def test_survives_server_failures(self):
        net = build_network(static=True)
        svc = LocationService(net)
        for server in svc.servers[:-1]:
            server.fail()
        assert svc.lookup(0, 5).node_id == 5
        svc.stop()

    def test_all_servers_down_raises(self):
        net = build_network(static=True)
        svc = LocationService(net)
        for server in svc.servers:
            server.fail()
        with pytest.raises(LookupError_):
            svc.lookup(0, 5)
        assert svc.failed_lookups == 1
        svc.stop()

    def test_updates_track_movement(self):
        net = build_network(n_nodes=20, seed=3, speed=8.0)
        svc = LocationService(net, updates_enabled=True, update_interval=1.0)
        net.engine.run(until=30.0)
        rec = svc.lookup(0, 5)
        truth = net.position_of(5)
        assert truth.distance_to(rec.position) <= 8.0 * 1.0 + 1.0
        svc.stop()

    def test_no_updates_stay_stale(self):
        net = build_network(n_nodes=20, seed=3, speed=8.0)
        svc = LocationService(net, updates_enabled=False)
        initial = svc.lookup(0, 5).position
        net.engine.run(until=60.0)
        assert svc.lookup(0, 5).position == initial

    def test_lookup_charges_crypto(self):
        net = build_network(static=True)
        svc = LocationService(net)
        before = svc.cost_model.total_operations()
        svc.lookup(0, 5)
        assert svc.cost_model.total_operations() > before
        svc.stop()

    def test_overhead_formula(self):
        net = build_network(n_nodes=16, static=True)
        svc = LocationService(net, updates_enabled=True, update_interval=2.0)
        ratio = svc.message_overhead(duration=100.0, data_frequency=0.5)
        # N=16, N_L=4, f=0.5, F=0.5 → (12·0.5 + 16·0.5)/(16·0.5) = 1.75
        assert ratio == pytest.approx(1.75)
        svc.stop()

    def test_overhead_requires_positive_frequency(self):
        net = build_network(n_nodes=9, static=True)
        svc = LocationService(net)
        with pytest.raises(ValueError):
            svc.message_overhead(10.0, 0.0)
        svc.stop()
