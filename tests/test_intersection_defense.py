"""Tests for the §3.3 two-step multicast machinery and bitmap scramble."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.intersection_attack import IntersectionAttacker
from repro.attacks.adversary import DeliveryObservation
from repro.core.alert import AlertProtocol
from repro.core.config import AlertConfig
from repro.core.intersection_defense import (
    apply_bit_flips,
    coverage_percent,
    decode_bitmap,
    encode_bitmap,
    scramble_payload,
    unscramble_payload,
)
from repro.crypto.cost_model import CryptoCostModel
from repro.crypto.keys import generate_keypair
from repro.experiments.metrics import MetricsCollector
from repro.location.service import LocationService
from tests.conftest import build_network

KP = generate_keypair(np.random.default_rng(0), bits=64)


class TestBitFlips:
    def test_involution(self):
        data = b"hello world, this is a payload"
        flipped = apply_bit_flips(data, [0, 17, 100])
        assert flipped != data
        assert apply_bit_flips(flipped, [0, 17, 100]) == data

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            apply_bit_flips(b"ab", [16])

    def test_bitmap_codec_roundtrip(self):
        positions = [0, 5, 77, 1023]
        assert decode_bitmap(encode_bitmap(positions)) == positions

    def test_bitmap_codec_rejects_misaligned(self):
        with pytest.raises(ValueError):
            decode_bitmap(b"\x00\x01\x02")

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=200), st.integers(0, 2**31))
    def test_scramble_roundtrip_property(self, payload, seed):
        rng = np.random.default_rng(seed)
        scrambled, bitmap_enc = scramble_payload(payload, KP.public, rng)
        assert scrambled != payload or len(payload) * 8 <= 8
        assert unscramble_payload(scrambled, bitmap_enc, KP) == payload

    def test_empty_payload_passthrough(self):
        s, b = scramble_payload(b"", KP.public, np.random.default_rng(1))
        assert s == b"" and b == b""
        assert unscramble_payload(b"", b"", KP) == b""


class TestCoverageFormula:
    def test_paper_formula(self):
        """§3.3: m/k + (1 - m/k)·p_c."""
        assert coverage_percent(3, 6, 1.0) == 1.0
        assert coverage_percent(3, 6, 0.0) == 0.5
        assert coverage_percent(2, 8, 0.5) == pytest.approx(0.25 + 0.75 * 0.5)

    def test_full_first_step(self):
        assert coverage_percent(6, 6, 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_percent(7, 6, 1.0)
        with pytest.raises(ValueError):
            coverage_percent(1, 6, 1.5)
        with pytest.raises(ValueError):
            coverage_percent(0, 0, 0.5)


def run_defended(n_packets=14, seed=13, m=2):
    net = build_network(n_nodes=70, seed=seed, field_size=600.0)
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    location = LocationService(net, updates_enabled=True, cost_model=cost)
    cfg = AlertConfig(h_override=4, intersection_defense=True, multicast_m=m)
    proto = AlertProtocol(net, location, metrics, cost, cfg)
    observations = []
    proto.zone_delivery_observer = lambda t, recipients: observations.append(
        DeliveryObservation(time=t, recipients=frozenset(recipients))
    )
    net.start_hello()
    net.engine.run(until=0.5)
    for _ in range(n_packets):
        proto.send_data(0, 69)
        net.engine.run(until=net.engine.now + 1.0)
    net.engine.run(until=net.engine.now + 3.0)
    return net, proto, metrics, observations


class TestDefendedDelivery:
    def test_two_step_machinery_runs(self):
        _, _, metrics, _ = run_defended()
        assert metrics.counters.get("defense_multicasts", 0) >= 3
        assert metrics.counters.get("defense_releases", 0) >= 1

    def test_packets_still_delivered(self):
        _, _, metrics, _ = run_defended()
        # Held packets are released on the next arrival, so all but the
        # tail of the session eventually reach D.
        assert metrics.delivery_rate() >= 0.5

    def test_payload_survives_double_scramble(self):
        _, _, metrics, _ = run_defended()
        assert metrics.counters.get("payload_mismatch", 0) == 0
        assert metrics.counters.get("payload_decrypt_failures", 0) == 0

    def test_destination_absent_from_some_recipient_sets(self):
        """The defense's core effect: D misses some observable sets,
        so the intersection attack loses D (§3.3)."""
        _, _, _, observations = run_defended()
        assert len(observations) >= 5
        attacker = IntersectionAttacker()
        attacker.observe_all(observations)
        assert attacker.defeated(69) or not attacker.identified(69)

    def test_recipient_sets_bounded_by_m(self):
        """Observable set per packet: the multicasting RF + m holders."""
        _, proto, _, observations = run_defended(m=2)
        for obs in observations:
            assert len(obs.recipients) <= 2 + 1
