"""Edge-case and reliability-path tests added after the main suite:
NAK recovery, config validation across protocols, MAC delay bounds,
and property checks on remaining helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alert import AlertProtocol
from repro.core.config import AlertConfig
from repro.core.intersection_defense import coverage_percent
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.location.service import LocationService
from repro.net.mac import Mac80211Dcf
from repro.net.radio import RadioModel
from repro.routing.alarm import AlarmConfig
from repro.routing.ao2p import Ao2pConfig
from repro.routing.gpsr import GpsrConfig
from repro.routing.zap import ZapConfig
from tests.conftest import build_network


class TestConfigValidation:
    def test_alert_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AlertConfig(k=0)
        with pytest.raises(ValueError):
            AlertConfig(h_override=0)
        with pytest.raises(ValueError):
            AlertConfig(multicast_m=0)
        with pytest.raises(ValueError):
            AlertConfig(notify_t=-1.0)
        with pytest.raises(ValueError):
            AlertConfig(notify_t0=0.0)

    def test_default_configs_are_sane(self):
        assert GpsrConfig().ttl == 10  # the paper's TTL
        assert AlarmConfig().dissemination_interval == 30.0  # §5: 30 s
        assert Ao2pConfig().proxy_extension_m > 0
        assert ZapConfig().zone_side > 0
        assert AlertConfig().k == 6


class TestNakRecovery:
    def test_nak_triggers_resend_of_missing_seq(self):
        """Force-miss a sequence number and watch the NAK machinery
        recover it."""
        net = build_network(n_nodes=50, seed=43)
        metrics = MetricsCollector()
        location = LocationService(net, cost_model=CryptoCostModel())
        proto = AlertProtocol(
            net, location, metrics, CryptoCostModel(),
            AlertConfig(h_override=4, enable_confirmation=True,
                        confirmation_timeout=5.0),
        )
        net.start_hello()
        net.engine.run(until=0.5)
        # seq 0 delivered normally.
        proto.send_data(0, 49)
        net.engine.run(until=net.engine.now + 1.5)
        # Simulate a lost seq 1: consume the sequence number without
        # ever transmitting, then send seq 2 which D *will* get.
        sess = proto._get_session(0, 49)
        lost_seq = sess.seq
        sess.seq += 1
        sess.retained[lost_seq] = sess.retained.get(0, b"")
        proto.send_data(0, 49)
        net.engine.run(until=net.engine.now + 4.0)
        # D saw the gap and NAKed; the source resent the missing seq.
        assert metrics.counters.get("nak_sent", 0) >= 1
        location.stop()


class TestMacBounds:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2048), st.floats(0.0, 250.0), st.floats(0.0, 100.0))
    def test_unicast_delay_bounds(self, size, dist, load):
        mac = Mac80211Dcf(RadioModel(), np.random.default_rng(0))
        out = mac.unicast(size, dist, load)
        airtime = mac.radio.tx_time(size)
        assert out.delay_s >= airtime
        # Upper bound: every attempt pays max backoff + airtime + ack.
        per_attempt = (
            mac.difs_s + mac.cw_max * mac.slot_s + airtime
            + mac.sifs_s + mac.radio.tx_time(mac.ack_bytes) + 1e-3
        )
        assert out.delay_s <= out.attempts * per_attempt
        assert 1 <= out.attempts <= mac.max_retries + 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2048), st.floats(0.0, 100.0))
    def test_broadcast_single_attempt(self, size, load):
        mac = Mac80211Dcf(RadioModel(), np.random.default_rng(1))
        out = mac.broadcast(size, load)
        assert out.attempts == 1
        assert out.delay_s >= mac.radio.tx_time(size)


class TestCoverageProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 50), st.integers(1, 50), st.floats(0.0, 1.0))
    def test_coverage_bounds_and_monotonicity(self, m, k, p_c):
        if m > k:
            m, k = k, m
        c = coverage_percent(m, k, p_c)
        assert 0.0 <= c <= 1.0 + 1e-12
        # More first-step recipients never reduce coverage.
        if m < k:
            assert coverage_percent(m + 1, k, p_c) >= c - 1e-12
        # Full second-step reach always completes coverage.
        assert coverage_percent(m, k, 1.0) == pytest.approx(1.0)


class TestEngineEdge:
    def test_interleaved_cancellation_storm(self):
        """Heavily mixed schedule/cancel patterns stay consistent."""
        from repro.sim.engine import Engine
        eng = Engine()
        fired = []
        handles = []
        for i in range(200):
            handles.append(
                eng.schedule_at(1.0 + (i % 10) * 0.1, lambda i=i: fired.append(i))
            )
        for h in handles[::2]:
            h.cancel()
        eng.run()
        assert sorted(fired) == list(range(1, 200, 2))

    def test_periodic_task_survives_exception_free_run(self):
        from repro.sim.engine import Engine
        from repro.sim.process import PeriodicTask
        eng = Engine()
        ticks = []
        task = PeriodicTask(eng, 0.5, lambda: ticks.append(eng.now))
        eng.run(until=5.0)
        task.stop()
        eng.run(until=10.0)
        assert len(ticks) == 10
