"""Unit tests for the notify-and-go mechanism in isolation."""

from __future__ import annotations

from repro.core.notify_and_go import NotifyAndGo
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.net.packet import Packet, PacketKind
from tests.conftest import build_network


def make_nag(net, t=0.002, t0=0.02):
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    nag = NotifyAndGo(
        net, net.engine.rng.stream("nag"), cost, metrics, t=t, t0=t0
    )
    return nag, metrics, cost


class TestNotifyAndGo:
    def test_real_send_deferred_within_window(self):
        net = build_network(static=True)
        net.start_hello()
        net.engine.run(until=0.5)
        nag, _, _ = make_nag(net, t=0.01, t0=0.05)
        fired = []
        backoff = nag.run(net.nodes[0], lambda: fired.append(net.engine.now))
        assert 0.01 <= backoff <= 0.06
        start = net.engine.now
        net.engine.run(until=start + 0.1)
        assert len(fired) == 1
        assert 0.01 <= fired[0] - start <= 0.06

    def test_every_neighbor_covers(self):
        net = build_network(static=True)
        net.start_hello()
        net.engine.run(until=0.5)
        nag, metrics, _ = make_nag(net)
        source = net.nodes[0]
        eta = len(source.neighbors.live_entries(net.engine.now))
        nag.run(source, lambda: None)
        net.engine.run(until=net.engine.now + 0.1)
        assert metrics.counters.get("cover_tx", 0) == eta

    def test_anonymity_set_counts_source(self):
        net = build_network(static=True)
        net.start_hello()
        net.engine.run(until=0.5)
        nag, _, _ = make_nag(net)
        source = net.nodes[0]
        eta = len(source.neighbors.live_entries(net.engine.now))
        assert nag.anonymity_set_size(source) == eta + 1

    def test_cover_receivers_charge_decrypt(self):
        net = build_network(static=True)
        net.start_hello()
        net.engine.run(until=0.5)
        nag, metrics, cost = make_nag(net)
        nag.run(net.nodes[0], lambda: None)
        net.engine.run(until=net.engine.now + 0.1)
        # Cover frames are broadcast; every receiver that dispatches one
        # through handle_cover pays a public-key decryption attempt.
        cover = Packet(kind=PacketKind.COVER, src=1, dst=-1, size_bytes=16)
        before = cost.charges.get("pubkey_decrypt", 0)
        nag.handle_cover(net.nodes[2], cover)
        assert cost.charges.get("pubkey_decrypt", 0) == before + 1
        assert metrics.counters.get("cover_rx_decrypt_attempts", 0) >= 1

    def test_cover_packets_do_not_propagate(self):
        """Covers die at first hop: no receiver re-broadcasts them."""
        net = build_network(static=True)
        net.start_hello()
        net.engine.run(until=0.5)
        nag, metrics, _ = make_nag(net)
        # Route cover handling like AlertProtocol does.
        for node in net.nodes:
            node.on_receive = (
                lambda n, p: nag.handle_cover(n, p)
                if p.kind is PacketKind.COVER
                else None
            )
        before_tx = net.broadcast_tx
        nag.run(net.nodes[0], lambda: None)
        net.engine.run(until=net.engine.now + 0.2)
        eta = metrics.counters.get("cover_tx", 0)
        # Exactly one broadcast per cover — no forwarding cascade.
        assert net.broadcast_tx - before_tx == eta
