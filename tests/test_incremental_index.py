"""Differential tests: incremental GridIndex vs rebuild vs NaiveIndex.

The incremental maintenance API (``move`` / ``update_positions``) must
leave the index *result-identical* to a from-scratch ``GridIndex`` at
the same positions and to the brute-force ``NaiveIndex`` oracle, for
every query method, after arbitrarily long interleaved move/query
schedules — including boundary-straddling moves, out-of-field
coordinates, and duplicate positions.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.spatial_index import GridIndex

from tests.oracles import (
    NaiveIndex,
    assert_same_answers,
    fresh_gridindex,
    run_differential,
)

#: Example-budget multiplier for the randomized differential suites.
#: CI's weekly cron exports REPRO_ORACLE_BUDGET=20 for a deep run;
#: the default keeps the tier-1 suite fast.
_BUDGET = max(1, int(os.environ.get("REPRO_ORACLE_BUDGET", "1")))


def _agree_everywhere(grid: GridIndex, naive: NaiveIndex, rng, probes=20):
    """End-state sweep: all three implementations on random queries."""
    trio = [naive, grid, fresh_gridindex(naive)]
    for _ in range(probes):
        x, y = rng.uniform(-300, 1300, size=2)
        r = float(rng.uniform(0, 500))
        assert_same_answers(trio, "query_radius", x, y, r)
        assert_same_answers(trio, "query_rect", x - r, y - r, x + r, y + r)
        assert_same_answers(trio, "nearest", x, y, None)


class TestMove:
    def test_move_within_cell_does_not_rebucket(self):
        pos = np.array([[10.0, 10.0], [300.0, 300.0]])
        idx = GridIndex(pos.copy(), 250.0)
        assert idx.move(0, 40.0, 40.0) is False
        assert idx.query_radius(40.0, 40.0, 1.0).tolist() == [0]
        # The old coordinate no longer matches.
        assert idx.query_radius(10.0, 10.0, 1.0).size == 0

    def test_move_across_cell_rebuckets(self):
        pos = np.array([[10.0, 10.0], [300.0, 300.0]])
        idx = GridIndex(pos.copy(), 250.0)
        assert idx.move(0, 600.0, 600.0) is True
        assert idx.nearest(610.0, 610.0) == 0
        assert idx.query_rect(0.0, 0.0, 250.0, 250.0).size == 0

    def test_move_onto_duplicate_position(self):
        pos = np.array([[10.0, 10.0], [300.0, 300.0], [500.0, 500.0]])
        idx = GridIndex(pos.copy(), 250.0)
        idx.move(0, 300.0, 300.0)  # exact duplicate of node 1
        hits = idx.query_radius(300.0, 300.0, 0.0)
        assert hits.tolist() == [0, 1]
        # Ties break to the smallest index, like a full argmin.
        assert idx.nearest(300.0, 300.0) == 0

    def test_move_out_of_field_negative_cells(self):
        pos = np.array([[10.0, 10.0], [300.0, 300.0]])
        idx = GridIndex(pos.copy(), 250.0)
        idx.move(0, -900.0, -1.0)  # far outside the original bounds
        assert idx.nearest(-900.0, 0.0) == 0
        assert idx.query_radius(-900.0, -1.0, 5.0).tolist() == [0]
        # nearest from the far side must still expand rings that reach
        # the grown bounding box.
        assert idx.nearest(300.0, 300.0, exclude=1) == 0

    def test_move_boundary_straddle_exact_edge(self):
        # x = cell_size sits exactly on the boundary: floor(250/250)=1,
        # so the node belongs to cell 1 and a move from 249.999 to
        # 250.0 must rebucket.
        idx = GridIndex(np.array([[249.999, 0.0]]), 250.0)
        assert idx.move(0, 250.0, 0.0) is True
        assert idx.query_rect(250.0, 0.0, 500.0, 250.0).tolist() == [0]
        assert idx.move(0, 249.999, 0.0) is True

    def test_move_out_of_range_raises(self):
        idx = GridIndex(np.zeros((3, 2)), 10.0)
        with pytest.raises(IndexError):
            idx.move(3, 0.0, 0.0)
        with pytest.raises(IndexError):
            idx.move(-1, 0.0, 0.0)

    def test_move_empties_and_recreates_buckets(self):
        # Single node ping-ponging between two cells: its old bucket
        # must disappear (not linger empty) and reappear on return.
        idx = GridIndex(np.array([[10.0, 10.0]]), 100.0)
        for _ in range(5):
            idx.move(0, 910.0, 910.0)
            assert idx.query_radius(10.0, 10.0, 50.0).size == 0
            assert idx.query_radius(910.0, 910.0, 50.0).tolist() == [0]
            idx.move(0, 10.0, 10.0)
            assert idx.query_radius(910.0, 910.0, 50.0).size == 0
            assert idx.query_radius(10.0, 10.0, 50.0).tolist() == [0]


class TestUpdatePositions:
    def test_batch_matches_scalar_moves(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 1000, size=(50, 2))
        batch = GridIndex(pos.copy(), 100.0)
        scalar = GridIndex(pos.copy(), 100.0)
        ids = np.array([3, 17, 30, 49])
        new_pos = rng.uniform(-200, 1200, size=(4, 2))
        crossed = batch.update_positions(ids, new_pos)
        scalar_crossed = sum(
            scalar.move(int(i), *new_pos[k]) for k, i in enumerate(ids)
        )
        assert crossed == scalar_crossed
        np.testing.assert_array_equal(batch.positions, scalar.positions)
        _agree_everywhere(batch, NaiveIndex(batch.positions, 100.0), rng)

    def test_empty_update_is_noop(self):
        pos = np.random.default_rng(2).uniform(0, 500, size=(20, 2))
        idx = GridIndex(pos.copy(), 100.0)
        assert idx.update_positions(np.empty(0, dtype=np.int64), np.empty((0, 2))) == 0
        np.testing.assert_array_equal(idx.positions, pos)

    def test_shape_mismatch_raises(self):
        idx = GridIndex(np.zeros((5, 2)), 10.0)
        with pytest.raises(ValueError):
            idx.update_positions(np.array([0, 1]), np.zeros((3, 2)))

    def test_out_of_range_ids_raise(self):
        idx = GridIndex(np.zeros((5, 2)), 10.0)
        with pytest.raises(IndexError):
            idx.update_positions(np.array([0, 5]), np.zeros((2, 2)))

    def test_all_nodes_to_same_cell(self):
        # Adversarial pile-up: every node lands on one duplicate point.
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 1000, size=(40, 2))
        idx = GridIndex(pos.copy(), 250.0)
        ids = np.arange(40)
        idx.update_positions(ids, np.full((40, 2), 123.456))
        assert idx.query_radius(123.456, 123.456, 0.0).tolist() == list(range(40))
        assert idx.nearest(0.0, 0.0) == 0
        _agree_everywhere(idx, NaiveIndex(idx.positions, 250.0), rng)


class TestAdoptPositions:
    """Whole-array adoption (the ``Network.snapshot`` fast path)."""

    def test_adopt_matches_naive_and_rebuild(self):
        rng = np.random.default_rng(11)
        pos = rng.uniform(0, 1000, size=(80, 2))
        grid = GridIndex(pos.copy(), 130.0)
        naive = NaiveIndex(pos, 130.0)
        for step in range(40):
            # Small perturbations: most nodes stay in their cell.
            new_pos = grid.positions + rng.normal(0, 15.0, size=(80, 2))
            assert grid.adopt_positions(new_pos.copy()) == (
                naive.adopt_positions(new_pos)
            ), f"step {step}"
            if step % 8 == 0:
                _agree_everywhere(grid, naive, rng, probes=4)
        _agree_everywhere(grid, naive, rng)

    def test_adopt_over_threshold_leaves_index_untouched(self):
        rng = np.random.default_rng(12)
        pos = rng.uniform(0, 1000, size=(50, 2))
        grid = GridIndex(pos.copy(), 100.0)
        scattered = rng.uniform(2000, 3000, size=(50, 2))
        assert grid.adopt_positions(scattered, max_crossed=5) == -1
        np.testing.assert_array_equal(grid.positions, pos)
        _agree_everywhere(grid, NaiveIndex(pos, 100.0), rng, probes=5)

    def test_adopt_shape_mismatch_raises(self):
        grid = GridIndex(np.zeros((4, 2)), 10.0)
        with pytest.raises(ValueError):
            grid.adopt_positions(np.zeros((5, 2)))

    def test_adopt_takes_ownership(self):
        grid = GridIndex(np.array([[1.0, 1.0], [2.0, 2.0]]), 10.0)
        buf = np.array([[3.0, 3.0], [4.0, 4.0]])
        grid.adopt_positions(buf)
        assert grid.positions is buf


class TestRandomizedDifferential:
    def test_long_interleaved_schedule(self):
        """Acceptance: ≥1000 interleaved move/query steps, all three
        implementations result-identical throughout."""
        rng = np.random.default_rng(2024)
        pos = rng.uniform(0, 1000, size=(120, 2))
        grid, naive = run_differential(pos, 137.0, steps=1200, rng=rng)
        _agree_everywhere(grid, naive, rng)

    def test_boundary_straddling_trajectories(self):
        # Nodes jitter around exact cell boundaries (multiples of the
        # cell size), the worst case for floor()-based rebucketing.
        rng = np.random.default_rng(7)
        cs = 50.0
        base = rng.integers(-3, 4, size=(60, 2)).astype(np.float64) * cs
        pos = base + rng.choice([-1e-9, 0.0, 1e-9], size=(60, 2))
        grid = GridIndex(pos.copy(), cs)
        naive = NaiveIndex(pos, cs)
        for step in range(400):
            i = int(rng.integers(0, 60))
            x, y = (
                rng.integers(-3, 4, size=2).astype(np.float64) * cs
                + rng.choice([-1e-9, 0.0, 1e-9], size=2)
            )
            assert grid.move(i, x, y) == naive.move(i, x, y), f"step {step}"
            if step % 20 == 0:
                _agree_everywhere(grid, naive, rng, probes=3)
        _agree_everywhere(grid, naive, rng)

    @settings(max_examples=25 * _BUDGET, deadline=None)
    @given(
        st.integers(1, 60),
        st.floats(5.0, 300.0),
        st.integers(0, 10_000),
    )
    def test_differential_property(self, n, cell_size, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(-500, 1000, size=(n, 2))
        grid, naive = run_differential(
            pos, cell_size, steps=60, rng=rng,
            coord_range=(-700.0, 1200.0),
        )
        _agree_everywhere(grid, naive, rng, probes=5)

    @settings(max_examples=15 * _BUDGET, deadline=None)
    @given(st.integers(0, 10_000))
    def test_differential_large_population_bucket_paths(self, seed):
        # Above _SMALL_N the bucketed rect/ring-nearest paths run; the
        # incremental index must stay identical there too.
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 2000, size=(600, 2))
        grid, naive = run_differential(
            pos, 100.0, steps=40, rng=rng, coord_range=(-200.0, 2200.0),
            batch_fraction=0.1,
        )
        _agree_everywhere(grid, naive, rng, probes=5)
