"""Tests for the hello-beacon neighbor table."""

from __future__ import annotations

import pytest

from repro.crypto.keys import PublicKey
from repro.geometry.primitives import Point
from repro.net.neighbor_table import NeighborEntry, NeighborTable

PK = PublicKey(n=123457, e=65537)


def entry(addr=1, t=0.0, pos=Point(0, 0)):
    return NeighborEntry(
        link_address=addr, pseudonym=b"p" * 20, position=pos,
        public_key=PK, last_seen=t,
    )


class TestNeighborTable:
    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            NeighborTable(ttl=0)

    def test_update_and_get(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=5, t=1.0))
        assert t.get(5, now=2.0) is not None
        assert t.get(9, now=2.0) is None

    def test_expiry(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=5, t=1.0))
        assert t.get(5, now=4.0) is not None  # exactly at cutoff
        assert t.get(5, now=4.1) is None

    def test_refresh_extends_life(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=5, t=1.0))
        t.update(entry(addr=5, t=5.0))
        assert t.get(5, now=7.0) is not None

    def test_live_entries_sorted_and_filtered(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=9, t=5.0))
        t.update(entry(addr=2, t=5.0))
        t.update(entry(addr=4, t=0.0))  # stale at now=5
        live = t.live_entries(now=5.0)
        assert [e.link_address for e in live] == [2, 9]

    def test_remove(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=5, t=1.0))
        t.remove(5)
        assert t.get(5, now=1.0) is None
        t.remove(5)  # idempotent

    def test_purge_deletes_expired(self):
        t = NeighborTable(ttl=1.0)
        t.update(entry(addr=1, t=0.0))
        t.update(entry(addr=2, t=10.0))
        assert t.purge(now=10.0) == 1
        assert len(t) == 1

    def test_len(self):
        t = NeighborTable()
        assert len(t) == 0
        t.update(entry(addr=1))
        t.update(entry(addr=2))
        assert len(t) == 2


class TestSortedCache:
    def test_repeated_reads_reuse_sorted_rows(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=3, t=1.0))
        t.update(entry(addr=1, t=1.0))
        t.live_entries(now=1.0)
        cached = t._sorted
        assert cached is not None
        t.live_entries(now=2.0)
        assert t._sorted is cached

    def test_update_invalidates_cache(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=1, t=1.0))
        t.live_entries(now=1.0)
        t.update(entry(addr=2, t=1.0))
        assert t._sorted is None
        assert [e.link_address for e in t.live_entries(now=1.0)] == [1, 2]

    def test_bulk_update_matches_repeated_update(self):
        a = NeighborTable(ttl=3.0)
        b = NeighborTable(ttl=3.0)
        rows = [entry(addr=i, t=float(i % 3)) for i in (5, 2, 9, 2)]
        for r in rows:
            a.update(r)
        b.bulk_update(rows)
        assert a.live_entries(now=3.0) == b.live_entries(now=3.0)
        assert len(a) == len(b) == 3

    def test_remove_missing_keeps_cache(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=1, t=1.0))
        t.live_entries(now=1.0)
        cached = t._sorted
        t.remove(42)
        assert t._sorted is cached

    def test_purge_invalidates_only_when_rows_die(self):
        t = NeighborTable(ttl=1.0)
        t.update(entry(addr=1, t=10.0))
        t.live_entries(now=10.0)
        cached = t._sorted
        assert t.purge(now=10.0) == 0
        assert t._sorted is cached
        t.update(entry(addr=2, t=0.0))
        t.live_entries(now=10.0)
        assert t.purge(now=10.0) == 1
        assert t._sorted is None
        assert [e.link_address for e in t.live_entries(now=10.0)] == [1]
