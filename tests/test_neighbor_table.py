"""Tests for the hello-beacon neighbor table."""

from __future__ import annotations

import pytest

from repro.crypto.keys import PublicKey
from repro.geometry.primitives import Point
from repro.net.neighbor_table import NeighborEntry, NeighborTable

PK = PublicKey(n=123457, e=65537)


def entry(addr=1, t=0.0, pos=Point(0, 0)):
    return NeighborEntry(
        link_address=addr, pseudonym=b"p" * 20, position=pos,
        public_key=PK, last_seen=t,
    )


class TestNeighborTable:
    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            NeighborTable(ttl=0)

    def test_update_and_get(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=5, t=1.0))
        assert t.get(5, now=2.0) is not None
        assert t.get(9, now=2.0) is None

    def test_expiry(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=5, t=1.0))
        assert t.get(5, now=4.0) is not None  # exactly at cutoff
        assert t.get(5, now=4.1) is None

    def test_refresh_extends_life(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=5, t=1.0))
        t.update(entry(addr=5, t=5.0))
        assert t.get(5, now=7.0) is not None

    def test_live_entries_sorted_and_filtered(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=9, t=5.0))
        t.update(entry(addr=2, t=5.0))
        t.update(entry(addr=4, t=0.0))  # stale at now=5
        live = t.live_entries(now=5.0)
        assert [e.link_address for e in live] == [2, 9]

    def test_remove(self):
        t = NeighborTable(ttl=3.0)
        t.update(entry(addr=5, t=1.0))
        t.remove(5)
        assert t.get(5, now=1.0) is None
        t.remove(5)  # idempotent

    def test_purge_deletes_expired(self):
        t = NeighborTable(ttl=1.0)
        t.update(entry(addr=1, t=0.0))
        t.update(entry(addr=2, t=10.0))
        assert t.purge(now=10.0) == 1
        assert len(t) == 1

    def test_len(self):
        t = NeighborTable()
        assert len(t) == 0
        t.update(entry(addr=1))
        t.update(entry(addr=2))
        assert len(t) == 2
