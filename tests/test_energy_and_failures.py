"""Tests for energy accounting and node-failure (DoS) support."""

from __future__ import annotations

import pytest

from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.location.service import LocationService
from repro.net.energy import EnergyModel
from repro.net.packet import Packet, PacketKind
from repro.routing.gpsr import GpsrProtocol
from tests.conftest import build_network


class TestEnergyModel:
    def test_airtime_accumulates_on_unicast(self, static_network):
        net = static_network
        b = net.neighbors_of(0)[0]
        before = net.airtime_tx_s
        net.unicast(0, b, Packet(kind=PacketKind.DATA, src=0, dst=b, size_bytes=512))
        net.engine.run()
        assert net.airtime_tx_s > before
        assert net.airtime_rx_s > 0

    def test_broadcast_rx_scales_with_receivers(self, static_network):
        net = static_network
        receivers = net.local_broadcast(
            0, Packet(kind=PacketKind.DATA, src=0, dst=-1, size_bytes=256)
        )
        if receivers:
            per_frame = net.radio.tx_time(256 + 0)  # header inside tx_time
            assert net.airtime_rx_s == pytest.approx(
                net.radio.tx_time(256) * len(receivers)
            )

    def test_crypto_energy_prices_cost_model(self):
        cost = CryptoCostModel()
        cost.pubkey_encrypt(4)
        model = EnergyModel(cpu_power_w=2.0)
        assert model.crypto_energy(cost) == pytest.approx(
            4 * cost.pubkey_encrypt_s * 2.0
        )

    def test_breakdown_sums(self, static_network):
        net = static_network
        cost = CryptoCostModel()
        cost.symmetric_encrypt(10)
        b = net.neighbors_of(0)[0]
        net.unicast(0, b, Packet(kind=PacketKind.DATA, src=0, dst=b, size_bytes=512))
        net.engine.run()
        model = EnergyModel()
        bd = model.breakdown(net, cost)
        assert bd["total_j"] == pytest.approx(
            bd["radio_tx_j"] + bd["radio_rx_j"] + bd["crypto_j"]
        )
        assert bd["total_j"] == pytest.approx(model.total_energy(net, cost))

    def test_hello_airtime_counted(self, static_network):
        net = static_network
        net.start_hello()
        net.engine.run(until=1.0)
        net.stop_hello()
        assert net.airtime_tx_s > 0


class TestNodeFailures:
    def test_failed_node_not_a_neighbor(self, static_network):
        net = static_network
        nbrs = net.neighbors_of(0)
        victim = nbrs[0]
        net.nodes[victim].fail()
        assert victim not in net.neighbors_of(0)
        net.nodes[victim].restore()
        assert victim in net.neighbors_of(0)

    def test_unicast_to_failed_node_fails(self, static_network):
        net = static_network
        b = net.neighbors_of(0)[0]
        net.nodes[b].fail()
        failures = []
        net.unicast(
            0, b,
            Packet(kind=PacketKind.DATA, src=0, dst=b, size_bytes=64),
            on_failed=failures.append,
        )
        net.engine.run()
        assert failures == ["dead-receiver"]

    def test_failed_nodes_skip_beacons(self, static_network):
        net = static_network
        net.nodes[0].fail()
        net.start_hello()
        net.engine.run(until=1.0)
        net.stop_hello()
        # Nobody holds a (fresh) entry for the dead node.
        now = net.engine.now
        for n in net.nodes:
            assert n.neighbors.get(0, now) is None

    def test_routing_heals_around_failures(self):
        """GPSR reroutes around a few dead relays (mobile network)."""
        net = build_network(n_nodes=60, seed=37)
        metrics = MetricsCollector()
        location = LocationService(net, cost_model=CryptoCostModel())
        proto = GpsrProtocol(net, location, metrics)
        net.start_hello()
        net.engine.run(until=0.5)
        # First packet to learn the path.
        proto.send_data(0, 59)
        net.engine.run(until=net.engine.now + 2.0)
        first = metrics.flows()[0]
        victims = [n for n in first.path[1:-1]][:2]
        for v in victims:
            net.nodes[v].fail()
        for _ in range(6):
            proto.send_data(0, 59)
            net.engine.run(until=net.engine.now + 1.5)
        later = [f for f in metrics.flows()[1:]]
        delivered = sum(1 for f in later if f.delivered)
        assert delivered >= len(later) // 2
        # Dead relays carried nothing after the compromise.
        for f in later:
            for v in victims:
                assert v not in f.participants
        location.stop()
