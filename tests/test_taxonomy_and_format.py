"""Tests for the Table-1 taxonomy and the ALERT packet format."""

from __future__ import annotations

from repro.core.packet_format import (
    AlertHeader,
    AlertPacketType,
    SegmentState,
    header_wire_size,
)
from repro.core.zones import Direction
from repro.geometry.primitives import Point, Rect
from repro.routing.taxonomy import PROTOCOL_TAXONOMY, format_taxonomy


def make_header(**kw):
    defaults = dict(
        ptype=AlertPacketType.RREQ,
        p_src=b"s" * 20,
        p_dst=b"d" * 20,
        zone_dst=Rect(0, 0, 100, 100),
        zone_src_enc=b"e" * 32,
        td=Point(50, 50),
        h=2,
        h_max=5,
        direction=Direction.VERTICAL,
    )
    defaults.update(kw)
    return AlertHeader(**defaults)


class TestTaxonomy:
    def test_paper_rows_present(self):
        names = {e.name for e in PROTOCOL_TAXONOMY}
        for expected in ("MASK", "ANODR", "AO2P", "ZAP", "ALARM", "ALERT"):
            assert expected in names

    def test_alert_is_the_only_full_package(self):
        """Table 1's point: only ALERT has identity + location + route
        anonymity for both endpoints."""
        full = [
            e for e in PROTOCOL_TAXONOMY
            if e.route_anonymity
            and "source" in e.identity_anonymity
            and "destination" in e.identity_anonymity
            and "source" in e.location_anonymity
            and "destination" in e.location_anonymity
        ]
        assert [e.name for e in full] == ["ALERT"]

    def test_hop_by_hop_geographic_rows_lack_route_anonymity(self):
        for e in PROTOCOL_TAXONOMY:
            if e.mechanism == "Hop-by-hop encryption" and e.routing == "Geographic":
                assert not e.route_anonymity

    def test_format_renders_all_rows(self):
        text = format_taxonomy()
        assert len(text.splitlines()) == len(PROTOCOL_TAXONOMY) + 2
        assert "Route anonymity" in text


class TestAlertHeader:
    def test_flip_direction(self):
        h = make_header(direction=Direction.VERTICAL)
        h.flip_direction()
        assert h.direction is Direction.HORIZONTAL

    def test_clone_is_independent(self):
        h = make_header()
        h.bitmap_chain.append(b"one")
        c = h.clone()
        c.zone_stage = 2
        c.bitmap_chain.append(b"two")
        c.segment.ttl = 0
        assert h.zone_stage == 0
        assert h.bitmap_chain == [b"one"]
        assert h.segment.ttl != 0 or h.segment.ttl == c.segment.ttl + 0  # unchanged
        assert c.bitmap_chain == [b"one", b"two"]

    def test_clone_preserves_fields(self):
        h = make_header(seq=7, session=3, rf_rounds=2, fallback=True)
        c = h.clone()
        assert (c.seq, c.session, c.rf_rounds, c.fallback) == (7, 3, 2, True)
        assert c.zone_dst == h.zone_dst

    def test_wire_size_counts_variable_fields(self):
        h = make_header()
        base = header_wire_size(h, 512)
        h.bitmap_chain.append(b"x" * 40)
        assert header_wire_size(h, 512) == base + 40
        h2 = make_header(wrapped_key=b"k" * 16)
        assert header_wire_size(h2, 512) == base + 16

    def test_wire_size_scales_with_data(self):
        h = make_header()
        assert header_wire_size(h, 1024) == header_wire_size(h, 512) + 512

    def test_segment_state_defaults(self):
        s = SegmentState()
        assert s.ttl == 10 and s.prev_pos is None and s.retries == 0
