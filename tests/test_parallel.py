"""Tests for the process-parallel experiment executor."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    Cell,
    parallel_map_cells,
    run_many_parallel,
    worker_count,
)
from repro.experiments.runner import run_many, seed_for_run
from repro.experiments.sweeps import (
    metric_delivery_rate,
    metric_mean_hops,
    sweep_metric,
)

SMALL = ExperimentConfig(
    n_nodes=30, duration=5.0, n_pairs=2, field_size=600.0, seed=5
)


def _exploding_metric(result):
    """Module-level (hence picklable) metric that dies in the worker."""
    raise RuntimeError("metric exploded in worker")


def _conditionally_exploding_metric(result):
    """Fails only for one seed, so some siblings succeed first."""
    if result.config.seed == seed_for_run(SMALL, 1):
        raise RuntimeError("metric exploded for seed 1")
    return result.delivery_rate


class TestWorkerCount:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert worker_count() == 3

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert worker_count() == 1

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert worker_count() == (os.cpu_count() or 1)

    def test_non_numeric_env_raises_clearly(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            worker_count()


class TestSeedDerivation:
    def test_matches_run_many_convention(self):
        cell = Cell(SMALL, metric_delivery_rate, runs=3)
        seeds = [c.seed for c in cell.seed_configs()]
        assert seeds == [seed_for_run(SMALL, i) for i in range(3)]
        assert seeds == [5, 1005, 2005]


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = [
            metric_delivery_rate(r) for r in run_many(SMALL, runs=3)
        ]
        parallel = run_many_parallel(
            SMALL, metric_delivery_rate, runs=3, workers=4
        )
        assert parallel == serial  # exact float equality, not approx

    def test_workers_one_is_serial_fallback(self):
        one = run_many_parallel(SMALL, metric_mean_hops, runs=2, workers=1)
        four = run_many_parallel(SMALL, metric_mean_hops, runs=2, workers=4)
        assert one == four

    def test_lambda_metric_falls_back_to_serial(self):
        # Lambdas cannot cross process boundaries; the executor must
        # degrade to in-process execution, not crash.
        values = run_many_parallel(
            SMALL, lambda r: r.delivery_rate, runs=2, workers=4
        )
        serial = [r.delivery_rate for r in run_many(SMALL, runs=2)]
        assert values == serial

    def test_map_cells_preserves_cell_order(self):
        cells = [
            Cell(SMALL.with_(protocol=p), metric_delivery_rate, runs=2)
            for p in ("ALERT", "GPSR", "ALARM")
        ]
        grouped = parallel_map_cells(cells, workers=4)
        assert len(grouped) == 3
        for cell, values in zip(cells, grouped):
            expected = [
                metric_delivery_rate(r)
                for r in run_many(cell.cfg, runs=cell.runs)
            ]
            assert values == expected


class TestSweepIntegration:
    def test_sweep_metric_parallel_matches_serial(self):
        kwargs = dict(
            x_field="n_nodes",
            x_values=[30, 40],
            protocols=["ALERT", "GPSR"],
            metric=metric_delivery_rate,
            runs=2,
        )
        m1, c1 = sweep_metric(SMALL, workers=1, **kwargs)
        m2, c2 = sweep_metric(SMALL, workers=4, **kwargs)
        assert m1 == m2
        assert c1 == c2

    def test_sweep_metric_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        means, _ = sweep_metric(
            SMALL,
            "speed",
            [2.0],
            ["ALERT"],
            metric_delivery_rate,
            runs=1,
        )
        assert 0.0 <= means["ALERT"][0] <= 1.0


class TestWorkerCrash:
    """A metric raising inside a child process must surface the
    original exception to the caller instead of hanging the pool."""

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="metric exploded in worker"):
            run_many_parallel(SMALL, _exploding_metric, runs=2, workers=2)

    def test_partial_failure_still_propagates(self):
        # One bad seed among good ones: siblings finish, the failure
        # still surfaces with its original type and message.
        with pytest.raises(RuntimeError, match="exploded for seed 1"):
            run_many_parallel(
                SMALL, _conditionally_exploding_metric, runs=3, workers=2
            )

    def test_serial_path_raises_identically(self):
        # workers=1 (the fallback path) must not swallow it either.
        with pytest.raises(RuntimeError, match="metric exploded in worker"):
            run_many_parallel(SMALL, _exploding_metric, runs=1, workers=1)


class TestCellValidation:
    def test_empty_cell_list(self):
        assert parallel_map_cells([], workers=4) == []

    def test_zero_runs_cell(self):
        assert parallel_map_cells(
            [Cell(SMALL, metric_delivery_rate, runs=0)], workers=4
        ) == [[]]

    def test_invalid_sweep_field_raises(self):
        with pytest.raises(Exception):
            sweep_metric(
                SMALL,
                "not_a_field",
                [1],
                ["ALERT"],
                metric_delivery_rate,
                runs=1,
                workers=2,
            )
