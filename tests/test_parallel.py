"""Tests for the process-parallel experiment executor."""

from __future__ import annotations

import logging
import os

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    Cell,
    SweepExecutor,
    get_executor,
    parallel_map_cells,
    run_many_parallel,
    worker_count,
)
from repro.experiments.runner import run_many, seed_for_run
from repro.experiments.sweeps import (
    metric_delivery_rate,
    metric_mean_hops,
    sweep_metric,
)

SMALL = ExperimentConfig(
    n_nodes=30, duration=5.0, n_pairs=2, field_size=600.0, seed=5
)


def _exploding_metric(result):
    """Module-level (hence picklable) metric that dies in the worker."""
    raise RuntimeError("metric exploded in worker")


def _conditionally_exploding_metric(result):
    """Fails only for one seed, so some siblings succeed first."""
    if result.config.seed == seed_for_run(SMALL, 1):
        raise RuntimeError("metric exploded for seed 1")
    return result.delivery_rate


def _series_metric(result):
    """Non-float metric: exercises the pickle fallback transport."""
    return [result.delivery_rate, float(result.config.seed)]


def _int_metric(result):
    """Exact-int metric: must NOT be coerced through the float buffer."""
    return int(result.config.seed)


def _dying_metric(result):
    """Kills the worker process outright (not a Python exception)."""
    os._exit(3)


def _crash_once_metric(result):
    """Kills the worker the first time, succeeds after (via flag file)."""
    flag = os.environ["REPRO_TEST_CRASH_FLAG"]
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os._exit(3)
    return result.delivery_rate


class TestWorkerCount:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert worker_count() == 3

    def test_env_clamped_to_cpu_count(self, monkeypatch):
        # More workers than cores is pure contention (a 4-worker pool
        # on a 1-CPU host ran *slower* than serial); the env resolver
        # clamps, explicit workers= arguments stay honored.
        monkeypatch.setenv("REPRO_WORKERS", "64")
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert worker_count() == 2

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert worker_count() == 1

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert worker_count() == (os.cpu_count() or 1)

    def test_non_numeric_env_raises_clearly(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            worker_count()


class TestSeedDerivation:
    def test_matches_run_many_convention(self):
        cell = Cell(SMALL, metric_delivery_rate, runs=3)
        seeds = [c.seed for c in cell.seed_configs()]
        assert seeds == [seed_for_run(SMALL, i) for i in range(3)]
        assert seeds == [5, 1005, 2005]


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = [
            metric_delivery_rate(r) for r in run_many(SMALL, runs=3)
        ]
        parallel = run_many_parallel(
            SMALL, metric_delivery_rate, runs=3, workers=4
        )
        assert parallel == serial  # exact float equality, not approx

    def test_workers_one_is_serial_fallback(self):
        one = run_many_parallel(SMALL, metric_mean_hops, runs=2, workers=1)
        four = run_many_parallel(SMALL, metric_mean_hops, runs=2, workers=4)
        assert one == four

    def test_lambda_metric_falls_back_to_serial(self):
        # Lambdas cannot cross process boundaries; the executor must
        # degrade to in-process execution, not crash.
        values = run_many_parallel(
            SMALL, lambda r: r.delivery_rate, runs=2, workers=4
        )
        serial = [r.delivery_rate for r in run_many(SMALL, runs=2)]
        assert values == serial

    def test_map_cells_preserves_cell_order(self):
        cells = [
            Cell(SMALL.with_(protocol=p), metric_delivery_rate, runs=2)
            for p in ("ALERT", "GPSR", "ALARM")
        ]
        grouped = parallel_map_cells(cells, workers=4)
        assert len(grouped) == 3
        for cell, values in zip(cells, grouped):
            expected = [
                metric_delivery_rate(r)
                for r in run_many(cell.cfg, runs=cell.runs)
            ]
            assert values == expected


class TestSweepIntegration:
    def test_sweep_metric_parallel_matches_serial(self):
        kwargs = dict(
            x_field="n_nodes",
            x_values=[30, 40],
            protocols=["ALERT", "GPSR"],
            metric=metric_delivery_rate,
            runs=2,
        )
        m1, c1 = sweep_metric(SMALL, workers=1, **kwargs)
        m2, c2 = sweep_metric(SMALL, workers=4, **kwargs)
        assert m1 == m2
        assert c1 == c2

    def test_sweep_metric_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        means, _ = sweep_metric(
            SMALL,
            "speed",
            [2.0],
            ["ALERT"],
            metric_delivery_rate,
            runs=1,
        )
        assert 0.0 <= means["ALERT"][0] <= 1.0


class TestWorkerCrash:
    """A metric raising inside a child process must surface the
    original exception to the caller instead of hanging the pool."""

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="metric exploded in worker"):
            run_many_parallel(SMALL, _exploding_metric, runs=2, workers=2)

    def test_partial_failure_still_propagates(self):
        # One bad seed among good ones: siblings finish, the failure
        # still surfaces with its original type and message.
        with pytest.raises(RuntimeError, match="exploded for seed 1"):
            run_many_parallel(
                SMALL, _conditionally_exploding_metric, runs=3, workers=2
            )

    def test_serial_path_raises_identically(self):
        # workers=1 (the fallback path) must not swallow it either.
        with pytest.raises(RuntimeError, match="metric exploded in worker"):
            run_many_parallel(SMALL, _exploding_metric, runs=1, workers=1)


class TestStreamingCallback:
    def test_callback_fires_once_per_seed_with_final_values(self):
        cells = [
            Cell(SMALL, metric_delivery_rate, runs=2),
            Cell(SMALL.with_(protocol="GPSR"), metric_delivery_rate, runs=3),
        ]
        events: list[tuple[int, int, float]] = []
        grouped = parallel_map_cells(
            cells,
            workers=2,
            on_result=lambda c, s, v: events.append((c, s, v)),
        )
        # Exactly one event per (cell, seed), in any completion order.
        assert sorted((c, s) for c, s, _ in events) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (1, 2),
        ]
        # Each streamed value is the one the grouped result reports.
        for c, s, v in events:
            assert grouped[c][s] == v

    def test_serial_path_streams_in_submission_order(self):
        cells = [
            Cell(SMALL, metric_delivery_rate, runs=2),
            Cell(SMALL.with_(protocol="GPSR"), metric_delivery_rate, runs=1),
        ]
        events: list[tuple[int, int]] = []
        parallel_map_cells(
            cells, workers=1, on_result=lambda c, s, v: events.append((c, s))
        )
        assert events == [(0, 0), (0, 1), (1, 0)]


class TestResultTransport:
    """Shared-memory and pickle transports must agree bit-for-bit."""

    CELLS = staticmethod(
        lambda: [
            Cell(SMALL, metric_delivery_rate, runs=2),
            Cell(SMALL.with_(protocol="GPSR"), metric_mean_hops, runs=2),
        ]
    )

    def test_shm_and_pickle_match_serial(self):
        cells = self.CELLS()
        with SweepExecutor(workers=1) as serial_ex:
            serial = serial_ex.map_cells(cells)
        with SweepExecutor(workers=2, use_shared_memory=True) as shm_ex:
            via_shm = shm_ex.map_cells(cells)
        with SweepExecutor(workers=2, use_shared_memory=False) as pkl_ex:
            via_pickle = pkl_ex.map_cells(cells)
        assert via_shm == serial  # exact equality, not approx
        assert via_pickle == serial
        for group in via_shm:
            assert all(type(v) is float for v in group)

    def test_non_float_metric_uses_pickle_fallback(self):
        # Lists can't ride the float64 buffer; they must still arrive
        # intact (and identical to serial) via the pickle path.
        cell = Cell(SMALL, _series_metric, runs=2)
        with SweepExecutor(workers=2) as ex:
            parallel = ex.map_cells([cell])[0]
        serial = [_series_metric(r) for r in run_many(SMALL, runs=2)]
        assert parallel == serial
        assert all(type(v) is list for v in parallel)

    def test_int_metric_keeps_its_type(self):
        # Exact ints must not come back coerced to float64.
        cell = Cell(SMALL, _int_metric, runs=2)
        with SweepExecutor(workers=2) as ex:
            parallel = ex.map_cells([cell])[0]
        assert parallel == [seed_for_run(SMALL, 0), seed_for_run(SMALL, 1)]
        assert all(type(v) is int for v in parallel)

    def test_warm_pool_is_reused_across_calls(self):
        with SweepExecutor(workers=2) as ex:
            ex.map_cells([Cell(SMALL, metric_delivery_rate, runs=2)])
            pool = ex._pool
            assert pool is not None
            ex.map_cells([Cell(SMALL, metric_delivery_rate, runs=2)])
            assert ex._pool is pool  # same warm pool, no respawn


class TestPoolRetryOnWorkerDeath:
    """A dying worker (not a Python exception) gets one fresh-pool retry."""

    def test_persistent_crash_raises_after_one_retry(self):
        with SweepExecutor(workers=2) as ex:
            with pytest.raises(BrokenProcessPool):
                ex.map_cells([Cell(SMALL, _dying_metric, runs=2)])
            assert ex.pool_restarts == 1

    def test_transient_crash_recovers_on_fresh_pool(
        self, tmp_path, monkeypatch
    ):
        flag = tmp_path / "crashed-once"
        monkeypatch.setenv("REPRO_TEST_CRASH_FLAG", str(flag))
        with SweepExecutor(workers=2) as ex:
            values = ex.map_cells([Cell(SMALL, _crash_once_metric, runs=2)])[0]
            assert ex.pool_restarts == 1
        assert flag.exists()
        serial = [r.delivery_rate for r in run_many(SMALL, runs=2)]
        assert values == serial  # retried seeds still bit-identical


class TestSerialDegradeLogging:
    def test_unpicklable_metric_warns_once_per_executor(self, caplog):
        # runs=2 so the pool path is considered (a single payload runs
        # serially by design, without any degrade warning).
        cells = [Cell(SMALL, lambda r: r.delivery_rate, runs=2)]
        with SweepExecutor(workers=2) as ex:
            with caplog.at_level(
                logging.WARNING, logger="repro.experiments.parallel"
            ):
                ex.map_cells(cells)
                ex.map_cells(cells)  # second degrade: no second warning
        degraded = [
            r for r in caplog.records if "serial" in r.getMessage()
        ]
        assert len(degraded) == 1
        assert "not picklable" in degraded[0].getMessage()


class TestColdPoolBreakEven:
    """Env-resolved sweeps too small to amortise a pool spawn degrade
    to serial (with one logged notice); explicit ``workers=`` and warm
    pools never degrade."""

    def test_small_env_sweep_stays_serial(self, monkeypatch, caplog):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with SweepExecutor() as ex:
            with caplog.at_level(
                logging.WARNING, logger="repro.experiments.parallel"
            ):
                values = ex.map_cells(
                    [Cell(SMALL, metric_delivery_rate, runs=2)]
                )
            assert ex._pool is None  # never spawned
        assert any("break-even" in r.getMessage() for r in caplog.records)
        serial = [metric_delivery_rate(r) for r in run_many(SMALL, runs=2)]
        assert values == [serial]

    def test_explicit_workers_spawn_pool_below_breakeven(self):
        with SweepExecutor(workers=2) as ex:
            ex.map_cells([Cell(SMALL, metric_delivery_rate, runs=2)])
            assert ex._pool is not None


class TestSharedPositionSegment:
    """Co-seeded cells share one t=0 deployment through shared memory."""

    def test_refs_cover_co_seeded_cells(self):
        import numpy as np

        from repro.experiments.runner import initial_positions_for

        cells = [
            Cell(SMALL, metric_delivery_rate, runs=2),
            Cell(SMALL.with_(protocol="GPSR"), metric_delivery_rate, runs=2),
        ]
        payloads = []
        for cell in cells:
            for cfg in cell.seed_configs():
                payloads.append(
                    (len(payloads), None, cfg, cell.metric, None)
                )
        ex = SweepExecutor(workers=2)
        pos_shm, refs = ex._build_position_segment(payloads)
        assert pos_shm is not None and refs is not None
        try:
            # Same seed across protocols shares; different seeds don't.
            assert refs[0] == refs[2]
            assert refs[1] == refs[3]
            assert refs[0] != refs[1]
            name, offset, n = refs[0]
            assert name == pos_shm.name
            assert n == SMALL.n_nodes
            view = np.ndarray(
                (n, 2), dtype=np.float64, buffer=pos_shm.buf, offset=offset
            )
            np.testing.assert_array_equal(
                view, initial_positions_for(payloads[0][2])
            )
        finally:
            pos_shm.close()
            pos_shm.unlink()

    def test_unique_signatures_share_nothing(self):
        cell = Cell(SMALL, metric_delivery_rate, runs=3)
        payloads = [
            (i, None, cfg, cell.metric, None)
            for i, cfg in enumerate(cell.seed_configs())
        ]
        pos_shm, refs = SweepExecutor()._build_position_segment(payloads)
        assert pos_shm is None and refs is None

    def test_co_seeded_parallel_matches_serial(self):
        # End to end through the pool: the shared-deployment path must
        # stay bit-identical to serial execution.
        cells = [
            Cell(SMALL, metric_delivery_rate, runs=2),
            Cell(SMALL.with_(protocol="GPSR"), metric_delivery_rate, runs=2),
        ]
        with SweepExecutor(workers=2) as ex:
            parallel = ex.map_cells(cells)
        serial = [
            [metric_delivery_rate(r) for r in run_many(c.cfg, runs=2)]
            for c in cells
        ]
        assert parallel == serial


class TestCellValidation:
    def test_empty_cell_list(self):
        assert parallel_map_cells([], workers=4) == []

    def test_zero_runs_cell(self):
        assert parallel_map_cells(
            [Cell(SMALL, metric_delivery_rate, runs=0)], workers=4
        ) == [[]]

    def test_invalid_sweep_field_raises(self):
        with pytest.raises(Exception):
            sweep_metric(
                SMALL,
                "not_a_field",
                [1],
                ["ALERT"],
                metric_delivery_rate,
                runs=1,
                workers=2,
            )
