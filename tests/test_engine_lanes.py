"""Batch-execution fast lane: ordering, accounting, and lane parity.

The engine's large-field lanes — the calendar-queue timer lane and
batched ``OP_DELIVER_BATCH`` records — claim *by-construction* identity
with plain heap scheduling: sequence numbers come from one shared
counter and the pop loop fires the globally smallest
``(time, priority, seq)`` across every structure.  This suite pins that
claim three ways:

* deterministic ordering tests — ``run(until)`` semantics, ``stop()``
  between records of a batch, ``pending()`` accounting mid-batch,
  cancellation during a batch, ``step()`` granularity, and the
  calendar demote path (a new timer landing *before* the promoted
  bucket);
* a Hypothesis differential property — an ``Engine(timer_lane=True)``
  and an ``Engine(timer_lane=False)`` driven by one randomly generated
  schedule of periodic tasks (jittered and not, interval changes
  mid-run, mid-run stops) must produce identical firing logs, clocks,
  counters, and pending counts;
* batch-vs-individual differential tests — a broadcast fan-out
  scheduled as one batch record must be indistinguishable from the
  same fan-out scheduled as individual delivery records, including
  around re-entrant same-time scheduling.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import PeriodicTask


class _Sink:
    """Delivery target that logs ``deliver`` calls with the clock."""

    def __init__(self, engine: Engine, log: list, name: str) -> None:
        self._engine = engine
        self._log = log
        self.name = name

    def deliver(self, packet) -> None:
        self._log.append(("deliver", self.name, packet, self._engine.now))


class _StoppingSink(_Sink):
    """Stops the engine from inside its delivery."""

    def deliver(self, packet) -> None:
        super().deliver(packet)
        self._engine.stop()


class TestBatchRecords:
    def test_batch_fires_in_reserved_sequence_positions(self):
        """A batch behaves exactly like n individual pushes.

        An event scheduled *after* the batch at the same (time,
        priority) must fire after the whole block — its sequence number
        is higher than every reserved one.
        """
        eng = Engine()
        log: list = []
        sinks = [_Sink(eng, log, f"s{i}") for i in range(3)]
        eng.schedule_deliver_batch(1.0, sinks, ["a", "b", "c"])
        eng.schedule_at(1.0, lambda: log.append(("after", eng.now)))
        eng.schedule_at(
            1.0, lambda: log.append(("prio", eng.now)), priority=-1
        )
        eng.run()
        assert log == [
            ("prio", 1.0),
            ("deliver", "s0", "a", 1.0),
            ("deliver", "s1", "b", 1.0),
            ("deliver", "s2", "c", 1.0),
            ("after", 1.0),
        ]
        assert eng.events_processed == 5

    def test_batch_matches_individual_records(self):
        """Differential: batch vs n schedule_deliver calls."""

        def drive(batched: bool):
            eng = Engine()
            log: list = []
            sinks = [_Sink(eng, log, f"s{i}") for i in range(4)]
            if batched:
                eng.schedule_deliver_batch(
                    0.5, sinks, list("wxyz"), category="data"
                )
            else:
                for s, p in zip(sinks, "wxyz"):
                    eng.schedule_deliver(0.5, s, p, category="data")
            eng.schedule_at(0.25, lambda: log.append(("early", eng.now)))
            eng.run()
            return log, eng.events_processed, dict(eng.event_counts)

        assert drive(True) == drive(False)

    def test_pending_counts_batch_records_individually(self):
        eng = Engine()
        log: list = []
        sinks = [_Sink(eng, log, f"s{i}") for i in range(5)]
        eng.schedule_deliver_batch(1.0, sinks, list(range(5)))
        assert eng.pending() == 5
        eng.schedule_deliver_batch(2.0, sinks[:1], ["solo"])
        assert eng.pending() == 6  # n == 1 collapses to a plain record
        eng.run()
        assert eng.pending() == 0
        assert eng.events_processed == 6

    def test_stop_mid_batch_requeues_tail_under_reserved_seqs(self):
        eng = Engine()
        log: list = []
        sinks = [
            _Sink(eng, log, "s0"),
            _StoppingSink(eng, log, "s1"),
            _Sink(eng, log, "s2"),
            _Sink(eng, log, "s3"),
        ]
        eng.schedule_deliver_batch(1.0, sinks, list("abcd"))
        # Scheduled after the batch: must still fire after the whole
        # block even though the block is interrupted and resumed.
        eng.schedule_at(1.0, lambda: log.append(("after", eng.now)))
        eng.run()
        assert [e[1] for e in log if e[0] == "deliver"] == ["s0", "s1"]
        assert eng.events_processed == 2
        # the two unfired records (plus the callback) survive the stop
        assert eng.pending() == 3
        assert eng.now == 1.0
        eng.run()
        assert [e[1] for e in log if e[0] == "deliver"] == [
            "s0", "s1", "s2", "s3"
        ]
        assert log[-1] == ("after", 1.0)
        assert eng.pending() == 0
        assert eng.events_processed == 5

    def test_cancel_during_batch_takes_effect(self):
        """A batch delivery cancelling a later heap event really stops it."""
        eng = Engine()
        log: list = []
        handle_box: dict = {}

        class _Canceller(_Sink):
            def deliver(self, packet) -> None:
                super().deliver(packet)
                handle_box["h"].cancel()

        sinks = [_Canceller(eng, log, "s0"), _Sink(eng, log, "s1")]
        eng.schedule_deliver_batch(1.0, sinks, ["a", "b"])
        handle_box["h"] = eng.schedule_at(
            1.5, lambda: log.append(("doomed", eng.now))
        )
        eng.run()
        assert ("doomed", 1.5) not in log
        assert [e[1] for e in log if e[0] == "deliver"] == ["s0", "s1"]
        assert eng.pending() == 0

    def test_step_granularity_is_one_record(self):
        eng = Engine()
        log: list = []
        sinks = [_Sink(eng, log, f"s{i}") for i in range(3)]
        eng.schedule_deliver_batch(1.0, sinks, list("abc"))
        assert eng.step() is True
        assert len(log) == 1 and eng.pending() == 2
        assert eng.step() is True
        assert eng.step() is True
        assert eng.step() is False
        assert [e[1] for e in log] == ["s0", "s1", "s2"]
        assert eng.events_processed == 3

    def test_run_until_excludes_future_batch(self):
        eng = Engine()
        log: list = []
        sinks = [_Sink(eng, log, "s")]
        eng.schedule_deliver_batch(2.0, sinks * 2, ["a", "b"])
        eng.run(until=1.0)
        assert log == []
        assert eng.now == 1.0
        assert eng.pending() == 2

    def test_batch_validation(self):
        eng = Engine()
        sink = _Sink(eng, [], "s")
        with pytest.raises(SimulationError):
            eng.schedule_deliver_batch(1.0, [sink], ["a", "b"])
        with pytest.raises(SimulationError):
            eng.schedule_deliver_batch(float("nan"), [sink], ["a"])
        eng.schedule_at(1.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_deliver_batch(0.5, [sink], ["a"])
        # empty batches are a no-op, not an error
        eng.schedule_deliver_batch(2.0, [], [])
        assert eng.pending() == 0


class TestCalendarLane:
    def test_timer_orders_against_heap_events(self):
        eng = Engine()
        log: list = []
        eng.schedule_timer_in(1.0, lambda: log.append(("timer", eng.now)))
        eng.schedule_in(1.0, lambda: log.append(("heap", eng.now)))
        eng.schedule_in(0.5, lambda: log.append(("early", eng.now)))
        eng.run()
        # same time: the timer was scheduled first, so it fires first
        assert log == [("early", 0.5), ("timer", 1.0), ("heap", 1.0)]

    def test_demote_path_preserves_order(self):
        """A timer landing before the promoted bucket still fires in order.

        Promote a far bucket by exhausting everything before it, then —
        from inside a callback — schedule a timer into an *earlier*
        bucket.  The promoted run's unfired tail must be demoted and
        both fire in time order.
        """
        eng = Engine()
        log: list = []
        # two timers in bucket [5, 6): promoted together
        eng.schedule_timer_in(5.1, lambda: log.append(("t5.1", eng.now)))
        eng.schedule_timer_in(5.9, lambda: log.append(("t5.9", eng.now)))

        def plant_earlier():
            # now == 5.1 < 5.9; bucket key int(5.5) == 5 equals the
            # promoted key, and key 2 < 5 exercises the demote branch
            eng.schedule_timer_in(0.0, lambda: log.append(("t5.1b", eng.now)))

        # fires at 5.1 *after* t5.1 (scheduled later at equal time)
        eng.schedule_timer_in(5.1, plant_earlier)
        eng.run()
        assert log == [("t5.1", 5.1), ("t5.1b", 5.1), ("t5.9", 5.9)]

    def test_demote_to_strictly_earlier_bucket(self):
        eng = Engine()
        log: list = []
        eng.schedule_timer_in(5.5, lambda: log.append(("late", eng.now)))

        def plant():
            eng.schedule_timer_in(2.0, lambda: log.append(("mid", eng.now)))

        eng.schedule_in(0.1, plant)
        # force promotion of bucket 5 before t=0.1 by peeking: run a
        # no-op event first so the loop peeks the calendar head
        eng.schedule_in(0.05, lambda: None)
        eng.run()
        assert log == [("mid", 2.1), ("late", 5.5)]

    def test_cancelled_timer_accounting(self):
        eng = Engine()
        log: list = []
        h1 = eng.schedule_timer_in(1.0, lambda: log.append("a"))
        eng.schedule_timer_in(2.0, lambda: log.append("b"))
        assert eng.pending() == 2
        h1.cancel()
        h1.cancel()  # idempotent
        assert eng.pending() == 1
        eng.run()
        assert log == ["b"]
        assert eng.pending() == 0
        assert eng.events_processed == 1

    def test_run_until_leaves_timer_lane_intact(self):
        eng = Engine()
        log: list = []
        PeriodicTask(eng, 1.0, lambda: log.append(eng.now))
        eng.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert eng.now == 3.5
        assert eng.pending() == 1  # next tick at 4.0 still queued
        eng.run(until=4.0)
        assert log == [1.0, 2.0, 3.0, 4.0]


class TestAdaptiveBucketWidth:
    """The calendar lane re-keys its bucket width to the dominant
    registered period — only while empty, so no existing key can be
    invalidated.  Firing order is width-independent by construction
    (the parity suite below pins it); these tests pin the width
    mechanics themselves."""

    def test_width_adapts_to_first_registered_period(self):
        eng = Engine(seed=1, timer_lane=True)
        assert eng._cal_width == 1.0
        PeriodicTask(eng, 0.25, lambda: None)
        assert eng._cal_width == 0.25

    def test_no_rekey_while_lane_occupied(self):
        eng = Engine(seed=1, timer_lane=True)
        PeriodicTask(eng, 0.25, lambda: None)
        # The first task's pending tick occupies the lane: a second
        # period may vote but must not re-key under live entries.
        PeriodicTask(eng, 0.5, lambda: None)
        assert eng._cal_width == 0.25
        assert eng._cal_period_votes == {0.25: 1, 0.5: 1}

    def test_rekey_to_majority_once_lane_drains(self):
        eng = Engine(seed=1, timer_lane=True)
        fast = PeriodicTask(eng, 0.25, lambda: None)
        slow_a = PeriodicTask(eng, 0.5, lambda: None)
        slow_b = PeriodicTask(eng, 0.5, lambda: None, start_offset=0.3)
        eng.run(until=2.0)
        for task in (fast, slow_a, slow_b):
            task.stop()
        # Reschedules during the run voted 0.5 into the majority; the
        # next registration on the drained lane re-keys to it.
        eng.run(until=5.0)
        PeriodicTask(eng, 0.5, lambda: None)
        assert eng._cal_width == 0.5

    def test_width_floor_defangs_degenerate_periods(self):
        eng = Engine(seed=1, timer_lane=True)
        PeriodicTask(eng, 1e-9, lambda: None)
        assert eng._cal_width == 1e-6

    def test_heap_engine_collects_no_votes(self):
        eng = Engine(seed=1, timer_lane=False)
        PeriodicTask(eng, 0.25, lambda: None)
        assert eng._cal_period_votes == {}
        assert eng._cal_width == 1.0


# --------------------------------------------------------------------------
# Hypothesis: lane parity under arbitrary periodic schedules
# --------------------------------------------------------------------------

TASK = st.tuples(
    st.floats(min_value=0.05, max_value=3.0),   # interval
    st.floats(min_value=0.0, max_value=2.0),    # start offset
    st.booleans(),                              # jittered?
    st.integers(min_value=-1, max_value=20),    # stop after k ticks (-1: never)
    st.one_of(                                  # set_interval at tick 2
        st.none(), st.floats(min_value=0.05, max_value=3.0)
    ),
)


def _drive(timer_lane: bool, specs, until: float):
    eng = Engine(seed=42, timer_lane=timer_lane)
    log: list = []
    tasks: list[PeriodicTask] = []

    def make_cb(k: int, stop_after: int, new_interval):
        def cb() -> None:
            task = tasks[k]
            log.append((k, eng.now, eng.events_processed))
            if new_interval is not None and task.ticks == 2:
                task.set_interval(new_interval)
            if task.ticks == stop_after:
                task.stop()

        return cb

    for k, (interval, offset, jittered, stop_after, new_interval) in enumerate(
        specs
    ):
        tasks.append(
            PeriodicTask(
                eng,
                interval,
                make_cb(k, stop_after, new_interval),
                jitter=0.2 * interval if jittered else 0.0,
                rng=eng.rng.stream(f"jit{k}") if jittered else None,
                start_offset=offset,
            )
        )
    eng.run(until=until)
    return log, eng.now, eng.events_processed, eng.pending()


class TestLaneParity:
    @settings(max_examples=60, deadline=None)
    @given(
        specs=st.lists(TASK, min_size=1, max_size=5),
        until=st.floats(min_value=0.5, max_value=12.0),
    )
    def test_calendar_and_heap_fire_identically(self, specs, until):
        assert _drive(True, specs, until) == _drive(False, specs, until)

    @settings(max_examples=60, deadline=None)
    @given(
        period=st.floats(min_value=0.01, max_value=2.5),
        n_tasks=st.integers(min_value=1, max_value=5),
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=1.5), min_size=5, max_size=5
        ),
        until=st.floats(min_value=0.5, max_value=10.0),
    )
    def test_non_unit_dominant_period_parity(
        self, period, n_tasks, offsets, until
    ):
        """A non-1 s dominant period re-keys the bucket width (every
        vote agrees, and the lane starts empty), and firing stays
        identical to the heap — width only ever changes occupancy."""
        specs = [
            (period, offsets[k], False, -1, None) for k in range(n_tasks)
        ]
        assert _drive(True, specs, until) == _drive(False, specs, until)

    @settings(max_examples=40, deadline=None)
    @given(
        specs=st.lists(TASK, min_size=1, max_size=4),
        split=st.floats(min_value=0.3, max_value=5.0),
        tail=st.floats(min_value=0.1, max_value=6.0),
    )
    def test_parity_survives_run_resume(self, specs, split, tail):
        """Two runs with an intermediate horizon match one long run."""

        def drive_split(timer_lane: bool):
            eng = Engine(seed=42, timer_lane=timer_lane)
            log: list = []
            tasks: list[PeriodicTask] = []
            for k, (interval, offset, jittered, stop_after, _) in enumerate(
                specs
            ):
                def make_cb(k=k, stop_after=stop_after):
                    def cb() -> None:
                        log.append((k, eng.now))
                        if tasks[k].ticks == stop_after:
                            tasks[k].stop()

                    return cb

                tasks.append(
                    PeriodicTask(
                        eng,
                        interval,
                        make_cb(),
                        jitter=0.2 * interval if jittered else 0.0,
                        rng=eng.rng.stream(f"jit{k}") if jittered else None,
                        start_offset=offset,
                    )
                )
            eng.run(until=split)
            mid = (eng.now, eng.pending(), list(log))
            eng.run(until=split + tail)
            return mid, log, eng.now, eng.events_processed, eng.pending()

        assert drive_split(True) == drive_split(False)
