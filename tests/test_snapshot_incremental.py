"""Network.snapshot() incremental maintenance and staleness semantics."""

from __future__ import annotations

import numpy as np

from repro.geometry.field import Field
from repro.geometry.spatial_index import GridIndex
from repro.mobility.base import positions_at
from repro.mobility.random_waypoint import RandomWaypoint
from repro.net.network import Network
from repro.sim.engine import Engine

from tests.conftest import build_network
from tests.oracles import NaiveIndex, assert_same_answers


def _make_network(n_nodes=60, speed=2.0, snapshot_resolution=0.2, seed=9):
    engine = Engine(seed=seed)
    fld = Field(1000.0, 1000.0)
    return Network(
        engine,
        fld,
        lambda i, rng: RandomWaypoint(fld, rng, speed_min=speed, speed_max=speed),
        n_nodes,
        snapshot_resolution=snapshot_resolution,
    )


def _assert_snapshot_correct(net: Network) -> None:
    """The cached snapshot equals a from-scratch build at ``now``."""
    pos, index = net.snapshot()
    expected = positions_at([n.mobility for n in net.nodes], net.engine.now)
    np.testing.assert_array_equal(pos, expected)
    fresh = GridIndex(expected.copy(), net.radio.range_m)
    naive = NaiveIndex(expected, net.radio.range_m)
    rng = np.random.default_rng(0)
    for _ in range(10):
        x, y = rng.uniform(-50, 1050, size=2)
        assert_same_answers([naive, index, fresh], "query_radius", x, y, 250.0)
        assert_same_answers(
            [naive, index, fresh], "query_rect", x - 100, y - 100, x + 100, y + 100
        )
        assert_same_answers([naive, index, fresh], "nearest", x, y, None)


class TestIncrementalSnapshot:
    def test_slow_nodes_refresh_incrementally(self):
        # At 2 m/s and 0.25 s steps nobody crosses a 250 m cell, so
        # after the initial build every refresh takes the diff path.
        net = _make_network(speed=2.0)
        net.snapshot()
        assert net.snapshot_rebuilds == 1
        for k in range(10):
            net.engine._now += 0.25
            _assert_snapshot_correct(net)
        assert net.snapshot_rebuilds == 1
        assert net.snapshot_incremental == 10

    def test_large_jump_falls_back_to_rebuild(self):
        # A 500 s jump moves (essentially) every node to a new cell:
        # the >30% cell-crossing guard must trigger a full rebuild.
        net = _make_network(speed=8.0)
        net.snapshot()
        net.engine._now += 500.0
        _assert_snapshot_correct(net)
        assert net.snapshot_rebuilds == 2
        assert net.snapshot_incremental == 0

    def test_within_resolution_reuses_cache(self):
        net = _make_network(snapshot_resolution=0.2)
        pos1, idx1 = net.snapshot()
        net.engine._now += 0.1
        pos2, idx2 = net.snapshot()
        assert idx2 is idx1 and pos2 is pos1

    def test_incremental_path_result_identical_over_a_run(self):
        # Mixed refreshes over a long mobile run stay correct.
        net = _make_network(n_nodes=40, speed=8.0, snapshot_resolution=0.5)
        for k in range(30):
            net.engine._now += 0.7 if k % 5 else 13.0
            _assert_snapshot_correct(net)
        assert net.snapshot_incremental > 0  # diff path actually ran

    def test_state_change_forces_full_rebuild_next_refresh(self):
        net = _make_network()
        net.snapshot()
        net.nodes[3].fail()
        net.engine._now += 0.25
        net.snapshot()
        assert net.snapshot_rebuilds == 2
        assert net.snapshot_incremental == 0
        # Redundant fail() on an already-dead node must not re-arm the
        # rebuild flag.
        net.nodes[3].fail()
        assert not net._snapshot_force_rebuild
        net.engine._now += 0.25
        net.snapshot()
        assert net.snapshot_incremental == 1
        net.nodes[3].restore()
        assert net._snapshot_force_rebuild

    def test_state_change_does_not_invalidate_fresh_cache(self):
        # fail() marks the *next* refresh for rebuild but, exactly like
        # the pre-incremental behaviour, does not age out the cache.
        net = _make_network(snapshot_resolution=0.2)
        pos1, idx1 = net.snapshot()
        net.nodes[0].fail()
        pos2, idx2 = net.snapshot()
        assert idx2 is idx1

    def test_neighbors_of_matches_oracle_after_incremental_updates(self):
        net = build_network(n_nodes=50, seed=13)
        for k in range(8):
            net.engine._now += 0.3
            _, index = net.snapshot()
            for nid in range(0, 50, 7):
                p = net.position_of(nid)
                naive = NaiveIndex(index.positions, net.radio.range_m)
                got = set(net.neighbors_of(nid))
                want = {
                    int(i)
                    for i in naive.query_radius(p.x, p.y, net.radio.range_m)
                    if i != nid
                }
                assert got == want


class TestStalenessSemantics:
    def test_zero_resolution_means_always_fresh(self):
        # Satellite fix: with snapshot_resolution=0.0 a second query at
        # the same timestamp used to reuse a cache built *before* a
        # state change; `>=` staleness makes it rebuild every call.
        net = _make_network(snapshot_resolution=0.0)
        net.snapshot()
        net.snapshot()
        # Both calls refreshed (second one via the no-change diff path);
        # before the `>=` fix the second call reused the cache without
        # re-checking positions at all.
        assert net.snapshot_rebuilds + net.snapshot_incremental == 2
        # And a fractional time step — smaller than any non-zero
        # resolution would allow — is picked up immediately.
        net.engine._now += 1e-6
        pos, _ = net.snapshot()
        assert net.snapshot_rebuilds + net.snapshot_incremental == 3

    def test_exact_age_boundary_refreshes(self):
        net = _make_network(snapshot_resolution=0.2)
        net.snapshot()
        net.engine._now += 0.2  # age == resolution: stale, not fresh
        net.snapshot()
        assert net.snapshot_rebuilds + net.snapshot_incremental == 2

    def test_zero_resolution_sees_state_changes_immediately(self):
        net = _make_network(snapshot_resolution=0.0)
        net.snapshot()
        net.nodes[5].fail()
        assert 5 not in net.neighbors_of(net.node_nearest_to(net.position_of(5), exclude=5))
