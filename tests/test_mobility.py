"""Tests for mobility models and the trajectory machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.field import Field
from repro.geometry.primitives import Point
from repro.mobility.base import Segment, Trajectory
from repro.mobility.group_mobility import GroupMobility, GroupReference, make_group_mobility
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.static import StaticPosition


class TestSegment:
    def test_interpolation(self):
        s = Segment(0.0, 10.0, Point(0, 0), Point(10, 20))
        assert s.at(5.0) == Point(5, 10)

    def test_clamps_outside_range(self):
        s = Segment(0.0, 10.0, Point(0, 0), Point(10, 0))
        assert s.at(-1.0) == Point(0, 0)
        assert s.at(11.0) == Point(10, 0)

    def test_pause_segment(self):
        s = Segment(2.0, 2.0, Point(3, 3), Point(3, 3))
        assert s.at(2.0) == Point(3, 3)


class TestTrajectory:
    def test_empty_returns_origin(self):
        t = Trajectory(Point(1, 2))
        assert t.at(5.0) == Point(1, 2)

    def test_non_contiguous_append_raises(self):
        t = Trajectory(Point(0, 0))
        t.append(Segment(0, 1, Point(0, 0), Point(1, 0)))
        with pytest.raises(ValueError):
            t.append(Segment(2, 3, Point(1, 0), Point(2, 0)))

    def test_bisect_lookup(self):
        t = Trajectory(Point(0, 0))
        t.append(Segment(0, 1, Point(0, 0), Point(1, 0)))
        t.append(Segment(1, 2, Point(1, 0), Point(1, 1)))
        assert t.at(0.5) == Point(0.5, 0)
        assert t.at(1.5) == Point(1, 0.5)

    def test_stalled_extend_raises(self):
        t = Trajectory(Point(0, 0))
        with pytest.raises(RuntimeError):
            t.ensure(1.0, lambda: None)


class TestRandomWaypoint:
    def _model(self, seed=0, **kw):
        fld = Field(1000, 1000)
        rng = np.random.default_rng(seed)
        return fld, RandomWaypoint(fld, rng, **kw)

    def test_invalid_speed_raises(self):
        fld = Field(100, 100)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RandomWaypoint(fld, rng, speed_min=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(fld, rng, speed_min=5.0, speed_max=2.0)
        with pytest.raises(ValueError):
            RandomWaypoint(fld, rng, pause_time=-1.0)

    def test_stays_in_field(self):
        fld, m = self._model(seed=2)
        for t in np.linspace(0, 500, 200):
            assert fld.contains(m.position(float(t)))

    def test_respects_speed(self):
        _, m = self._model(seed=3, speed_min=2.0, speed_max=2.0)
        dt = 0.5
        for t in np.arange(0, 100, dt):
            a = m.position(float(t))
            b = m.position(float(t + dt))
            assert a.distance_to(b) <= 2.0 * dt + 1e-9

    def test_deterministic_given_seed(self):
        _, m1 = self._model(seed=7)
        _, m2 = self._model(seed=7)
        for t in (0.0, 13.7, 99.2):
            assert m1.position(t) == m2.position(t)

    def test_backward_queries_consistent(self):
        _, m = self._model(seed=8)
        late = m.position(200.0)
        early = m.position(10.0)
        assert m.position(200.0) == late
        assert m.position(10.0) == early

    def test_fixed_origin(self):
        fld = Field(100, 100)
        m = RandomWaypoint(fld, np.random.default_rng(1), origin=Point(50, 50))
        assert m.position(0.0) == Point(50, 50)

    def test_pause_time_dwells(self):
        fld = Field(100, 100)
        m = RandomWaypoint(
            fld, np.random.default_rng(4), speed_min=10, speed_max=10, pause_time=5.0
        )
        # Scan for an interval where the node does not move (the pause).
        ts = np.linspace(0, 120, 2400)
        stationary = 0
        prev = m.position(0.0)
        for t in ts[1:]:
            cur = m.position(float(t))
            if cur.distance_to(prev) < 1e-9:
                stationary += 1
            prev = cur
        assert stationary > 10

    def test_speed_reported(self):
        _, m = self._model(speed_min=2.0, speed_max=4.0)
        assert m.speed() == 3.0


class TestStatic:
    def test_never_moves(self):
        m = StaticPosition(Point(5, 6))
        assert m.position(0.0) == Point(5, 6)
        assert m.position(1e6) == Point(5, 6)
        assert m.speed() == 0.0


class TestGroupMobility:
    def test_member_stays_near_reference(self):
        fld = Field(1000, 1000)
        rng = np.random.default_rng(5)
        ref = GroupReference(fld, rng, 2.0, 2.0)
        member = GroupMobility(fld, ref, group_range=150.0, rng=rng)
        for t in np.linspace(0, 200, 100):
            c = ref.position(float(t))
            p = member.position(float(t))
            # Offset bounded by the group range square's diagonal
            # (clamping to the field can only reduce the distance).
            assert abs(p.x - c.x) <= 150.0 + 1e-9 or p.x in (0.0, 1000.0)
            assert abs(p.y - c.y) <= 150.0 + 1e-9 or p.y in (0.0, 1000.0)

    def test_member_stays_in_field(self):
        fld = Field(500, 500)
        rng = np.random.default_rng(6)
        ref = GroupReference(fld, rng, 2.0, 2.0)
        member = GroupMobility(fld, ref, group_range=200.0, rng=rng)
        for t in np.linspace(0, 300, 150):
            assert fld.contains(member.position(float(t)))

    def test_invalid_group_range(self):
        fld = Field(100, 100)
        rng = np.random.default_rng(0)
        ref = GroupReference(fld, rng, 2.0, 2.0)
        with pytest.raises(ValueError):
            GroupMobility(fld, ref, group_range=0.0, rng=rng)

    def test_make_group_mobility_partitions_members(self):
        fld = Field(1000, 1000)
        rng = np.random.default_rng(7)
        motions = make_group_mobility(fld, 20, 5, 150.0, rng)
        assert len(motions) == 20
        refs = {id(m.reference) for m in motions}
        assert len(refs) == 5

    def test_make_group_mobility_validates(self):
        fld = Field(100, 100)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            make_group_mobility(fld, 5, 6, 100.0, rng)
        with pytest.raises(ValueError):
            make_group_mobility(fld, 5, 0, 100.0, rng)

    def test_groupmates_cluster(self):
        """Members of one group stay mutually closer than the field size."""
        fld = Field(1000, 1000)
        rng = np.random.default_rng(8)
        motions = make_group_mobility(fld, 10, 2, 100.0, rng)
        same_group = [m for m in motions if m.reference is motions[0].reference]
        for t in (10.0, 50.0, 150.0):
            ps = [m.position(t) for m in same_group]
            for p in ps[1:]:
                assert ps[0].distance_to(p) <= 2 * 100.0 * 1.4143 + 1.0


class TestBatchPositions:
    """positions_at must be bit-identical to the scalar position() path."""

    @staticmethod
    def _rwp_population(n, seed):
        fld = Field(1000, 1000)
        return [
            RandomWaypoint(fld, np.random.default_rng(seed + i))
            for i in range(n)
        ]

    def test_rwp_batch_matches_scalar(self):
        from repro.mobility.base import positions_at

        scalar_pop = self._rwp_population(25, 100)
        batch_pop = self._rwp_population(25, 100)
        for t in (0.0, 3.5, 120.0, 40.0, 700.0):
            expected = np.array(
                [[*m.position(t)] for m in scalar_pop]
            )
            got = positions_at(batch_pop, t)
            assert got.shape == (25, 2)
            np.testing.assert_array_equal(got, expected)

    def test_static_batch_matches_scalar(self):
        from repro.mobility.base import positions_at

        pts = [Point(float(i), float(2 * i)) for i in range(10)]
        models = [StaticPosition(p) for p in pts]
        got = positions_at(models, 42.0)
        expected = np.array([[p.x, p.y] for p in pts])
        np.testing.assert_array_equal(got, expected)

    def test_group_batch_matches_scalar(self):
        from repro.mobility.base import positions_at

        fld = Field(1000, 1000)
        scalar_pop = make_group_mobility(
            fld, 18, 4, 150.0, np.random.default_rng(55)
        )
        batch_pop = make_group_mobility(
            fld, 18, 4, 150.0, np.random.default_rng(55)
        )
        # Same query sequence on both populations: RPGM members share
        # one RNG stream, so draw order must match between paths.
        for t in (0.0, 5.0, 90.0, 30.0, 400.0):
            expected = np.array([[*m.position(t)] for m in scalar_pop])
            got = positions_at(batch_pop, t)
            np.testing.assert_array_equal(got, expected)

    def test_mixed_population_dispatch(self):
        from repro.mobility.base import positions_at

        fld = Field(500, 500)
        models = [
            StaticPosition(Point(1.0, 2.0)),
            RandomWaypoint(fld, np.random.default_rng(9)),
            StaticPosition(Point(3.0, 4.0)),
        ]
        got = positions_at(models, 12.0)
        expected = np.array([[*m.position(12.0)] for m in models])
        np.testing.assert_array_equal(got, expected)

    def test_empty_population(self):
        from repro.mobility.base import positions_at

        out = positions_at([], 1.0)
        assert out.shape == (0, 2)

    def test_batch_then_scalar_consistent(self):
        from repro.mobility.base import positions_at

        pop = self._rwp_population(8, 7)
        got = positions_at(pop, 60.0)
        for row, m in zip(got, pop):
            p = m.position(60.0)
            assert (row[0], row[1]) == (p.x, p.y)


class TestInterpolateSegments:
    def test_matches_segment_at(self):
        from repro.mobility.base import interpolate_segments

        segs = [
            Segment(0.0, 10.0, Point(0, 0), Point(10, 20)),
            Segment(2.0, 2.0, Point(3, 3), Point(3, 3)),  # pause
            Segment(5.0, 6.0, Point(-1, -1), Point(1, 1)),
        ]
        for t in (-1.0, 0.0, 2.0, 5.5, 7.0, 100.0):
            got = interpolate_segments(segs, t)
            for row, seg in zip(got, segs):
                p = seg.at(t)
                assert row[0] == p.x and row[1] == p.y

    def test_empty(self):
        from repro.mobility.base import interpolate_segments

        assert interpolate_segments([], 0.0).shape == (0, 2)


class TestSnapshotInterpolator:
    """SnapshotInterpolator must be bit-identical to positions_at."""

    @staticmethod
    def _rwp_population(n, seed):
        fld = Field(1000, 1000)
        return [
            RandomWaypoint(fld, np.random.default_rng(seed + i))
            for i in range(n)
        ]

    def test_rwp_cached_matches_positions_at(self):
        from repro.mobility.base import SnapshotInterpolator, positions_at

        plain_pop = self._rwp_population(25, 300)
        cached_pop = self._rwp_population(25, 300)
        interp = SnapshotInterpolator(cached_pop)
        # Near-monotone with one backward jump (cache-hit, cache-miss
        # and bisect-refresh paths all exercised).
        for t in (0.0, 0.2, 0.4, 55.0, 55.2, 54.9, 700.0):
            expected = positions_at(plain_pop, t)
            got = interp(t)
            np.testing.assert_array_equal(got, expected)

    def test_static_population_cached(self):
        from repro.mobility.base import SnapshotInterpolator

        pts = [Point(float(i), float(2 * i)) for i in range(10)]
        interp = SnapshotInterpolator([StaticPosition(p) for p in pts])
        expected = np.array([[p.x, p.y] for p in pts])
        for t in (0.0, 1.5, 1e6):
            np.testing.assert_array_equal(interp(t), expected)

    def test_group_population_delegates(self):
        from repro.mobility.base import SnapshotInterpolator, positions_at

        fld = Field(1000, 1000)
        plain_pop = make_group_mobility(
            fld, 18, 4, 150.0, np.random.default_rng(77)
        )
        cached_pop = make_group_mobility(
            fld, 18, 4, 150.0, np.random.default_rng(77)
        )
        interp = SnapshotInterpolator(cached_pop)
        assert interp._delegate  # composite RPGM members have no segment
        for t in (0.0, 5.0, 90.0, 30.0, 400.0):
            np.testing.assert_array_equal(
                interp(t), positions_at(plain_pop, t)
            )

    def test_out_buffer_reuse_and_validation(self):
        from repro.mobility.base import SnapshotInterpolator

        pop = self._rwp_population(6, 11)
        interp = SnapshotInterpolator(pop)
        buf = np.empty((6, 2), dtype=np.float64)
        assert interp(3.0, out=buf) is buf
        with pytest.raises(ValueError):
            interp(3.0, out=np.empty((5, 2)))
        with pytest.raises(ValueError):
            interp(3.0, out=np.empty((6, 2), dtype=np.float32))

    def test_matches_scalar_position_path(self):
        pop_a = self._rwp_population(12, 42)
        pop_b = self._rwp_population(12, 42)
        from repro.mobility.base import SnapshotInterpolator

        interp = SnapshotInterpolator(pop_a)
        for t in (0.0, 1.0, 2.0, 300.0):
            got = interp(t)
            expected = np.array([[*m.position(t)] for m in pop_b])
            np.testing.assert_array_equal(got, expected)
