"""Closed-loop traffic: FlowFeedback plumbing and AdaptiveSource AIMD.

Three layers of guarantees:

* unit — the feedback channel's terminal-once/registration semantics
  and the source's backoff/recovery arithmetic;
* property (Hypothesis) — the send interval never leaves
  ``[min_interval, max_interval]`` under arbitrary feedback event
  sequences, and with feedback disabled an ``AdaptiveSource`` emits the
  exact ``CbrSource`` schedule for arbitrary parameters;
* end-to-end — a loss-free seeded run with adaptive sources is
  bit-identical to its CBR twin (same engine event count, same
  metrics), and a lossy seeded run reproduces its backoff/recovery
  trajectory exactly when re-run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig, TrafficConfig
from repro.experiments.runner import run_experiment
from repro.net.feedback import (
    LOSS_DROP,
    LOSS_LINK_FAILURE,
    LOSS_MAC_DROP,
    LOSS_TIMEOUT,
    FlowFeedback,
)
from repro.net.traffic import DEFAULT_BACKOFF_KINDS, AdaptiveSource, CbrSource
from repro.sim.engine import Engine


class _RecordingListener:
    """Collects feedback callbacks in arrival order."""

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_flow_delivery(self, flow_id: int, now: float) -> None:
        self.events.append(("delivery", flow_id, now))

    def on_flow_loss(self, flow_id: int, kind: str, now: float) -> None:
        self.events.append(("loss", flow_id, kind, now))


class TestFlowFeedback:
    def test_delivery_is_terminal(self):
        fb = FlowFeedback()
        lis = _RecordingListener()
        fb.register(7, lis)
        fb.delivery(7, 1.0)
        assert lis.events == [("delivery", 7, 1.0)]
        assert not fb.registered(7)
        fb.delivery(7, 2.0)  # duplicate reception: counted, not dispatched
        assert lis.events == [("delivery", 7, 1.0)]
        assert fb.deliveries == 2

    def test_drop_is_terminal(self):
        fb = FlowFeedback()
        lis = _RecordingListener()
        fb.register(3, lis)
        fb.drop(3, "ttl", 0.5)
        assert lis.events == [("loss", 3, LOSS_DROP, 0.5)]
        assert not fb.registered(3)

    def test_mac_drop_and_link_failure_keep_registration(self):
        fb = FlowFeedback()
        lis = _RecordingListener()
        fb.register(5, lis)
        fb.mac_drop(5, 0.1)
        fb.link_failure(5, "blacklist", 0.2)
        fb.timeout(5, 0.3)
        assert fb.registered(5)
        assert [e[2] for e in lis.events] == [
            LOSS_MAC_DROP,
            LOSS_LINK_FAILURE,
            LOSS_TIMEOUT,
        ]

    def test_none_flow_ids_ignored(self):
        fb = FlowFeedback()
        fb.delivery(None, 0.0)
        fb.drop(None, "x", 0.0)
        fb.mac_drop(None, 0.0)
        fb.link_failure(None, "x", 0.0)
        fb.timeout(None, 0.0)
        assert fb.counters() == {
            "deliveries": 0,
            "drops": 0,
            "mac_drops": 0,
            "link_failures": 0,
            "timeouts": 0,
        }

    def test_unregistered_flows_only_bump_counters(self):
        fb = FlowFeedback()
        fb.delivery(9, 1.0)
        fb.mac_drop(9, 1.0)
        assert fb.counters()["deliveries"] == 1
        assert fb.counters()["mac_drops"] == 1

    def test_release_is_idempotent(self):
        fb = FlowFeedback()
        fb.register(1, _RecordingListener())
        fb.release(1)
        fb.release(1)
        assert not fb.registered(1)


def _adaptive(engine=None, **kw) -> AdaptiveSource:
    return AdaptiveSource(
        engine or Engine(), lambda s, d, n: None, 0, 1, **kw
    )


class TestAdaptiveArithmetic:
    def test_backoff_multiplies_and_clamps(self):
        src = _adaptive(
            interval=1.0, max_interval=3.0, backoff_factor=2.0
        )
        src.on_flow_loss(1, LOSS_DROP, 0.0)
        assert src.interval == 2.0
        src.on_flow_loss(2, LOSS_DROP, 0.0)
        assert src.interval == 3.0  # clamped, not 4.0
        src.on_flow_loss(3, LOSS_DROP, 0.0)
        assert src.interval == 3.0
        # only the two losses that moved the interval count as backoff
        # *events* — the saturated third shows up in ``losses`` alone
        assert src.backoff_events == 2
        assert src.losses == 3

    def test_saturated_backoff_counts_losses_not_events(self):
        """A loss at ``max_interval`` changes nothing and says so.

        ``backoff_events`` mirrors ``recovery_events``: both count
        actual interval changes.  Before the fix, losses arriving with
        the interval already pinned at the clamp kept inflating
        ``backoff_events``, so the counter could exceed the number of
        changes the trajectory ever made.
        """
        src = _adaptive(
            interval=1.0, max_interval=2.0, backoff_factor=4.0
        )
        src.on_flow_loss(1, LOSS_DROP, 0.0)  # 1.0 -> 2.0 (clamped)
        assert src.interval == src.max_interval
        assert src.backoff_events == 1
        for i in range(5):  # pinned: five more losses, zero changes
            src.on_flow_loss(2 + i, LOSS_TIMEOUT, 0.0)
        assert src.interval == src.max_interval
        assert src.backoff_events == 1
        assert src.losses == 6
        # symmetric with the delivery side: recovery at base is not an
        # event either
        src2 = _adaptive(interval=1.0)
        src2.on_flow_delivery(1, 0.0)
        assert src2.recovery_events == 0

    def test_recovery_floors_at_base_interval(self):
        src = _adaptive(
            interval=1.0, max_interval=8.0, backoff_factor=2.0,
            recovery_step=0.75,
        )
        src.on_flow_loss(1, LOSS_DROP, 0.0)  # -> 2.0
        src.on_flow_delivery(2, 0.0)  # -> 1.25
        src.on_flow_delivery(3, 0.0)  # -> 1.0 (not 0.5)
        assert src.interval == 1.0
        src.on_flow_delivery(4, 0.0)  # at base: no-op
        assert src.interval == 1.0
        assert src.recovery_events == 2
        assert src.deliveries == 3

    def test_link_failures_excluded_by_default(self):
        assert LOSS_LINK_FAILURE not in DEFAULT_BACKOFF_KINDS
        assert {LOSS_MAC_DROP, LOSS_DROP, LOSS_TIMEOUT} <= DEFAULT_BACKOFF_KINDS
        src = _adaptive(interval=1.0)
        src.on_flow_loss(1, LOSS_LINK_FAILURE, 0.0)
        assert src.interval == 1.0
        assert src.backoff_events == 0
        assert src.losses == 1

    def test_custom_backoff_kinds(self):
        src = _adaptive(
            interval=1.0, backoff_kinds=frozenset({LOSS_TIMEOUT})
        )
        src.on_flow_loss(1, LOSS_MAC_DROP, 0.0)
        assert src.interval == 1.0
        src.on_flow_loss(2, LOSS_TIMEOUT, 0.0)
        assert src.interval == 2.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            _adaptive(interval=1.0, min_interval=2.0)  # base below min
        with pytest.raises(ValueError):
            _adaptive(interval=9.0, max_interval=8.0)  # base above max
        with pytest.raises(ValueError):
            _adaptive(interval=1.0, backoff_factor=1.0)
        with pytest.raises(ValueError):
            _adaptive(interval=1.0, recovery_step=-0.1)
        with pytest.raises(ValueError):
            _adaptive(interval=1.0, backoff_kinds=frozenset({"bogus"}))


class TestRegisterBeforeDispatch:
    """Feedback registration must precede packet dispatch.

    Feedback reporting is synchronous: a first-hop MAC drop or an
    immediate no-route terminal drop fires *inside* the protocol's
    send call.  The source therefore registers through ``send_data``'s
    ``on_flow`` hook.  Before the fix it registered on the return
    value — after any synchronous signal had already been swallowed —
    so the loss never reached the source, and a synchronously-dropped
    flow was re-registered dead, leaking its registration forever.
    """

    def test_synchronous_mac_drop_reaches_source(self):
        eng = Engine()
        fb = FlowFeedback()

        def send(src, dst, size, on_flow=None):
            if on_flow is not None:
                on_flow(42)
            fb.mac_drop(42, eng.now)  # first hop drops before returning
            return 42

        src = AdaptiveSource(
            eng, send, 0, 1, interval=1.0, max_packets=1,
            start_offset=0.5, feedback=fb,
        )
        eng.run(until=1.0)
        assert src.sent == 1
        assert src.losses == 1
        assert src.backoff_events == 1
        assert src.interval == 2.0
        assert fb.registered(42)  # MAC drop is not terminal

    def test_synchronous_terminal_drop_leaves_no_registration(self):
        eng = Engine()
        fb = FlowFeedback()

        def send(src, dst, size, on_flow=None):
            if on_flow is not None:
                on_flow(7)
            fb.drop(7, "no_route", eng.now)  # terminal, synchronous
            return 7

        src = AdaptiveSource(
            eng, send, 0, 1, interval=1.0, max_packets=1,
            start_offset=0.5, feedback=fb,
        )
        eng.run(until=1.0)
        assert src.losses == 1
        # the terminal signal consumed the registration; registering
        # afterwards (the old ordering) would have left flow 7 pinned
        # in the channel for the rest of the run
        assert not fb.registered(7)

    def test_open_loop_source_passes_no_hook(self):
        eng = Engine()
        calls: list[tuple] = []

        def send(src, dst, size, on_flow=None):
            calls.append((src, dst, size, on_flow))
            return 1

        AdaptiveSource(
            eng, send, 0, 1, interval=1.0, max_packets=1,
            start_offset=0.5, feedback=None,
        )
        eng.run(until=1.0)
        assert calls == [(0, 1, 512, None)]


EVENT = st.one_of(
    st.just(("delivery",)),
    st.tuples(
        st.just("loss"),
        st.sampled_from(
            [LOSS_MAC_DROP, LOSS_LINK_FAILURE, LOSS_DROP, LOSS_TIMEOUT]
        ),
    ),
)


class TestIntervalClampProperty:
    @settings(max_examples=200)
    @given(
        base=st.floats(min_value=0.1, max_value=4.0),
        span=st.floats(min_value=0.0, max_value=8.0),
        factor=st.floats(min_value=1.01, max_value=4.0),
        step=st.floats(min_value=0.0, max_value=2.0),
        events=st.lists(EVENT, max_size=60),
    )
    def test_interval_never_leaves_clamp(
        self, base, span, factor, step, events
    ):
        src = _adaptive(
            interval=base,
            min_interval=base / 2,
            max_interval=base + span,
            backoff_factor=factor,
            recovery_step=step,
        )
        for i, ev in enumerate(events):
            if ev[0] == "delivery":
                src.on_flow_delivery(i, 0.0)
            else:
                src.on_flow_loss(i, ev[1], 0.0)
            # recovery additionally never undershoots base (the CBR
            # cadence), which is the bit-identity invariant below
            assert src.base_interval <= src.interval <= src.max_interval


def _send_times(source_cls, interval, offset, max_packets, until, **kw):
    eng = Engine()
    times: list[float] = []
    source_cls(
        eng,
        lambda s, d, n: times.append(eng.now),
        0,
        1,
        interval=interval,
        start_offset=offset,
        max_packets=max_packets,
        **kw,
    )
    eng.run(until=until)
    return times, eng.events_processed, eng.pending()


class TestCbrEquivalenceProperty:
    @settings(max_examples=100)
    @given(
        interval=st.floats(min_value=0.05, max_value=3.0),
        offset=st.floats(min_value=0.0, max_value=2.0),
        max_packets=st.one_of(st.none(), st.integers(0, 12)),
    )
    def test_open_loop_adaptive_matches_cbr_schedule(
        self, interval, offset, max_packets
    ):
        until = offset + 8 * interval
        cbr = _send_times(CbrSource, interval, offset, max_packets, until)
        adaptive = _send_times(
            AdaptiveSource,
            interval,
            offset,
            max_packets,
            until,
            feedback=None,
            min_interval=interval,
            max_interval=interval * 4,
        )
        # same send instants, same engine event count, same leftovers
        assert adaptive == cbr


#: Low-load seeded scenario with a 100 % delivery rate: the adaptive
#: twin sees only deliveries, and recovery at the base interval is a
#: no-op, so the two runs must be bit-identical.
QUIET = ExperimentConfig(
    protocol="ALERT",
    n_nodes=30,
    field_size=300.0,
    duration=10.0,
    n_pairs=3,
    send_interval=1.0,
    seed=5,
)

#: Congested seeded scenario that actually exercises backoff/recovery.
LOSSY = ExperimentConfig(
    protocol="ALERT",
    n_nodes=40,
    field_size=300.0,
    duration=6.0,
    n_pairs=15,
    send_interval=0.05,
    seed=6,
    traffic=TrafficConfig(
        model="adaptive",
        min_interval=0.05,
        max_interval=0.5,
        backoff_factor=1.25,
        recovery_step=0.5,
    ),
)


def _fingerprint(result):
    return (
        result.engine.events_processed,
        result.metrics.packets_sent,
        repr(result.delivery_rate),
        repr(result.mean_latency),
        repr(result.mean_hops),
        result.network.mac.drops_total,
    )


class TestEndToEnd:
    def test_zero_loss_adaptive_run_bit_identical_to_cbr(self):
        cbr = run_experiment(QUIET)
        adaptive = run_experiment(
            QUIET.with_(
                traffic=TrafficConfig(
                    model="adaptive", min_interval=0.5, max_interval=4.0
                )
            )
        )
        assert cbr.delivery_rate == 1.0  # scenario really is loss-free
        assert adaptive.feedback is not None
        assert adaptive.feedback.deliveries == adaptive.metrics.packets_sent
        assert adaptive.backoff_events == 0
        assert _fingerprint(adaptive) == _fingerprint(cbr)
        for src in adaptive.sources:
            assert src.interval == QUIET.send_interval

    def test_lossy_run_backs_off_and_is_seed_deterministic(self):
        first = run_experiment(LOSSY)
        second = run_experiment(LOSSY)
        assert first.backoff_events > 0
        assert first.recovery_events > 0
        assert (first.backoff_events, first.recovery_events) == (
            second.backoff_events,
            second.recovery_events,
        )
        assert first.feedback.counters() == second.feedback.counters()
        assert _fingerprint(first) == _fingerprint(second)
        assert [s.interval for s in first.sources] == [
            s.interval for s in second.sources
        ]
        # offered load genuinely fell below the open-loop cadence
        open_loop = len(first.pairs) / LOSSY.send_interval
        assert first.offered_load_pps < open_loop

    def test_per_flow_traffic_rows_cover_all_pairs(self):
        result = run_experiment(LOSSY)
        rows = result.per_flow_traffic()
        assert len(rows) == len(result.pairs)
        assert {(r["src"], r["dst"]) for r in rows} == set(result.pairs)
        assert sum(r["offered"] for r in rows) == result.metrics.packets_sent
        assert (
            sum(r["delivered"] for r in rows)
            == result.metrics.packets_delivered
        )
        for row in rows:
            assert (
                LOSSY.traffic.min_interval
                <= row["final_interval_s"]
                <= LOSSY.traffic.max_interval
            )


class TestTrafficConfig:
    def test_dict_coercion(self):
        cfg = ExperimentConfig(traffic={"model": "adaptive"})
        assert isinstance(cfg.traffic, TrafficConfig)
        assert cfg.traffic.model == "adaptive"

    def test_send_interval_must_fit_clamp(self):
        with pytest.raises(ValueError):
            ExperimentConfig(
                send_interval=10.0, traffic={"model": "adaptive"}
            )

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            TrafficConfig(model="tcp")

    def test_rejects_bad_clamp(self):
        with pytest.raises(ValueError):
            TrafficConfig(min_interval=2.0, max_interval=1.0)
        with pytest.raises(ValueError):
            TrafficConfig(backoff_factor=0.9)
        with pytest.raises(ValueError):
            TrafficConfig(recovery_step=-1.0)
