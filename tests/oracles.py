"""Differential-testing oracles for spatial-index implementations.

The repo's hottest data structure — :class:`repro.geometry.spatial_index.
GridIndex` — is now mutated in place between snapshots, which makes a
spot-check test style (a handful of hand-picked positions) too weak:
an index can answer those correctly while carrying a corrupted bucket
from three moves ago.  This module provides the stronger oracle:

* :class:`NaiveIndex` — a brute-force implementation of the exact
  ``GridIndex`` query contract (sorted results, half-open rects,
  smallest-index tie-breaking, the same ``ValueError`` conditions) that
  is obviously correct by inspection, and
* :func:`assert_same_answers` / :func:`run_differential` — harness
  helpers that drive any number of index implementations through the
  same randomized move/query schedule and assert every answer agrees.

Any future index variant (k-d tree, sorted-array sweep, GPU bucketing)
can be dropped into the same harness unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.spatial_index import GridIndex


class NaiveIndex:
    """Brute-force reference with ``GridIndex``'s exact query contract.

    Every query is a full O(N) scan over a private copy of the
    positions, so there is no bucketing state to corrupt — which is
    the point: it serves as the ground truth that incremental
    ``GridIndex`` maintenance is differentially tested against.
    """

    def __init__(self, positions: np.ndarray, cell_size: float = 1.0) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (N, 2), got {positions.shape}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size!r}")
        self.positions = positions.copy()
        self.cell_size = float(cell_size)

    def __len__(self) -> int:
        return self.positions.shape[0]

    # -- mutation (same signatures as GridIndex) -----------------------
    def move(self, i: int, x: float, y: float) -> bool:
        if not 0 <= i < len(self):
            raise IndexError(f"node id {i} out of range [0, {len(self)})")
        cs = self.cell_size
        old_cell = np.floor(self.positions[i] / cs)
        self.positions[i] = (x, y)
        new_cell = np.floor(self.positions[i] / cs)
        return bool(np.any(old_cell != new_cell))

    def update_positions(
        self, changed_ids: np.ndarray, new_positions: np.ndarray
    ) -> int:
        ids = np.asarray(changed_ids, dtype=np.int64)
        if ids.size == 0:
            return 0
        new_positions = np.asarray(new_positions, dtype=np.float64)
        cs = self.cell_size
        old_cells = np.floor(self.positions[ids] / cs)
        self.positions[ids] = new_positions
        new_cells = np.floor(new_positions / cs)
        return int(np.count_nonzero(np.any(old_cells != new_cells, axis=1)))

    def adopt_positions(
        self, new_positions: np.ndarray, max_crossed: int | None = None
    ) -> int:
        new_positions = np.asarray(new_positions, dtype=np.float64)
        if new_positions.shape != self.positions.shape:
            raise ValueError(
                f"new_positions must be {self.positions.shape}, "
                f"got {new_positions.shape}"
            )
        cs = self.cell_size
        crossed = int(
            np.count_nonzero(
                np.any(
                    np.floor(self.positions / cs) != np.floor(new_positions / cs),
                    axis=1,
                )
            )
        )
        if max_crossed is not None and crossed > max_crossed:
            return -1
        self.positions = new_positions.copy()
        return crossed

    # -- queries -------------------------------------------------------
    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        d = self.positions - np.array([x, y])
        hits = np.flatnonzero((d * d).sum(axis=1) <= radius * radius)
        return hits.astype(np.int64)  # flatnonzero is already ascending

    def query_rect(self, x0: float, y0: float, x1: float, y1: float) -> np.ndarray:
        if len(self) == 0 or x1 <= x0 or y1 <= y0:
            return np.empty(0, dtype=np.int64)
        p = self.positions
        mask = (p[:, 0] >= x0) & (p[:, 0] < x1) & (p[:, 1] >= y0) & (p[:, 1] < y1)
        return np.flatnonzero(mask).astype(np.int64)

    def nearest(self, x: float, y: float, exclude: int | None = None) -> int:
        if len(self) == 0:
            raise ValueError("nearest() on an empty index")
        d = self.positions - np.array([x, y])
        dist2 = (d * d).sum(axis=1)
        if exclude is not None and 0 <= exclude < len(self):
            dist2 = dist2.copy()
            dist2[exclude] = np.inf
        if not np.isfinite(dist2).any():
            raise ValueError("nearest() on an empty index")
        return int(np.argmin(dist2))  # argmin ties break to smallest index


def fresh_gridindex(index) -> GridIndex:
    """A from-scratch ``GridIndex`` over an index's current positions."""
    return GridIndex(index.positions.copy(), index.cell_size)


def assert_same_answers(
    indices: Sequence, query: str, *args, context: str = ""
) -> None:
    """Assert every index answers one query identically.

    ``nearest`` may legitimately raise ``ValueError`` (empty / only the
    excluded node); in that case every implementation must raise it.
    """
    results = []
    for idx in indices:
        try:
            out = getattr(idx, query)(*args)
        except ValueError:
            out = ValueError
        results.append(out)
    baseline = results[0]
    for idx, got in zip(indices[1:], results[1:]):
        if baseline is ValueError or got is ValueError:
            assert baseline is got, (
                f"{query}{args}: {type(indices[0]).__name__} vs "
                f"{type(idx).__name__} disagree on raising {context}"
            )
        elif query == "nearest":
            assert got == baseline, (
                f"{query}{args}: {got} != {baseline} {context}"
            )
        else:
            assert np.array_equal(got, baseline), (
                f"{query}{args}: {got} != {baseline} {context}"
            )


def run_differential(
    positions: np.ndarray,
    cell_size: float,
    steps: int,
    rng: np.random.Generator,
    coord_range: tuple[float, float] = (-200.0, 1200.0),
    batch_fraction: float = 0.3,
) -> tuple[GridIndex, NaiveIndex]:
    """Drive incremental ``GridIndex`` vs ``NaiveIndex`` through a
    randomized interleaving of moves, batch updates, and queries.

    Every mutation is applied to both implementations; every query —
    plus, on a sampled subset of steps, a query against a third
    from-scratch ``GridIndex`` rebuilt at the current positions — must
    agree across all of them.  Returns the two long-lived indices so
    callers can run extra end-state assertions.
    """
    grid = GridIndex(np.asarray(positions, dtype=np.float64).copy(), cell_size)
    naive = NaiveIndex(positions, cell_size)
    n = len(naive)
    lo, hi = coord_range
    for step in range(steps):
        ctx = f"(step {step})"
        op = rng.integers(0, 6)
        if op == 0 and n:  # single move
            i = int(rng.integers(0, n))
            x, y = rng.uniform(lo, hi, size=2)
            assert grid.move(i, x, y) == naive.move(i, x, y), ctx
        elif op == 1 and n:  # batch update
            k = int(rng.integers(1, max(2, int(n * batch_fraction)) + 1))
            ids = rng.choice(n, size=min(k, n), replace=False)
            new_pos = rng.uniform(lo, hi, size=(ids.size, 2))
            assert grid.update_positions(ids, new_pos) == (
                naive.update_positions(ids, new_pos)
            ), ctx
        elif op == 2:
            x, y = rng.uniform(lo - 100, hi + 100, size=2)
            r = float(rng.uniform(0.0, (hi - lo) / 2))
            assert_same_answers(
                [naive, grid], "query_radius", x, y, r, context=ctx
            )
        elif op == 3:
            x0, y0 = rng.uniform(lo - 100, hi, size=2)
            w, h = rng.uniform(0, (hi - lo) / 2, size=2)
            assert_same_answers(
                [naive, grid], "query_rect", x0, y0, x0 + w, y0 + h,
                context=ctx,
            )
        elif op == 4:
            x, y = rng.uniform(lo - 100, hi + 100, size=2)
            exclude = int(rng.integers(0, n)) if n and rng.random() < 0.5 else None
            assert_same_answers(
                [naive, grid], "nearest", x, y, exclude, context=ctx
            )
        else:
            # Full cross-check: incremental vs from-scratch rebuild vs
            # brute force, all three on one radius + rect + nearest.
            trio = [naive, grid, fresh_gridindex(naive)]
            x, y = rng.uniform(lo, hi, size=2)
            r = float(rng.uniform(0.0, (hi - lo) / 3))
            assert_same_answers(trio, "query_radius", x, y, r, context=ctx)
            assert_same_answers(
                trio, "query_rect", x - r, y - r, x + r, y + r, context=ctx
            )
            assert_same_answers(trio, "nearest", x, y, None, context=ctx)
    return grid, naive
