"""Tests for the experiment harness: config, runner, sweeps, tables."""

from __future__ import annotations

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    aggregate,
    choose_pairs,
    default_runs,
    make_mobility_factory,
    run_experiment,
    run_many,
)
from repro.experiments.sweeps import sweep_single
from repro.experiments.tables import format_kv_block, format_series_table
from repro.geometry.field import Field
from repro.sim.engine import Engine


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ExperimentConfig()
        assert cfg.n_nodes == 200
        assert cfg.field_size == 1000.0
        assert cfg.speed == 2.0
        assert cfg.radio_range == 250.0
        assert cfg.packet_size == 512
        assert cfg.send_interval == 2.0
        assert cfg.n_pairs == 10
        assert cfg.duration == 100.0
        assert cfg.h_override == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(protocol="BOGUS")
        with pytest.raises(ValueError):
            ExperimentConfig(mobility="teleport")
        with pytest.raises(ValueError):
            ExperimentConfig(n_nodes=1)
        with pytest.raises(ValueError):
            ExperimentConfig(n_nodes=10, n_pairs=6)
        with pytest.raises(ValueError):
            ExperimentConfig(speed=-1)

    def test_with_override(self):
        cfg = ExperimentConfig().with_(n_nodes=100, speed=4.0)
        assert cfg.n_nodes == 100 and cfg.speed == 4.0
        assert cfg.protocol == "ALERT"

    def test_density(self):
        assert ExperimentConfig(n_nodes=200).density_per_km2 == pytest.approx(200.0)
        assert ExperimentConfig(
            n_nodes=50, field_size=500.0
        ).density_per_km2 == pytest.approx(200.0)


class TestMobilityFactory:
    def test_static_for_zero_speed(self):
        from repro.mobility.static import StaticPosition
        cfg = ExperimentConfig(speed=0.0)
        f = make_mobility_factory(cfg, Engine(), Field(100, 100))
        import numpy as np
        assert isinstance(f(0, np.random.default_rng(0)), StaticPosition)

    def test_group_factory_builds_groups(self):
        from repro.mobility.group_mobility import GroupMobility
        cfg = ExperimentConfig(n_nodes=20, n_pairs=2, mobility="group", n_groups=4)
        eng = Engine(1)
        f = make_mobility_factory(cfg, eng, Field(1000, 1000))
        import numpy as np
        motions = [f(i, np.random.default_rng(i)) for i in range(20)]
        assert all(isinstance(m, GroupMobility) for m in motions)
        assert len({id(m.reference) for m in motions}) == 4


class TestRunner:
    def test_pairs_disjoint(self):
        cfg = ExperimentConfig(n_nodes=40, n_pairs=10)
        pairs = choose_pairs(cfg, Engine(3))
        flat = [x for p in pairs for x in p]
        assert len(flat) == len(set(flat)) == 20

    def test_too_many_pairs_raises_clear_error(self):
        # choose_pairs guards independently of config validation (a
        # hand-built config can bypass __post_init__); it must name
        # both offending fields instead of a bare IndexError.
        cfg = ExperimentConfig(n_nodes=40, n_pairs=10)
        object.__setattr__(cfg, "n_pairs", 30)  # bypass frozen+validation
        with pytest.raises(ValueError, match=r"n_pairs=30.*n_nodes=40"):
            choose_pairs(cfg, Engine(3))

    def test_run_reproducible(self):
        cfg = ExperimentConfig(
            protocol="GPSR", n_nodes=40, duration=10, n_pairs=2,
            field_size=600.0, seed=9,
        )
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.mean_latency == b.mean_latency
        assert a.mean_hops == b.mean_hops
        assert a.delivery_rate == b.delivery_rate

    def test_alert_end_to_end_determinism_same_seed(self):
        # Guards the RNG plumbing the incremental snapshot path reuses:
        # two full ALERT runs with one ExperimentConfig seed must agree
        # on every §5.2 metric, and the incremental index-maintenance
        # path must actually have run (not just full rebuilds).
        cfg = ExperimentConfig(
            protocol="ALERT", n_nodes=50, duration=20, n_pairs=3,
            field_size=800.0, seed=4242,
        )
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.delivery_rate == b.delivery_rate
        assert a.mean_latency == b.mean_latency or (
            math.isnan(a.mean_latency) and math.isnan(b.mean_latency)
        )
        assert a.mean_hops == b.mean_hops
        assert a.mean_rf_count == b.mean_rf_count or (
            math.isnan(a.mean_rf_count) and math.isnan(b.mean_rf_count)
        )
        assert a.participating_nodes == b.participating_nodes
        assert a.network.snapshot_incremental > 0
        assert (
            a.network.snapshot_incremental == b.network.snapshot_incremental
        )
        assert a.network.snapshot_rebuilds == b.network.snapshot_rebuilds

    def test_seed_changes_results(self):
        cfg = ExperimentConfig(
            protocol="GPSR", n_nodes=40, duration=10, n_pairs=2,
            field_size=600.0,
        )
        a = run_experiment(cfg.with_(seed=1))
        b = run_experiment(cfg.with_(seed=2))
        assert a.pairs != b.pairs or a.mean_latency != b.mean_latency

    def test_max_packets_per_pair(self):
        cfg = ExperimentConfig(
            protocol="GPSR", n_nodes=40, duration=30, n_pairs=2,
            field_size=600.0,
        )
        r = run_experiment(cfg, max_packets_per_pair=3)
        assert r.metrics.packets_sent == 6

    def test_run_many_distinct_seeds(self):
        cfg = ExperimentConfig(
            protocol="GPSR", n_nodes=30, duration=8, n_pairs=2,
            field_size=600.0,
        )
        results = run_many(cfg, runs=3)
        assert len(results) == 3
        assert len({r.config.seed for r in results}) == 3

    def test_default_runs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS", "11")
        assert default_runs() == 11

    def test_all_protocols_runnable(self):
        for proto in ("ALERT", "GPSR", "ALARM", "AO2P"):
            cfg = ExperimentConfig(
                protocol=proto, n_nodes=30, duration=8, n_pairs=2,
                field_size=600.0, seed=4,
            )
            r = run_experiment(cfg)
            assert r.metrics.packets_sent > 0

    def test_alarm_dissemination_metric(self):
        cfg = ExperimentConfig(
            protocol="ALARM", n_nodes=30, duration=8, n_pairs=2,
            field_size=600.0,
        )
        r = run_experiment(cfg)
        assert r.mean_hops_with_dissemination() > r.mean_hops


class TestAggregate:
    def test_mean_and_ci(self):
        mean, ci = aggregate([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert ci > 0

    def test_single_sample(self):
        assert aggregate([5.0]) == (5.0, 0.0)

    def test_nan_dropped(self):
        mean, _ = aggregate([1.0, float("nan"), 3.0])
        assert mean == 2.0

    def test_all_nan(self):
        mean, ci = aggregate([float("nan")])
        assert math.isnan(mean)

    def test_zero_variance(self):
        assert aggregate([2.0, 2.0, 2.0]) == (2.0, 0.0)


class TestSweeps:
    def test_sweep_single(self):
        base = ExperimentConfig(
            protocol="GPSR", n_nodes=30, duration=6, n_pairs=2,
            field_size=600.0,
        )
        means, cis = sweep_single(
            base, "speed", [2.0, 4.0], lambda r: r.delivery_rate, runs=2
        )
        assert len(means) == 2 and len(cis) == 2
        assert all(0 <= m <= 1 for m in means)


class TestTables:
    def test_series_table_rendering(self):
        text = format_series_table(
            "Fig X", "n", [50, 100],
            {"ALERT": [1.5, 2.5], "GPSR": [1.0, 2.0]},
            cis={"ALERT": [0.1, 0.2]},
        )
        assert "Fig X" in text
        assert "1.500 ±0.100" in text
        assert text.count("\n") == 4

    def test_series_table_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series_table("t", "x", [1, 2], {"s": [1.0]})

    def test_nan_rendering(self):
        text = format_series_table("t", "x", [1], {"s": [float("nan")]})
        assert "nan" in text

    def test_kv_block(self):
        text = format_kv_block("Result", {"rate": 0.5, "note": "ok"})
        assert "0.5000" in text and "ok" in text
