"""Tests for Timer and PeriodicTask."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.process import PeriodicTask, Timer


class TestTimer:
    def test_fires_after_delay(self):
        eng = Engine()
        hits = []
        t = Timer(eng, lambda: hits.append(eng.now))
        t.start(2.0)
        eng.run()
        assert hits == [2.0]

    def test_cancel_prevents_fire(self):
        eng = Engine()
        hits = []
        t = Timer(eng, lambda: hits.append(1))
        t.start(2.0)
        t.cancel()
        eng.run()
        assert hits == []

    def test_restart_supersedes(self):
        eng = Engine()
        hits = []
        t = Timer(eng, lambda: hits.append(eng.now))
        t.start(2.0)
        t.start(5.0)
        eng.run()
        assert hits == [5.0]

    def test_armed_reflects_state(self):
        eng = Engine()
        t = Timer(eng, lambda: None)
        assert not t.armed
        t.start(1.0)
        assert t.armed
        eng.run()
        assert not t.armed

    def test_can_rearm_inside_callback(self):
        eng = Engine()
        hits = []
        t = Timer(eng, lambda: hits.append(eng.now))

        def fire():
            hits.append(eng.now)
            if len(hits) < 3:
                t2.start(1.0)

        t2 = Timer(eng, fire)
        t2.start(1.0)
        eng.run()
        assert hits == [1.0, 2.0, 3.0]


class TestPeriodicTask:
    def test_ticks_at_interval(self):
        eng = Engine()
        hits = []
        task = PeriodicTask(eng, 1.0, lambda: hits.append(eng.now))
        eng.run(until=3.5)
        task.stop()
        assert hits == [1.0, 2.0, 3.0]

    def test_start_offset(self):
        eng = Engine()
        hits = []
        task = PeriodicTask(eng, 2.0, lambda: hits.append(eng.now), start_offset=0.5)
        eng.run(until=5.0)
        task.stop()
        assert hits == [0.5, 2.5, 4.5]

    def test_stop_halts_ticks(self):
        eng = Engine()
        hits = []
        task = PeriodicTask(eng, 1.0, lambda: hits.append(1))
        eng.schedule_at(2.5, task.stop)
        eng.run(until=10.0)
        assert len(hits) == 2

    def test_stop_inside_callback(self):
        eng = Engine()
        hits = []

        def tick():
            hits.append(eng.now)
            if len(hits) == 2:
                task.stop()

        task = PeriodicTask(eng, 1.0, tick)
        eng.run(until=10.0)
        assert hits == [1.0, 2.0]

    def test_tick_counter(self):
        eng = Engine()
        task = PeriodicTask(eng, 1.0, lambda: None)
        eng.run(until=4.0)
        task.stop()
        assert task.ticks == 4

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            PeriodicTask(Engine(), 0.0, lambda: None)

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            PeriodicTask(Engine(), 1.0, lambda: None, jitter=0.1)

    def test_jitter_displaces_ticks(self):
        eng = Engine()
        hits = []
        task = PeriodicTask(
            eng, 1.0, lambda: hits.append(eng.now),
            jitter=0.2, rng=eng.rng.stream("j"),
        )
        eng.run(until=10.0)
        task.stop()
        assert len(hits) >= 7
        # Ticks are displaced but stay near the nominal cadence.
        for i, t in enumerate(hits):
            assert abs(t - (i + 1)) < 0.2 * (i + 2)
        assert any(abs(t - round(t)) > 1e-6 for t in hits)
