"""Tests for the anonymity metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.anonymity import (
    anonymity_entropy,
    endpoint_exposure,
    k_anonymity_set,
    mean_pairwise_overlap,
    observation_frequency,
    route_overlap,
)


class TestKAnonymity:
    def test_counts_distinct(self):
        assert k_anonymity_set([1, 2, 2, 3]) == 3

    def test_empty(self):
        assert k_anonymity_set([]) == 0


class TestEntropy:
    def test_uniform_gives_log2n(self):
        assert anonymity_entropy([1.0] * 8) == pytest.approx(3.0)

    def test_certainty_gives_zero(self):
        assert anonymity_entropy([1.0]) == 0.0
        assert anonymity_entropy([5.0, 0.0, 0.0]) == 0.0

    def test_empty_or_zero_weights(self):
        assert anonymity_entropy([]) == 0.0
        assert anonymity_entropy([0.0, 0.0]) == 0.0

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=30))
    def test_bounded_by_log2n(self, w):
        h = anonymity_entropy(w)
        assert -1e-9 <= h <= math.log2(len(w)) + 1e-9


class TestRouteOverlap:
    def test_identical_routes(self):
        assert route_overlap([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint_routes(self):
        assert route_overlap([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert route_overlap([1, 2, 3], [3, 4, 5]) == pytest.approx(1 / 5)

    def test_both_empty(self):
        assert route_overlap([], []) == 1.0

    def test_mean_pairwise(self):
        routes = [[1, 2], [1, 2], [3, 4]]
        assert mean_pairwise_overlap(routes) == pytest.approx(0.5)

    def test_mean_pairwise_single_route_nan(self):
        assert math.isnan(mean_pairwise_overlap([[1, 2]]))

    @given(
        st.lists(st.integers(0, 20), max_size=10),
        st.lists(st.integers(0, 20), max_size=10),
    )
    def test_symmetric_and_bounded(self, a, b):
        o = route_overlap(a, b)
        assert 0.0 <= o <= 1.0
        assert o == route_overlap(b, a)


class TestEndpointExposure:
    def test_exposed_source(self):
        routes = [[1, 5, 9], [1, 4, 8]]
        assert endpoint_exposure(routes, 1) == 1.0

    def test_buried_endpoint(self):
        routes = [[5, 1, 9], [4, 1, 8]]
        assert endpoint_exposure(routes, 1) == 0.0

    def test_empty_nan(self):
        assert math.isnan(endpoint_exposure([], 1))


class TestObservationFrequency:
    def test_counts_per_route_once(self):
        c = observation_frequency([[1, 2, 2], [2, 3]])
        assert c[1] == 1 and c[2] == 2 and c[3] == 1
