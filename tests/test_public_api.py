"""Sanity checks on the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_lazy_experiments_exports(self):
        import repro.experiments as ex
        for name in ex.__all__:
            assert getattr(ex, name) is not None
        with pytest.raises(AttributeError):
            ex.not_a_thing

    def test_subpackages_importable(self):
        for mod in (
            "repro.sim", "repro.geometry", "repro.mobility", "repro.crypto",
            "repro.net", "repro.location", "repro.core", "repro.routing",
            "repro.attacks", "repro.analysis", "repro.experiments",
        ):
            importlib.import_module(mod)

    def test_subpackage_alls_resolve(self):
        for mod_name in (
            "repro.sim", "repro.geometry", "repro.mobility", "repro.crypto",
            "repro.net", "repro.location", "repro.core", "repro.routing",
            "repro.attacks", "repro.analysis",
        ):
            mod = importlib.import_module(mod_name)
            for name in getattr(mod, "__all__", []):
                assert getattr(mod, name) is not None, f"{mod_name}.{name}"

    def test_docstrings_on_public_items(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_readme_quickstart_runs(self):
        from repro import ExperimentConfig, run_experiment
        cfg = ExperimentConfig(
            protocol="ALERT", n_nodes=30, duration=6.0, n_pairs=2,
            field_size=600.0, seed=7,
        )
        result = run_experiment(cfg)
        assert 0.0 <= result.delivery_rate <= 1.0
