"""Parity suite: vectorized forwarding paths vs their scalar references.

Two exactness contracts back the large-N fast lane:

* :func:`repro.routing.gpsr.next_hop_greedy_batched` must pick the
  same neighbor **object** as the scalar epsilon chain over
  ``live_entries`` — including equidistant candidates (first-by-address
  wins through the strict ``eps`` test), expired rows, and the
  empty-progress case that triggers perimeter mode.
* :meth:`repro.geometry.spatial_index.GridIndex.grouped_candidates`
  plus the exact distance predicate must reproduce per-query
  ``query_radius`` results for every query point.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import Point
from repro.geometry.spatial_index import GridIndex
from repro.net.neighbor_table import NeighborEntry, NeighborTable
from repro.routing.gpsr import next_hop_greedy, next_hop_greedy_batched

# A coarse coordinate lattice makes equidistant neighbors and exact
# boundary hits common instead of measure-zero.
coord = st.one_of(
    st.integers(min_value=0, max_value=8).map(float),
    st.floats(
        min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False
    ),
)
point = st.tuples(coord, coord).map(lambda t: Point(*t))


def _table(rows: list[tuple[Point, float]]) -> NeighborTable:
    table = NeighborTable(ttl=3.0)
    for addr, (pos, last_seen) in enumerate(rows):
        table.update(
            NeighborEntry(
                link_address=addr,
                pseudonym=b"p",
                position=pos,
                public_key=None,
                last_seen=last_seen,
            )
        )
    return table


rows_strategy = st.lists(
    st.tuples(point, st.floats(min_value=0.0, max_value=10.0)),
    min_size=0,
    max_size=24,
)


class TestBatchedGreedyParity:
    @settings(max_examples=300, deadline=None)
    @given(
        rows=rows_strategy, self_pos=point, target=point,
        now=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_matches_scalar_chain(self, rows, self_pos, target, now):
        table = _table(rows)
        reference = next_hop_greedy(self_pos, target, table.live_entries(now))
        # Force the vector pass regardless of table size...
        forced = next_hop_greedy_batched(
            self_pos, target, table, now, batch_min=0
        )
        # ...and take whatever path the production cutover picks.
        default = next_hop_greedy_batched(self_pos, target, table, now)
        assert forced is reference  # same object, not merely equal
        assert default is reference

    @settings(max_examples=100, deadline=None)
    @given(
        rows=rows_strategy, self_pos=point, target=point,
        now=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_column_cache_survives_writes(self, rows, self_pos, target, now):
        """A write between batched calls must invalidate the cached
        columns, never serve stale geometry."""
        table = _table(rows)
        next_hop_greedy_batched(self_pos, target, table, now, batch_min=0)
        table.update(
            NeighborEntry(
                link_address=999,
                pseudonym=b"p",
                position=target,  # zero distance: wins whenever it's live
                public_key=None,
                last_seen=now,
            )
        )
        reference = next_hop_greedy(self_pos, target, table.live_entries(now))
        got = next_hop_greedy_batched(self_pos, target, table, now, batch_min=0)
        assert got is reference

    def test_equidistant_tie_breaks_to_first_address(self):
        # Two neighbors at mirrored positions, equal distance: the
        # strict ``d < best - eps`` chain keeps the first (lowest
        # address) — the batched replay must too.
        rows = [
            (Point(2.0, 1.0), 0.0),
            (Point(2.0, -1.0), 0.0),
        ]
        table = _table(rows)
        got = next_hop_greedy_batched(
            Point(0.0, 0.0), Point(4.0, 0.0), table, 0.0, batch_min=0
        )
        assert got is not None and got.link_address == 0

    def test_expired_rows_never_win(self):
        rows = [
            (Point(3.9, 0.0), 0.0),   # closest but stale at now=5
            (Point(3.0, 0.0), 5.0),   # live
        ]
        table = _table(rows)
        got = next_hop_greedy_batched(
            Point(0.0, 0.0), Point(4.0, 0.0), table, 5.0, batch_min=0
        )
        assert got is not None and got.link_address == 1

    def test_no_progress_returns_none(self):
        # Every neighbor farther from the target than self: local
        # maximum, the perimeter-mode trigger.
        rows = [(Point(0.0, 5.0), 0.0), (Point(5.0, 5.0), 0.0)]
        table = _table(rows)
        assert (
            next_hop_greedy_batched(
                Point(0.0, 0.0), Point(0.0, -1.0), table, 0.0, batch_min=0
            )
            is None
        )

    def test_empty_table_returns_none(self):
        assert (
            next_hop_greedy_batched(
                Point(0.0, 0.0), Point(1.0, 0.0), _table([]), 0.0, batch_min=0
            )
            is None
        )


class TestGroupedCandidatesParity:
    @settings(max_examples=150, deadline=None)
    @given(
        positions=st.lists(
            st.tuples(coord, coord), min_size=0, max_size=40
        ),
        queries=st.lists(
            st.tuples(coord, coord), min_size=1, max_size=20
        ),
        radius=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    )
    def test_filtered_groups_match_query_radius(
        self, positions, queries, radius
    ):
        pos = np.array(positions, dtype=np.float64).reshape(-1, 2)
        index = GridIndex(pos.copy(), cell_size=radius)
        pts = np.array(queries, dtype=np.float64)
        got: dict[int, np.ndarray] = {}
        for q_idx, cand in index.grouped_candidates(pts, radius):
            for qi in q_idx.tolist():
                if cand.size == 0:
                    got[qi] = cand
                    continue
                d = pos[cand] - pts[qi]
                mask = (d * d).sum(axis=1) <= radius * radius
                hits = cand[mask]
                hits.sort()
                got[qi] = hits
        assert sorted(got) == list(range(len(queries)))
        for qi, (x, y) in enumerate(queries):
            expected = index.query_radius(float(x), float(y), radius)
            np.testing.assert_array_equal(got[qi], expected)
