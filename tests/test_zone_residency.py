"""Tests for the simulated zone-residency measurement (Figs. 12-13)."""

from __future__ import annotations

import pytest

from repro.analysis.zone_residency import (
    measure_remaining_nodes,
    required_density_for_remaining,
)


class TestMeasureRemainingNodes:
    def test_static_nodes_never_leave(self):
        series = measure_remaining_nodes(100, 0.0, 5, [0.0, 20.0, 50.0], seed=1)
        assert series[0] == series[1] == series[2]

    def test_initial_population_matches_density(self):
        series = measure_remaining_nodes(200, 2.0, 5, [0.0], seed=2)
        # Expected rho·G/2^5 = 6.25; allow sampling noise.
        assert 3.0 <= series[0] <= 10.0

    def test_decays_with_time(self):
        series = measure_remaining_nodes(200, 4.0, 5, [0.0, 30.0], seed=3)
        assert series[1] < series[0]

    def test_faster_decays_harder(self):
        t = [0.0, 30.0]
        slow = measure_remaining_nodes(200, 1.0, 5, t, seed=4)
        fast = measure_remaining_nodes(200, 8.0, 5, t, seed=4)
        assert fast[1] / max(fast[0], 1e-9) < slow[1] / max(slow[0], 1e-9)

    def test_larger_zone_more_nodes(self):
        h4 = measure_remaining_nodes(200, 2.0, 4, [0.0], seed=5)
        h5 = measure_remaining_nodes(200, 2.0, 5, [0.0], seed=5)
        assert h4[0] > h5[0]

    def test_validates_times(self):
        with pytest.raises(ValueError):
            measure_remaining_nodes(100, 2.0, 5, [])
        with pytest.raises(ValueError):
            measure_remaining_nodes(100, 2.0, 5, [-1.0])


class TestRequiredDensity:
    def test_monotone_target(self):
        densities = [50, 100, 200, 400]
        lo = required_density_for_remaining(2.0, 2.0, 5, 10.0, densities, seed=6)
        hi = required_density_for_remaining(8.0, 2.0, 5, 10.0, densities, seed=6)
        assert hi >= lo

    def test_caps_at_max_density(self):
        out = required_density_for_remaining(1e6, 2.0, 5, 10.0, [50, 100], seed=7)
        assert out == 100.0

    def test_requires_densities(self):
        with pytest.raises(ValueError):
            required_density_for_remaining(5.0, 2.0, 5, 10.0, [])
