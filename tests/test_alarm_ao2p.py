"""Integration tests for the ALARM and AO2P comparison protocols."""

from __future__ import annotations

import pytest

from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.geometry.primitives import Point
from repro.location.service import LocationService
from repro.routing.alarm import AlarmConfig, AlarmProtocol
from repro.routing.ao2p import Ao2pConfig, Ao2pProtocol
from tests.conftest import build_network


def run_proto(cls, cfg=None, n_nodes=50, seed=11, n_packets=8):
    net = build_network(n_nodes=n_nodes, seed=seed)
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    location = LocationService(net, updates_enabled=True, cost_model=cost)
    proto = cls(net, location, metrics, cost, cfg)
    net.start_hello()
    net.engine.run(until=0.5)
    for _ in range(n_packets):
        proto.send_data(0, n_nodes - 1)
        net.engine.run(until=net.engine.now + 1.5)
    net.engine.run(until=net.engine.now + 2.0)
    if isinstance(proto, AlarmProtocol):
        proto.stop()
    return net, proto, metrics, cost


class TestAlarm:
    def test_delivers(self):
        _, _, metrics, _ = run_proto(AlarmProtocol)
        assert metrics.delivery_rate() >= 0.8

    def test_secure_map_complete(self):
        net, proto, _, _ = run_proto(AlarmProtocol)
        assert set(proto.secure_map) == set(range(net.n_nodes))

    def test_dissemination_rounds_counted(self):
        net, proto, metrics, _ = run_proto(AlarmProtocol)
        assert proto.dissemination_rounds >= 1
        assert metrics.counters.get("dissemination_rx", 0) > 0
        assert metrics.counters.get("dissemination_tx", 0) == (
            proto.dissemination_rounds * net.n_nodes
        )

    def test_dissemination_charges_crypto(self):
        net, proto, _, cost = run_proto(AlarmProtocol)
        assert cost.charges.get("sign", 0) >= net.n_nodes

    def test_per_hop_pubkey_latency(self):
        """ALARM's latency is dominated by per-hop public-key work."""
        _, _, metrics, _ = run_proto(AlarmProtocol)
        # Any multi-hop delivery costs at least one 250 ms verification.
        assert metrics.mean_latency() > 0.2

    def test_amortized_dissemination_positive(self):
        _, proto, _, _ = run_proto(AlarmProtocol)
        assert proto.amortized_dissemination_rx() > 0

    def test_stale_map_positions(self):
        """The secure map holds round-start positions, not live ones."""
        net, proto, _, _ = run_proto(
            AlarmProtocol, AlarmConfig(dissemination_interval=1000.0)
        )
        errs = [
            proto.secure_map[n.id].distance_to(n.position(net.engine.now))
            for n in net.nodes
        ]
        assert max(errs) > 0.0  # nodes moved since the round


class TestAo2p:
    def test_delivers(self):
        _, _, metrics, _ = run_proto(Ao2pProtocol)
        assert metrics.delivery_rate() >= 0.75

    def test_proxy_beyond_destination(self):
        net, proto, _, _ = run_proto(Ao2pProtocol, n_packets=1)
        s = Point(0, 0)
        d = Point(100, 0)
        proxy = proto._proxy_position(s, d)
        assert proxy.x > d.x  # beyond D on the S→D ray
        assert proxy.y == pytest.approx(0.0)

    def test_proxy_clamped_to_field(self):
        net, proto, _, _ = run_proto(Ao2pProtocol, n_packets=1)
        s = Point(0, 300)
        d = Point(550, 300)
        proxy = proto._proxy_position(s, d)
        assert proxy.x <= net.field.width

    def test_contention_delay_positive_and_bounded(self):
        _, proto, _, _ = run_proto(Ao2pProtocol, n_packets=1)
        cfg = proto.config
        for n in (0, 1, 5, 50):
            delay = proto._contention_delay(n)
            assert 0 < delay <= (cfg.contention_classes + 1) * cfg.contention_slot_s

    def test_latency_exceeds_alarm_slightly(self):
        """Paper: 'the latency of AO2P is a little higher than ALARM'."""
        _, _, m_alarm, _ = run_proto(AlarmProtocol, seed=21)
        _, _, m_ao2p, _ = run_proto(Ao2pProtocol, seed=21)
        assert m_ao2p.mean_latency() > m_alarm.mean_latency() * 0.8

    def test_hop_by_hop_pubkey(self):
        _, _, metrics, cost = run_proto(Ao2pProtocol)
        hops = sum(f.tx_count for f in metrics.flows())
        assert cost.charges.get("pubkey_encrypt", 0) >= hops * 0.5
