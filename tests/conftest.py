"""Shared fixtures: small, fast network instances."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

# Example budgets for the randomized (property/differential-oracle)
# suites.  The default stays CI-fast; the weekly cron workflow exports
# HYPOTHESIS_PROFILE=weekly for a much deeper adversarial search.
# Tests that pin max_examples in their own @settings are unaffected.
hypothesis_settings.register_profile("default", deadline=None)
hypothesis_settings.register_profile(
    "weekly", deadline=None, max_examples=1000, print_blob=True
)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "default")
)

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import MetricsCollector
from repro.crypto.cost_model import CryptoCostModel
from repro.geometry.field import Field
from repro.location.service import LocationService
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.static import StaticPosition
from repro.net.network import Network
from repro.sim.engine import Engine


def build_network(
    n_nodes: int = 40,
    seed: int = 7,
    field_size: float = 600.0,
    speed: float = 2.0,
    static: bool = False,
) -> Network:
    """A compact network for unit/integration tests."""
    engine = Engine(seed=seed)
    fld = Field(field_size, field_size)

    if static:
        def factory(node_id, rng):
            return StaticPosition(fld.random_point(rng))
    else:
        def factory(node_id, rng):
            return RandomWaypoint(fld, rng, speed_min=speed, speed_max=speed)

    return Network(engine, fld, factory, n_nodes)


@pytest.fixture
def small_network() -> Network:
    """40 mobile nodes in a 600 m field."""
    return build_network()

@pytest.fixture
def static_network() -> Network:
    """40 static nodes (deterministic geometry)."""
    return build_network(static=True)


@pytest.fixture
def wired_network():
    """Network + location service + metrics + cost model, beaconing."""
    net = build_network(n_nodes=50, seed=11)
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    location = LocationService(net, updates_enabled=True, cost_model=cost)
    net.start_hello()
    net.engine.run(until=0.5)
    return net, location, metrics, cost


@pytest.fixture
def base_config() -> ExperimentConfig:
    """A fast experiment config for integration tests."""
    return ExperimentConfig(
        n_nodes=60,
        duration=15.0,
        n_pairs=3,
        seed=5,
        field_size=800.0,
    )
