"""Tests for the GPSR baseline protocol and its geometric helpers."""

from __future__ import annotations

import math

import pytest

from repro.crypto.keys import PublicKey
from repro.experiments.metrics import MetricsCollector
from repro.crypto.cost_model import CryptoCostModel
from repro.geometry.primitives import Point
from repro.location.service import LocationService
from repro.net.neighbor_table import NeighborEntry
from repro.routing.gpsr import (
    GpsrConfig,
    GpsrProtocol,
    gabriel_neighbors,
    next_hop_greedy,
    next_hop_right_hand,
)
from tests.conftest import build_network

PK = PublicKey(123457, 65537)


def e(addr, x, y):
    return NeighborEntry(addr, b"p" * 20, Point(x, y), PK, 0.0)


class TestGreedy:
    def test_picks_closest_to_target(self):
        entries = [e(1, 10, 0), e(2, 50, 0), e(3, 90, 0)]
        hop = next_hop_greedy(Point(0, 0), Point(100, 0), entries)
        assert hop is not None and hop.link_address == 3

    def test_requires_strict_progress(self):
        # All neighbors are farther from the target than self.
        entries = [e(1, -10, 0), e(2, 0, 20)]
        assert next_hop_greedy(Point(0, 0), Point(5, 0), entries) is None

    def test_empty_neighborhood(self):
        assert next_hop_greedy(Point(0, 0), Point(1, 1), []) is None


class TestGabriel:
    def test_keeps_isolated_edges(self):
        entries = [e(1, 100, 0), e(2, 0, 100)]
        keep = gabriel_neighbors(Point(0, 0), entries)
        assert {x.link_address for x in keep} == {1, 2}

    def test_removes_witnessed_edge(self):
        # w=(50, 1) sits inside the circle with diameter (0,0)-(100,0).
        entries = [e(1, 100, 0), e(2, 50, 1)]
        keep = gabriel_neighbors(Point(0, 0), entries)
        assert {x.link_address for x in keep} == {2}

    def test_planar_subgraph_smaller(self):
        import numpy as np
        rng = np.random.default_rng(0)
        entries = [
            e(i, float(x), float(y))
            for i, (x, y) in enumerate(rng.uniform(-200, 200, size=(30, 2)))
        ]
        keep = gabriel_neighbors(Point(0, 0), entries)
        assert 0 < len(keep) < len(entries)


class TestRightHand:
    def test_sweeps_ccw_from_reference(self):
        entries = [e(1, 0, 100), e(2, -100, 0), e(3, 0, -100)]
        # Reference pointing at +x: first CCW neighbor is +y.
        hop = next_hop_right_hand(Point(0, 0), Point(100, 0), entries)
        assert hop is not None and hop.link_address == 1

    def test_straight_back_is_last_resort(self):
        entries = [e(1, 100, 0)]
        hop = next_hop_right_hand(Point(0, 0), Point(100, 0), entries)
        assert hop is not None and hop.link_address == 1

    def test_empty_returns_none(self):
        assert next_hop_right_hand(Point(0, 0), Point(1, 0), []) is None


def run_gpsr(n_nodes=50, seed=11, n_packets=10, static=False, **cfg_kw):
    net = build_network(n_nodes=n_nodes, seed=seed, static=static)
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    location = LocationService(net, updates_enabled=True, cost_model=cost)
    proto = GpsrProtocol(net, location, metrics, cost, GpsrConfig(**cfg_kw))
    net.start_hello()
    net.engine.run(until=0.5)
    for i in range(n_packets):
        proto.send_data(0, n_nodes - 1)
        net.engine.run(until=net.engine.now + 1.0)
    net.engine.run(until=net.engine.now + 2.0)
    return net, proto, metrics


class TestGpsrProtocol:
    def test_delivers_packets(self):
        _, _, metrics = run_gpsr()
        assert metrics.delivery_rate() >= 0.9

    def test_latency_millisecond_scale(self):
        _, _, metrics = run_gpsr()
        assert 0.001 < metrics.mean_latency() < 0.05

    def test_path_starts_and_ends_at_endpoints(self):
        _, _, metrics = run_gpsr()
        for f in metrics.flows():
            if f.delivered:
                assert f.path[0] == f.src
                assert f.path[-1] == f.dst

    def test_repeated_routes_nearly_identical(self):
        """GPSR's statistical weakness: same path every packet (§3.1)."""
        from repro.analysis.anonymity import mean_pairwise_overlap
        _, _, metrics = run_gpsr(static=True)
        routes = [f.path for f in metrics.flows() if f.delivered]
        assert len(routes) >= 5
        assert mean_pairwise_overlap(routes) > 0.9

    def test_send_to_self_rejected(self):
        net = build_network(n_nodes=10, static=True)
        location = LocationService(net)
        proto = GpsrProtocol(net, location)
        with pytest.raises(ValueError):
            proto.send_data(3, 3)

    def test_ttl_bounds_path(self):
        _, _, metrics = run_gpsr(ttl=2)
        for f in metrics.flows():
            assert f.tx_count <= 2 + 1  # ttl hops (+direct-neighbor hop)

    def test_participants_recorded(self):
        """Multi-hop flows record every transmitting relay."""
        import numpy as np
        net = build_network(n_nodes=50, seed=11, static=True)
        pos, _ = net.snapshot()
        d2 = ((pos[None] - pos[:, None]) ** 2).sum(-1)
        a, b = map(int, np.unravel_index(np.argmax(d2), d2.shape))
        metrics = MetricsCollector()
        location = LocationService(net, updates_enabled=True)
        proto = GpsrProtocol(net, location, metrics)
        net.start_hello()
        net.engine.run(until=0.5)
        for _ in range(5):
            proto.send_data(a, b)
            net.engine.run(until=net.engine.now + 1.0)
        union = metrics.participating_nodes()
        assert a in union  # the source transmits
        assert len(union) >= 2  # at least one relay on a cross-field path
