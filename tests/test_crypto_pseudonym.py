"""Tests for dynamic pseudonyms (§2.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.pseudonym import PseudonymManager, compute_pseudonym


def make_manager(lifetime=30.0, seed=0, mac=b"\x00\x01\x02\x03\x04\x05"):
    return PseudonymManager(mac, np.random.default_rng(seed), lifetime=lifetime)


class TestComputePseudonym:
    def test_is_sha1_length(self):
        assert len(compute_pseudonym(b"abcdef", 1.0)) == 20

    def test_depends_on_mac(self):
        assert compute_pseudonym(b"aaaaaa", 1.0) != compute_pseudonym(b"bbbbbb", 1.0)

    def test_depends_on_timestamp(self):
        assert compute_pseudonym(b"aaaaaa", 1.0) != compute_pseudonym(b"aaaaaa", 1.01)

    def test_deterministic(self):
        assert compute_pseudonym(b"aaaaaa", 5.5) == compute_pseudonym(b"aaaaaa", 5.5)


class TestPseudonymManager:
    def test_invalid_lifetime(self):
        with pytest.raises(ValueError):
            make_manager(lifetime=0.0)

    def test_stable_within_lifetime(self):
        m = make_manager(lifetime=30.0)
        a = m.current(0.0)
        b = m.current(29.9)
        assert a.digest == b.digest

    def test_rotates_after_expiry(self):
        m = make_manager(lifetime=30.0)
        a = m.current(0.0)
        b = m.current(30.1)
        assert a.digest != b.digest
        assert m.rotations() == 2

    def test_validity_window(self):
        m = make_manager(lifetime=10.0)
        p = m.current(5.0)
        assert p.valid_at(5.0)
        assert p.valid_at(14.9)
        assert not p.valid_at(15.0)
        assert not p.valid_at(4.9)

    def test_was_ours_tracks_history(self):
        m = make_manager(lifetime=5.0)
        a = m.current(0.0)
        b = m.current(10.0)
        assert m.was_ours(a.digest)
        assert m.was_ours(b.digest)
        assert not m.was_ours(b"\x00" * 20)

    def test_distinct_nodes_distinct_pseudonyms(self):
        a = make_manager(mac=b"\x00" * 6, seed=1).current(0.0)
        b = make_manager(mac=b"\x01" * 6, seed=1).current(0.0)
        assert a.digest != b.digest

    def test_hex_rendering(self):
        p = make_manager().current(0.0)
        assert p.hex == p.digest.hex()
        assert len(p.hex) == 40

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    def test_collision_resistance_property(self, seed_a, seed_b):
        """Distinct (mac, rng) managers virtually never collide."""
        mac_a = seed_a.to_bytes(6, "big", signed=False)
        mac_b = seed_b.to_bytes(6, "big", signed=False)
        a = PseudonymManager(mac_a, np.random.default_rng(seed_a)).current(0.0)
        b = PseudonymManager(mac_b, np.random.default_rng(seed_b)).current(0.0)
        if mac_a != mac_b:
            assert a.digest != b.digest
