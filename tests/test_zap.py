"""Integration tests for the ZAP comparison protocol."""

from __future__ import annotations

import pytest

from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.geometry.primitives import Point
from repro.location.service import LocationService
from repro.routing.zap import ZapConfig, ZapProtocol
from tests.conftest import build_network


def run_zap(cfg=None, n_nodes=60, seed=11, n_packets=8):
    net = build_network(n_nodes=n_nodes, seed=seed)
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    location = LocationService(net, updates_enabled=True,
                               cost_model=CryptoCostModel())
    proto = ZapProtocol(net, location, metrics, cost, cfg)
    observations = []
    proto.zone_delivery_observer = lambda t, r: observations.append(set(r))
    net.start_hello()
    net.engine.run(until=0.5)
    for _ in range(n_packets):
        proto.send_data(0, n_nodes - 1)
        net.engine.run(until=net.engine.now + 1.2)
    net.engine.run(until=net.engine.now + 2.0)
    location.stop()
    return net, proto, metrics, observations


class TestZap:
    def test_delivers(self):
        _, _, metrics, _ = run_zap()
        assert metrics.delivery_rate() >= 0.8

    def test_floods_inside_zone(self):
        _, _, metrics, _ = run_zap()
        assert metrics.counters.get("zap_zone_floods", 0) >= 1

    def test_destination_hidden_in_zone(self):
        """Recipient sets contain multiple zone members, not just D."""
        net, _, _, observations = run_zap()
        multi = [o for o in observations if len(o) >= 2]
        assert multi, "zone floods should reach several members"

    def test_zone_clamped_to_field(self):
        net, proto, _, _ = run_zap(n_packets=1)
        zone = proto._zone_for(Point(0, 0), seq=0)
        b = net.field.bounds
        assert b.contains_rect(zone)
        zone = proto._zone_for(Point(600, 600), seq=0)
        assert b.contains_rect(zone)

    def test_enlargement_grows_zone(self):
        cfg = ZapConfig(zone_side=200.0, enlargement_per_packet=0.25)
        _, proto, _, _ = run_zap(cfg=cfg, n_packets=1)
        z0 = proto._zone_for(Point(300, 300), seq=0)
        z4 = proto._zone_for(Point(300, 300), seq=4)
        assert z4.area > z0.area

    def test_enlargement_capped(self):
        cfg = ZapConfig(zone_side=200.0, enlargement_per_packet=1.0,
                        max_zone_side=400.0)
        _, proto, _, _ = run_zap(cfg=cfg, n_packets=1)
        z = proto._zone_for(Point(300, 300), seq=50)
        assert max(z.width, z.height) <= 400.0 + 1e-9

    def test_enlargement_raises_flood_cost(self):
        base = run_zap(cfg=ZapConfig(enlargement_per_packet=0.0),
                       n_packets=10)[2]
        grown = run_zap(cfg=ZapConfig(enlargement_per_packet=0.3),
                        n_packets=10)[2]
        base_pop = base.counters.get("zap_zone_population", 0)
        grown_pop = grown.counters.get("zap_zone_population", 0)
        assert grown_pop > base_pop

    def test_route_is_stable_like_gpsr(self):
        """ZAP provides no route anonymity: geo-forwarding legs repeat."""
        from repro.analysis.anonymity import mean_pairwise_overlap
        net, _, metrics, _ = run_zap(n_packets=10)
        routes = [f.path for f in metrics.flows() if f.delivered and len(f.path) > 2]
        if len(routes) >= 4:
            assert mean_pairwise_overlap(routes) > 0.3
