"""Batched MAC contention: bit-identity against the scalar oracle.

The batch paths (``Mac80211Dcf.unicast_batch`` / ``broadcast_batch``)
are scalar-replay chains: they must consume the shared RNG stream draw
for draw in the scalar per-receiver order (see the draw-order contract
in ``net/mac.py``), so every observable — outcomes, counters, drop
notifications, and the generator state itself — is bit-identical to a
scalar loop.  This suite pins that equivalence with Hypothesis across
fan-out sizes straddling ``_BATCH_MIN`` (both the delegating small-n
path and the real batch path), randomized distances/loads/payload
shapes, and retry-heavy load regimes that exercise the drop path, plus
the :class:`RadioModel` helpers the batch paths price with (memoised
``tx_time``, airtime/propagation vectors).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.mac import _BATCH_MIN, Mac80211Dcf, MacOutcome
from repro.net.radio import RadioModel


def _mac(seed: int, **kw) -> Mac80211Dcf:
    return Mac80211Dcf(RadioModel(), np.random.default_rng(seed), **kw)


#: Fan-out sizes concentrated around the cutover so both the scalar
#: delegation (n < _BATCH_MIN) and the batch path get equal coverage.
fanouts = st.integers(min_value=0, max_value=3 * _BATCH_MIN)

#: Loads up to 30 in-flight transmissions push p_fail to its 0.95 cap,
#: so retry exhaustion (the drop path) is exercised often.
loads = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)

distances = st.floats(min_value=0.0, max_value=250.0, allow_nan=False)


@st.composite
def unicast_cases(draw):
    n = draw(fanouts)
    dist = [draw(distances) for _ in range(n)]
    load = [draw(loads) for _ in range(n)]
    if draw(st.booleans()):
        payload = draw(st.integers(min_value=0, max_value=2048))
    else:
        payload = [
            draw(st.integers(min_value=0, max_value=2048)) for _ in range(n)
        ]
    flows = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.one_of(st.none(), st.integers(0, 99)),
                min_size=n,
                max_size=n,
            ),
        )
    )
    seed = draw(st.integers(0, 2**32 - 1))
    return payload, dist, load, flows, seed


class TestUnicastBatchParity:
    @given(unicast_cases())
    @settings(max_examples=200, deadline=None)
    def test_bit_identical_to_scalar_loop(self, case):
        payload, dist, load, flows, seed = case
        n = len(dist)
        scalar = _mac(seed)
        batch = _mac(seed)
        scalar_drops: list[int | None] = []
        batch_drops: list[int | None] = []
        # The listener snapshots the counters at firing time: the batch
        # path must have flushed its running totals before notifying,
        # exactly as the scalar path keeps them exact at every drop.
        scalar.drop_listener = lambda f: scalar_drops.append(
            (f, scalar.attempts_total, scalar.collisions_total,
             scalar.drops_total)
        )
        batch.drop_listener = lambda f: batch_drops.append(
            (f, batch.attempts_total, batch.collisions_total,
             batch.drops_total)
        )
        sizes = [payload] * n if isinstance(payload, int) else payload
        fl = flows if flows is not None else [None] * n
        expected = [
            scalar.unicast(sizes[k], dist[k], load[k], fl[k])
            for k in range(n)
        ]
        got = batch.unicast_batch(payload, dist, load, flows)
        assert got == expected
        assert batch.attempts_total == scalar.attempts_total
        assert batch.collisions_total == scalar.collisions_total
        assert batch.drops_total == scalar.drops_total
        assert batch_drops == scalar_drops
        assert (
            batch._rng.bit_generator.state
            == scalar._rng.bit_generator.state
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_numpy_array_inputs_match_lists(self, seed):
        """Array and list inputs resolve identically (same draws)."""
        dist = np.linspace(5.0, 240.0, 2 * _BATCH_MIN)
        load = np.arange(2 * _BATCH_MIN, dtype=np.float64) % 7
        a = _mac(seed)
        b = _mac(seed)
        assert a.unicast_batch(512, dist, load) == b.unicast_batch(
            512, dist.tolist(), load.tolist()
        )

    def test_small_fanout_delegates_to_scalar(self):
        """Below _BATCH_MIN the scalar loop is the implementation."""
        a = _mac(7)
        b = _mac(7)
        dist = [10.0] * (_BATCH_MIN - 1)
        load = [1.0] * (_BATCH_MIN - 1)
        got = a.unicast_batch(512, dist, load)
        expected = [b.unicast(512, d, ld) for d, ld in zip(dist, load)]
        assert got == expected

    def test_empty_fanout(self):
        mac = _mac(0)
        state = mac._rng.bit_generator.state
        assert mac.unicast_batch(512, [], []) == []
        assert mac.attempts_total == 0
        assert mac._rng.bit_generator.state == state


class TestBroadcastBatchParity:
    @given(
        st.lists(loads, min_size=0, max_size=3 * _BATCH_MIN),
        st.integers(0, 2048),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_bit_identical_to_scalar_loop(self, load, payload, seed):
        scalar = _mac(seed)
        batch = _mac(seed)
        expected = [scalar.broadcast(payload, ld) for ld in load]
        got = batch.broadcast_batch(payload, load)
        assert got == expected
        assert batch.attempts_total == scalar.attempts_total
        assert batch.collisions_total == scalar.collisions_total
        assert batch.drops_total == scalar.drops_total == 0
        assert (
            batch._rng.bit_generator.state
            == scalar._rng.bit_generator.state
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_per_sender_payload_sizes(self, seed):
        n = 2 * _BATCH_MIN
        sizes = [64 * (k % 5) for k in range(n)]
        load = [float(k % 4) for k in range(n)]
        a = _mac(seed)
        b = _mac(seed)
        expected = [a.broadcast(sizes[k], load[k]) for k in range(n)]
        assert b.broadcast_batch(sizes, load) == expected


class TestRadioBatchHelpers:
    def test_tx_time_memo_returns_identical_floats(self):
        r = RadioModel()
        fresh = RadioModel()
        for size in (0, 14, 512, 512, 1024, 14):
            assert r.tx_time(size) == fresh.tx_time(size)
        # The memo caches one entry per distinct size, not per call.
        assert len(r._tx_cache) == 4

    def test_tx_time_batch_matches_scalar(self):
        r = RadioModel()
        sizes = [0, 14, 120, 512, 1024, 4096]
        batch = r.tx_time_batch(np.array(sizes))
        for s, t in zip(sizes, batch.tolist()):
            assert t == r.tx_time(s)

    def test_propagation_delay_batch_matches_scalar(self):
        r = RadioModel()
        dists = np.array([0.0, 1.0, 99.5, 250.0, 1e4])
        batch = r.propagation_delay_batch(dists)
        for d, t in zip(dists.tolist(), batch.tolist()):
            assert t == r.propagation_delay(d)

    def test_in_range_mask_matches_scalar(self):
        r = RadioModel()
        dists = np.array([0.0, 249.9, 250.0, 250.1, 1e4])
        mask = r.in_range_mask(dists)
        for d, m in zip(dists.tolist(), mask.tolist()):
            assert m == r.in_range(d)


class TestPfailMemo:
    def test_memo_shared_between_scalar_and_batch(self):
        """Both paths must price failure from the same memoised float.

        NumPy's vectorised ``exp`` is not bit-identical to its scalar
        path on every input, so the batch path must never re-derive
        these probabilities — the memo is the single source.
        """
        mac = _mac(0)
        p_scalar = mac._attempt_failure_prob(3.0)
        assert mac._pfail_cache[3.0] == p_scalar
        mac.unicast_batch(512, [10.0] * _BATCH_MIN, [3.0] * _BATCH_MIN)
        assert mac._pfail_cache[3.0] == p_scalar

    def test_cap_and_base_loss(self):
        mac = _mac(0)
        assert mac._attempt_failure_prob(0.0) == pytest.approx(
            mac.base_loss
        )
        assert mac._attempt_failure_prob(1e9) == 0.95
