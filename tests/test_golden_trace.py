"""Golden-trace determinism suite for the per-run simulation kernel.

``tests/data/golden_traces.json`` records three seeded end-to-end runs
(ALERT/RWP, GPSR/RWP, ALERT/RPGM with every defense on) captured on the
pre-optimization kernel.  The optimized engine, vectorized hello
rounds, and crypto fast path must reproduce every metric — including
``events_processed`` and float airtimes via ``repr`` — bit for bit.

The cost-only crypto mode has its own parity contract: the same runs
with ``crypto_mode="cost-only"`` must match the *real-crypto* golden
numbers exactly, because the protocol never acts on ciphertext bytes
that a shadow cannot reproduce (lengths and carried plaintexts cover
every inspection point).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig, TrafficConfig
from repro.experiments.runner import RunResult, run_experiment

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_traces.json"

GOLDEN_CONFIGS = {
    "alert_rwp": ExperimentConfig(
        protocol="ALERT", n_nodes=100, duration=20.0, n_pairs=5, seed=1
    ),
    "gpsr_rwp": ExperimentConfig(
        protocol="GPSR", n_nodes=100, duration=20.0, n_pairs=5, seed=2
    ),
    "alert_group_defended": ExperimentConfig(
        protocol="ALERT",
        n_nodes=80,
        duration=15.0,
        n_pairs=4,
        seed=3,
        mobility="group",
        n_groups=8,
        group_range=150.0,
        alert_options={
            "intersection_defense": True,
            "notify_and_go": True,
            "enable_confirmation": True,
        },
    ),
    # Large-field config guarding the 1k-node fast lane (typed delivery
    # records, batched greedy forwarding, round-batched hello ingest) at
    # the paper's density scaled to 1000 nodes.
    "alert_rwp_1k": ExperimentConfig(
        protocol="ALERT",
        n_nodes=1000,
        field_size=2236.0,
        duration=5.0,
        n_pairs=20,
        seed=11,
    ),
    # Batch-lane guard: big enough (≥2000 nodes) that hello rounds and
    # broadcast fan-outs exercise the calendar timer lane, batched
    # OP_DELIVER_BATCH records, and lazy neighbor-table ingest at
    # scale; the trace pins their by-construction ordering equivalence
    # against the plain heap path.
    "alert_rwp_2k": ExperimentConfig(
        protocol="ALERT",
        n_nodes=2000,
        field_size=3162.3,
        duration=5.0,
        n_pairs=40,
        seed=17,
    ),
    # Closed-loop traffic config: congested enough that AIMD backoff
    # actually fires, so the trace pins the whole feedback loop — MAC
    # drop hooks, delivery/timeout reporting, interval arithmetic —
    # not just the open-loop kernel.
    "alert_adaptive": ExperimentConfig(
        protocol="ALERT",
        n_nodes=50,
        field_size=350.0,
        duration=8.0,
        n_pairs=10,
        send_interval=0.1,
        seed=13,
        traffic=TrafficConfig(
            model="adaptive",
            min_interval=0.05,
            max_interval=1.0,
            backoff_factor=1.5,
            recovery_step=0.25,
        ),
    ),
}


def trace_summary(result: RunResult) -> dict:
    """The comparison record: every end-to-end observable, floats via
    ``repr`` so the comparison is bit-exact, not approximate."""
    m = result.metrics
    summary = {
        "events_processed": result.engine.events_processed,
        "packets_sent": m.packets_sent,
        "delivery_rate": repr(result.delivery_rate),
        "mean_latency": repr(result.mean_latency),
        "mean_hops": repr(result.mean_hops),
        "mean_rf_count": repr(result.mean_rf_count),
        "hello_tx": result.network.hello_tx,
        "unicast_tx": result.network.unicast_tx,
        "broadcast_tx": result.network.broadcast_tx,
        "airtime_tx_s": repr(result.network.airtime_tx_s),
        "airtime_rx_s": repr(result.network.airtime_rx_s),
        "counters": {k: repr(v) for k, v in sorted(m.counters.items())},
    }
    if result.feedback is not None:
        # closed-loop runs additionally pin the whole feedback loop;
        # open-loop summaries are unchanged, so pre-existing golden
        # entries compare byte for byte
        summary["feedback"] = result.feedback.counters()
        summary["backoff_events"] = result.backoff_events
        summary["recovery_events"] = result.recovery_events
        summary["final_intervals_s"] = [
            repr(s.interval) for s in result.sources
        ]
    return summary


def load_golden() -> dict:
    with GOLDEN_PATH.open() as f:
        return json.load(f)


class TestGoldenTraces:
    @pytest.mark.parametrize("name", sorted(GOLDEN_CONFIGS))
    def test_kernel_reproduces_golden_trace(self, name):
        golden = load_golden()[name]
        got = trace_summary(run_experiment(GOLDEN_CONFIGS[name]))
        assert got == golden

    def test_event_counts_cover_all_processed_events(self):
        result = run_experiment(GOLDEN_CONFIGS["alert_rwp"])
        counts = result.event_counts
        assert sum(counts.values()) == result.engine.events_processed
        assert counts.get("hello", 0) > 0
        assert counts.get("data", 0) > 0


class TestCostOnlyParity:
    @pytest.mark.parametrize(
        "name", ["alert_rwp", "alert_group_defended"]
    )
    def test_cost_only_matches_real_golden(self, name):
        cfg = GOLDEN_CONFIGS[name]
        co = cfg.with_(
            alert_options={**cfg.alert_options, "crypto_mode": "cost-only"}
        )
        assert trace_summary(run_experiment(co)) == load_golden()[name]

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        defense=st.booleans(),
        notify=st.booleans(),
        confirm=st.booleans(),
        packet_size=st.sampled_from([64, 512]),
    )
    def test_cost_only_parity_property(
        self, seed, defense, notify, confirm, packet_size
    ):
        """Random small configs: cost-only == real on every observable."""
        base = ExperimentConfig(
            protocol="ALERT",
            n_nodes=30,
            field_size=600.0,
            duration=5.0,
            n_pairs=2,
            seed=seed,
            packet_size=packet_size,
            alert_options={
                "intersection_defense": defense,
                "notify_and_go": notify,
                "enable_confirmation": confirm,
            },
        )
        real = run_experiment(base)
        cost_only = run_experiment(
            base.with_(
                alert_options={
                    **base.alert_options,
                    "crypto_mode": "cost-only",
                }
            )
        )
        assert trace_summary(cost_only) == trace_summary(real)
        assert cost_only.event_counts == real.event_counts
        assert cost_only.cost.charges == real.cost.charges
