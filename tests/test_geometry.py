"""Tests for Point, Rect, and Field, incl. hypothesis properties."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.field import Field
from repro.geometry.primitives import Point, Rect

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
coords = st.floats(0.0, 1000.0, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_sq_distance(self):
        assert Point(1, 1).sq_distance_to(Point(4, 5)) == 25.0

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translate(self):
        assert Point(1, 2).translate(3, -1) == Point(4, 1)

    def test_toward_moves_along_ray(self):
        p = Point(0, 0).toward(Point(10, 0), 4.0)
        assert p == Point(4.0, 0.0)

    def test_toward_beyond_target(self):
        p = Point(0, 0).toward(Point(1, 0), 5.0)
        assert p == Point(5.0, 0.0)

    def test_toward_self_is_noop(self):
        p = Point(2, 3)
        assert p.toward(p, 10.0) == p

    def test_as_array(self):
        assert np.allclose(Point(1.5, 2.5).as_array(), [1.5, 2.5])

    def test_iter_unpacks(self):
        x, y = Point(7, 8)
        assert (x, y) == (7, 8)

    @given(finite, finite, finite, finite)
    def test_distance_symmetric(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert math.isclose(a.distance_to(b), b.distance_to(a))

    @given(finite, finite, finite, finite)
    def test_sq_distance_consistent(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert math.isclose(
            a.sq_distance_to(b), a.distance_to(b) ** 2, rel_tol=1e-9, abs_tol=1e-6
        )


class TestRect:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_dimensions(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3 and r.height == 6 and r.area == 18
        assert r.center == Point(2.5, 5.0)

    def test_half_open_containment(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(Point(0, 0))
        assert not r.contains(Point(10, 10))
        assert r.contains_closed(Point(10, 10))

    def test_split_horizontal_halves_height(self):
        bottom, top = Rect(0, 0, 4, 8).split_horizontal()
        assert bottom == Rect(0, 0, 4, 4)
        assert top == Rect(0, 4, 4, 8)

    def test_split_vertical_halves_width(self):
        left, right = Rect(0, 0, 4, 8).split_vertical()
        assert left == Rect(0, 0, 2, 8)
        assert right == Rect(2, 0, 4, 8)

    def test_split_halves_disjoint_exhaustive(self):
        r = Rect(0, 0, 10, 10)
        a, b = r.split_vertical()
        for p in (Point(0, 5), Point(4.999, 5), Point(5, 5), Point(9.99, 5)):
            assert a.contains(p) != b.contains(p)  # exactly one half

    def test_intersects(self):
        a = Rect(0, 0, 5, 5)
        assert a.intersects(Rect(4, 4, 6, 6))
        assert not a.intersects(Rect(5, 0, 10, 5))  # touching edges: disjoint

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 11, 11))

    def test_clamp(self):
        r = Rect(0, 0, 10, 10)
        assert r.clamp(Point(-5, 15)) == Point(0, 10)
        assert r.clamp(Point(3, 4)) == Point(3, 4)

    def test_corners_order(self):
        cs = Rect(0, 0, 2, 3).corners()
        assert cs == (Point(0, 0), Point(2, 0), Point(2, 3), Point(0, 3))

    def test_random_point_inside(self):
        rng = np.random.default_rng(0)
        r = Rect(10, 20, 30, 40)
        for _ in range(50):
            assert r.contains_closed(r.random_point(rng))

    @given(coords, coords, st.floats(1, 500), st.floats(1, 500))
    def test_split_preserves_area(self, x0, y0, w, h):
        r = Rect(x0, y0, x0 + w, y0 + h)
        for a, b in (r.split_horizontal(), r.split_vertical()):
            assert math.isclose(a.area + b.area, r.area, rel_tol=1e-9)
            assert math.isclose(a.area, b.area, rel_tol=1e-9)


class TestField:
    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            Field(0, 100)

    def test_area_and_density(self):
        f = Field(1000, 1000)
        assert f.area == 1e6
        assert f.density(200) == pytest.approx(2e-4)

    def test_bounds_anchored_at_origin(self):
        assert Field(10, 20).bounds == Rect(0, 0, 10, 20)

    def test_contains_closed_boundary(self):
        f = Field(10, 10)
        assert f.contains(Point(10, 10))
        assert not f.contains(Point(10.01, 5))

    def test_random_points_inside(self):
        f = Field(100, 50)
        rng = np.random.default_rng(1)
        pts = f.random_points(100, rng)
        assert len(pts) == 100
        assert all(f.contains(p) for p in pts)

    def test_clamp(self):
        f = Field(10, 10)
        assert f.clamp(Point(-1, 11)) == Point(0, 10)
