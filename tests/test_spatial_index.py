"""Tests for the uniform-grid spatial index (vs brute force)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.spatial_index import GridIndex


def brute_radius(positions, x, y, r):
    d = positions - np.array([x, y])
    return set(np.flatnonzero((d * d).sum(axis=1) <= r * r).tolist())


class TestGridIndex:
    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((5, 3)), 10.0)

    def test_invalid_cell_size_raises(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((5, 2)), 0.0)

    def test_empty_index(self):
        idx = GridIndex(np.empty((0, 2)), 10.0)
        assert len(idx) == 0
        assert idx.query_radius(0, 0, 100).size == 0
        with pytest.raises(ValueError):
            idx.nearest(0, 0)

    def test_radius_query_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 1000, size=(300, 2))
        idx = GridIndex(pos, 250.0)
        for _ in range(25):
            x, y = rng.uniform(0, 1000, size=2)
            got = set(idx.query_radius(x, y, 250.0).tolist())
            assert got == brute_radius(pos, x, y, 250.0)

    def test_radius_query_other_radius_still_correct(self):
        rng = np.random.default_rng(4)
        pos = rng.uniform(0, 500, size=(120, 2))
        idx = GridIndex(pos, 250.0)  # cell size != query radius
        for r in (50.0, 100.0, 400.0):
            got = set(idx.query_radius(250, 250, r).tolist())
            assert got == brute_radius(pos, 250, 250, r)

    def test_radius_results_sorted(self):
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, 100, size=(60, 2))
        idx = GridIndex(pos, 25.0)
        out = idx.query_radius(50, 50, 40)
        assert list(out) == sorted(out)

    def test_rect_query_half_open(self):
        pos = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 10.0]])
        idx = GridIndex(pos, 10.0)
        hits = set(idx.query_rect(0, 0, 10, 10).tolist())
        assert hits == {0, 1}  # (10,10) excluded by half-open semantics

    def test_nearest(self):
        pos = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        idx = GridIndex(pos, 5.0)
        assert idx.nearest(9.0, 1.0) == 1

    def test_nearest_with_exclusion(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        idx = GridIndex(pos, 5.0)
        assert idx.nearest(0.0, 0.0, exclude=0) == 1

    def test_negative_coordinates(self):
        pos = np.array([[-100.0, -100.0], [-90.0, -100.0], [100.0, 100.0]])
        idx = GridIndex(pos, 50.0)
        got = set(idx.query_radius(-95.0, -100.0, 20.0).tolist())
        assert got == {0, 1}

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 80),
        st.floats(10.0, 400.0),
        st.integers(0, 10_000),
    )
    def test_radius_property(self, n, radius, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 1000, size=(n, 2))
        idx = GridIndex(pos, 137.0)
        x, y = rng.uniform(0, 1000, size=2)
        got = set(idx.query_radius(x, y, radius).tolist())
        assert got == brute_radius(pos, x, y, radius)
