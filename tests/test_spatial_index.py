"""Tests for the uniform-grid spatial index (vs brute force)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.spatial_index import _SMALL_N, GridIndex


def brute_radius(positions, x, y, r):
    d = positions - np.array([x, y])
    return set(np.flatnonzero((d * d).sum(axis=1) <= r * r).tolist())


class TestGridIndex:
    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((5, 3)), 10.0)

    def test_invalid_cell_size_raises(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((5, 2)), 0.0)

    def test_empty_index(self):
        idx = GridIndex(np.empty((0, 2)), 10.0)
        assert len(idx) == 0
        assert idx.query_radius(0, 0, 100).size == 0
        with pytest.raises(ValueError):
            idx.nearest(0, 0)

    def test_radius_query_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 1000, size=(300, 2))
        idx = GridIndex(pos, 250.0)
        for _ in range(25):
            x, y = rng.uniform(0, 1000, size=2)
            got = set(idx.query_radius(x, y, 250.0).tolist())
            assert got == brute_radius(pos, x, y, 250.0)

    def test_radius_query_other_radius_still_correct(self):
        rng = np.random.default_rng(4)
        pos = rng.uniform(0, 500, size=(120, 2))
        idx = GridIndex(pos, 250.0)  # cell size != query radius
        for r in (50.0, 100.0, 400.0):
            got = set(idx.query_radius(250, 250, r).tolist())
            assert got == brute_radius(pos, 250, 250, r)

    def test_radius_results_sorted(self):
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, 100, size=(60, 2))
        idx = GridIndex(pos, 25.0)
        out = idx.query_radius(50, 50, 40)
        assert list(out) == sorted(out)

    def test_rect_query_half_open(self):
        pos = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 10.0]])
        idx = GridIndex(pos, 10.0)
        hits = set(idx.query_rect(0, 0, 10, 10).tolist())
        assert hits == {0, 1}  # (10,10) excluded by half-open semantics

    def test_nearest(self):
        pos = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        idx = GridIndex(pos, 5.0)
        assert idx.nearest(9.0, 1.0) == 1

    def test_nearest_with_exclusion(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        idx = GridIndex(pos, 5.0)
        assert idx.nearest(0.0, 0.0, exclude=0) == 1

    def test_negative_coordinates(self):
        pos = np.array([[-100.0, -100.0], [-90.0, -100.0], [100.0, 100.0]])
        idx = GridIndex(pos, 50.0)
        got = set(idx.query_radius(-95.0, -100.0, 20.0).tolist())
        assert got == {0, 1}

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 80),
        st.floats(10.0, 400.0),
        st.integers(0, 10_000),
    )
    def test_radius_property(self, n, radius, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 1000, size=(n, 2))
        idx = GridIndex(pos, 137.0)
        x, y = rng.uniform(0, 1000, size=2)
        got = set(idx.query_radius(x, y, radius).tolist())
        assert got == brute_radius(pos, x, y, radius)


def brute_rect(positions, x0, y0, x1, y1):
    p = positions
    mask = (p[:, 0] >= x0) & (p[:, 0] < x1) & (p[:, 1] >= y0) & (p[:, 1] < y1)
    return set(np.flatnonzero(mask).tolist())


def brute_nearest(positions, x, y, exclude=None):
    d = positions - np.array([x, y])
    dist2 = (d * d).sum(axis=1)
    if exclude is not None:
        dist2[exclude] = np.inf
    return int(np.argmin(dist2))


#: Cell pairs that collided under the former multiplicative-hash
#: bucketing (``cx * 0x9E3779B1 + cy``): (a, b) and (a + 1, b - K)
#: hash identically, so their buckets silently merged.
_HASH_K = 0x9E3779B1


def _colliding_positions(cell_size):
    """Positions in distinct cells whose old hash keys collide."""
    pts = []
    for cx, cy in [(0, 0), (1, -_HASH_K), (2, -2 * _HASH_K), (-1, _HASH_K)]:
        # Two points per cell, strictly inside it.
        pts.append(((cx + 0.25) * cell_size, (cy + 0.25) * cell_size))
        pts.append(((cx + 0.75) * cell_size, (cy + 0.75) * cell_size))
    return np.array(pts)


class TestBucketCollisions:
    """Distinct cells must never share a bucket (old hash collided)."""

    def test_colliding_cells_stay_separate(self):
        cs = 10.0
        pos = _colliding_positions(cs)
        idx = GridIndex(pos, cs)
        # Every point must find exactly its cell-mates within the cell.
        for k, (x, y) in enumerate(pos):
            got = set(idx.query_radius(x, y, cs / 2).tolist())
            assert got == brute_radius(pos, x, y, cs / 2), f"point {k}"

    def test_colliding_cells_nearest(self):
        cs = 10.0
        pos = _colliding_positions(cs)
        idx = GridIndex(pos, cs)
        for k, (x, y) in enumerate(pos):
            assert idx.nearest(x, y, exclude=k) == brute_nearest(
                pos, x, y, exclude=k
            )

    def test_colliding_cells_rect(self):
        cs = 10.0
        pos = _colliding_positions(cs)
        idx = GridIndex(pos, cs)
        # A rect covering only the (1, -K) cell.
        x0, y0 = 1 * cs, -_HASH_K * cs
        got = set(idx.query_rect(x0, y0, x0 + cs, y0 + cs).tolist())
        assert got == brute_rect(pos, x0, y0, x0 + cs, y0 + cs)
        assert got == {2, 3}


class TestNearestExclude:
    def test_exclude_with_two_nodes_same_cell(self):
        pos = np.array([[5.0, 5.0], [6.0, 5.0]])
        idx = GridIndex(pos, 100.0)  # both nodes in one cell
        assert idx.nearest(5.0, 5.0, exclude=0) == 1
        assert idx.nearest(6.0, 5.0, exclude=1) == 0

    def test_exclude_with_two_nodes_distant_cells(self):
        pos = np.array([[5.0, 5.0], [995.0, 995.0]])
        idx = GridIndex(pos, 10.0)
        # The nearest node is excluded; the search must keep expanding
        # to the far cell rather than failing or returning node 0.
        assert idx.nearest(5.0, 5.0, exclude=0) == 1

    def test_exclude_only_node_raises(self):
        idx = GridIndex(np.array([[1.0, 1.0]]), 10.0)
        with pytest.raises(ValueError):
            idx.nearest(0.0, 0.0, exclude=0)

    def test_tie_breaks_to_smallest_index(self):
        pos = np.array([[10.0, 0.0], [0.0, 10.0], [-10.0, 0.0]])
        idx = GridIndex(pos, 7.0)
        assert idx.nearest(0.0, 0.0) == brute_nearest(pos, 0.0, 0.0) == 0


class TestPropertyVsBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 60),
        st.floats(5.0, 300.0),
        st.integers(0, 10_000),
    )
    def test_rect_property(self, n, cell_size, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(-500, 1000, size=(n, 2))
        idx = GridIndex(pos, cell_size)
        x0, y0 = rng.uniform(-600, 900, size=2)
        w, h = rng.uniform(0, 800, size=2)
        got = idx.query_rect(x0, y0, x0 + w, y0 + h)
        assert list(got) == sorted(got)
        assert set(got.tolist()) == brute_rect(pos, x0, y0, x0 + w, y0 + h)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 60),
        st.floats(5.0, 300.0),
        st.integers(0, 10_000),
        st.booleans(),
    )
    def test_nearest_property(self, n, cell_size, seed, use_exclude):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(-500, 1000, size=(n, 2))
        idx = GridIndex(pos, cell_size)
        x, y = rng.uniform(-600, 1100, size=2)
        exclude = int(rng.integers(0, n)) if use_exclude else None
        assert idx.nearest(x, y, exclude=exclude) == brute_nearest(
            pos, x, y, exclude=exclude
        )

    def test_rect_large_population_bucket_path(self):
        # Above the small-N threshold the bucketed gather runs; it must
        # agree with brute force exactly.
        rng = np.random.default_rng(21)
        pos = rng.uniform(0, 2000, size=(900, 2))
        idx = GridIndex(pos, 100.0)
        for _ in range(20):
            x0, y0 = rng.uniform(-100, 1900, size=2)
            w, h = rng.uniform(0, 600, size=2)
            got = idx.query_rect(x0, y0, x0 + w, y0 + h)
            assert list(got) == sorted(got)
            assert set(got.tolist()) == brute_rect(pos, x0, y0, x0 + w, y0 + h)

    def test_nearest_large_population_ring_path(self):
        rng = np.random.default_rng(22)
        pos = rng.uniform(0, 2000, size=(900, 2))
        idx = GridIndex(pos, 100.0)
        for _ in range(30):
            x, y = rng.uniform(-200, 2200, size=2)
            exclude = int(rng.integers(0, 900)) if rng.random() < 0.5 else None
            assert idx.nearest(x, y, exclude=exclude) == brute_nearest(
                pos, x, y, exclude=exclude
            )

    def test_nearest_large_sparse_clusters(self):
        # Two far-apart clusters force the ring search to expand many
        # empty rings before terminating.
        rng = np.random.default_rng(23)
        a = rng.uniform(0, 50, size=(300, 2))
        b = rng.uniform(5000, 5050, size=(300, 2))
        pos = np.vstack([a, b])
        idx = GridIndex(pos, 10.0)
        for x, y in [(25.0, 25.0), (5025.0, 5025.0), (2500.0, 2500.0)]:
            assert idx.nearest(x, y) == brute_nearest(pos, x, y)

class TestNearestCrossover:
    """``nearest`` exclude-handling on both sides of the ``_SMALL_N``
    cutover: N == _SMALL_N runs the vectorised full argmin, N ==
    _SMALL_N + 1 the expanding-ring bucket search.  Identical point
    sets (plus one far-away extra) must give identical answers."""

    @staticmethod
    def _point_sets(seed):
        rng = np.random.default_rng(seed)
        small = rng.uniform(0, 2000, size=(_SMALL_N, 2))
        # The extra node sits far outside every query so it never wins:
        # both indices answer from the shared _SMALL_N points.
        large = np.vstack([small, [[50_000.0, 50_000.0]]])
        return rng, small, large

    def test_both_paths_agree_with_exclude(self):
        rng, small, large = self._point_sets(31)
        scan = GridIndex(small, 100.0)
        ring = GridIndex(large, 100.0)
        for _ in range(50):
            x, y = rng.uniform(-100, 2100, size=2)
            exclude = int(rng.integers(0, _SMALL_N))
            want = brute_nearest(small, x, y, exclude=exclude)
            assert scan.nearest(x, y, exclude=exclude) == want
            assert ring.nearest(x, y, exclude=exclude) == want

    def test_excluding_the_unique_nearest_on_both_paths(self):
        rng, small, large = self._point_sets(32)
        scan = GridIndex(small, 100.0)
        ring = GridIndex(large, 100.0)
        for _ in range(25):
            x, y = rng.uniform(0, 2000, size=2)
            first = brute_nearest(small, x, y)
            want = brute_nearest(small, x, y, exclude=first)
            assert scan.nearest(x, y, exclude=first) == want
            assert ring.nearest(x, y, exclude=first) == want

    def test_duplicate_positions_tie_break_both_paths(self):
        rng, small, large = self._point_sets(33)
        # Make nodes 7 and 11 exact duplicates in both sets.
        for pos in (small, large):
            pos[11] = pos[7]
        scan = GridIndex(small.copy(), 100.0)
        ring = GridIndex(large.copy(), 100.0)
        x, y = small[7]
        assert scan.nearest(x, y) == ring.nearest(x, y) == 7
        assert scan.nearest(x, y, exclude=7) == 11
        assert ring.nearest(x, y, exclude=7) == 11

    def test_out_of_range_exclude_ignored_on_both_paths(self):
        _, small, large = self._point_sets(34)
        scan = GridIndex(small, 100.0)
        ring = GridIndex(large, 100.0)
        for exclude in (-1, _SMALL_N + 5, 10_000):
            want = brute_nearest(small, 500.0, 500.0)
            assert scan.nearest(500.0, 500.0, exclude=exclude) == want
            assert ring.nearest(500.0, 500.0, exclude=exclude) == want


class TestAdversarialCollidingCells:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.floats(1.0, 50.0))
    def test_adversarial_colliding_cells_radius(self, seed, cell_size):
        rng = np.random.default_rng(seed)
        base = _colliding_positions(cell_size)
        extra = rng.uniform(0, 4 * cell_size, size=(10, 2))
        pos = np.vstack([base, extra])
        idx = GridIndex(pos, cell_size)
        for x, y in base:
            r = cell_size * float(rng.uniform(0.4, 2.5))
            got = set(idx.query_radius(x, y, r).tolist())
            assert got == brute_radius(pos, x, y, r)
