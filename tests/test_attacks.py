"""Tests for the adversary models."""

from __future__ import annotations

import math

import pytest

from repro.attacks.adversary import (
    DeliveryObservation,
    PassiveObserver,
    union_observations_by_window,
)
from repro.attacks.intersection_attack import IntersectionAttacker
from repro.attacks.timing_attack import TimingAttacker
from repro.attacks.traffic_analysis import (
    InterceptionAttacker,
    RouteTracer,
    dos_robustness,
)


def obs(t, recipients):
    return DeliveryObservation(time=t, recipients=frozenset(recipients))


class TestPassiveObserver:
    def test_records(self):
        o = PassiveObserver()
        o.observe_delivery(1.0, [1, 2])
        o.observe_transmission(2.0, 5)
        assert o.observation_count() == 2
        assert o.deliveries[0].recipients == {1, 2}


class TestWindowUnion:
    def test_merges_frames_of_one_delivery(self):
        observations = [
            obs(10.0, {1, 2}),
            obs(10.3, {2, 3}),   # same packet, second frame
            obs(12.0, {4}),      # next packet
        ]
        merged = union_observations_by_window(observations, 1.0)
        assert len(merged) == 2
        assert merged[0].recipients == {1, 2, 3}
        assert merged[1].recipients == {4}

    def test_sorts_by_time(self):
        observations = [obs(12.0, {4}), obs(10.0, {1})]
        merged = union_observations_by_window(observations, 1.0)
        assert [m.time for m in merged] == [10.0, 12.0]

    def test_empty(self):
        assert union_observations_by_window([], 1.0) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            union_observations_by_window([], 0.0)


class TestIntersectionAttack:
    def test_identifies_constant_member(self):
        """Fig. 5: D always present, bystanders churn → D identified."""
        a = IntersectionAttacker()
        a.observe(obs(0, {7, 1, 2, 3}))
        a.observe(obs(2, {7, 3, 4, 5}))
        a.observe(obs(4, {7, 5, 6, 8}))
        a.observe(obs(6, {7, 9, 10}))
        assert a.candidates() == {7}
        assert a.identified(7)
        assert not a.defeated(7)

    def test_defense_drops_destination(self):
        """With the two-step multicast, D misses some recipient sets."""
        a = IntersectionAttacker()
        a.observe(obs(0, {7, 1, 2}))
        a.observe(obs(2, {3, 4, 5}))  # D held back this time
        assert a.defeated(7)
        assert not a.identified(7)

    def test_history_is_shrinkage_curve(self):
        a = IntersectionAttacker()
        a.observe(obs(0, {1, 2, 3, 4}))
        a.observe(obs(1, {1, 2, 3}))
        a.observe(obs(2, {1, 2}))
        assert a.history == [4, 3, 2]

    def test_observe_all(self):
        a = IntersectionAttacker()
        final = a.observe_all([obs(0, {1, 2}), obs(1, {2, 3})])
        assert final == {2}
        assert a.observations == 2

    def test_empty_before_observations(self):
        assert IntersectionAttacker().candidates() == set()


class TestTimingAttack:
    def test_fixed_delay_identified(self):
        """The paper's §3.2 example: constant 5 s delay → matched."""
        atk = TimingAttacker(min_pairs=3)
        deps = [0.0, 10.0, 20.0, 30.0, 40.0]
        arrs = [d + 5.0 for d in deps]
        v = atk.correlate(deps, arrs)
        assert v.identified
        assert v.mean_delay == 5.0
        assert v.cv < 0.01

    def test_jittered_delay_not_identified(self):
        atk = TimingAttacker(min_pairs=3, cv_threshold=0.15, max_delay=10.0)
        deps = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
        jitter = [0.5, 4.0, 1.0, 6.0, 0.2, 3.0]
        arrs = [d + j for d, j in zip(deps, jitter)]
        assert not atk.correlate(deps, arrs).identified

    def test_too_few_pairs_not_identified(self):
        atk = TimingAttacker(min_pairs=5)
        assert not atk.correlate([0.0, 1.0], [0.1, 1.1]).identified

    def test_no_arrivals(self):
        v = TimingAttacker().correlate([1.0, 2.0], [])
        assert v.matched_pairs == 0 and not v.identified

    def test_max_delay_filters(self):
        atk = TimingAttacker(max_delay=1.0)
        delays = atk.match_delays([0.0], [100.0])
        assert delays == []

    def test_best_candidate_picks_regular_receiver(self):
        atk = TimingAttacker(min_pairs=3)
        deps = [0.0, 10.0, 20.0, 30.0]
        regular = [d + 2.0 for d in deps]
        noisy = [d + j for d, j in zip(deps, [0.3, 3.9, 1.7, 2.8])]
        cid, verdict = atk.best_candidate(deps, {1: noisy, 2: regular})
        assert cid == 2
        assert verdict is not None and verdict.cv < 0.01


class TestTrafficAnalysis:
    def test_fixed_path_predictable(self):
        t = RouteTracer()
        for _ in range(5):
            t.observe([1, 2, 3, 4])
        assert t.consecutive_overlap() == 1.0
        assert t.prediction_accuracy() == 1.0
        assert t.route_diversity() == 4

    def test_random_paths_unpredictable(self):
        t = RouteTracer()
        t.observe([1, 2, 3])
        t.observe([4, 5, 6])
        t.observe([7, 8, 9])
        assert t.consecutive_overlap() == 0.0
        assert t.prediction_accuracy() == 0.0
        assert t.route_diversity() == 9

    def test_interception_of_stable_route(self):
        atk = InterceptionAttacker(budget=2)
        history = [[1, 5, 6, 2]] * 5
        future = [[1, 5, 6, 2]] * 5
        assert atk.interception_rate(history, future) == 1.0
        assert set(atk.choose_targets(history)) <= {5, 6}

    def test_interception_excludes_endpoints(self):
        atk = InterceptionAttacker(budget=3)
        targets = atk.choose_targets([[1, 5, 2]] * 3, exclude=[1, 2])
        assert targets == [5]

    def test_interception_of_random_routes_low(self):
        atk = InterceptionAttacker(budget=2)
        history = [[1, 10, 11, 2], [1, 12, 13, 2], [1, 14, 15, 2]]
        future = [[1, 20, 21, 2], [1, 22, 23, 2]]
        assert atk.interception_rate(history, future) == 0.0

    def test_interception_empty_future_nan(self):
        atk = InterceptionAttacker()
        assert math.isnan(atk.interception_rate([[1, 2, 3]], []))

    def test_dos_robustness(self):
        assert dos_robustness([[1, 2, 3]], [[1, 2, 3]]) == 0.0
        assert dos_robustness([[1, 2, 3]], [[4, 5, 6]]) == 1.0
        assert math.isnan(dos_robustness([], [[1]]))
