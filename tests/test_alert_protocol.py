"""Integration tests for the ALERT protocol."""

from __future__ import annotations

import pytest

from repro.core.alert import AlertProtocol
from repro.core.config import AlertConfig
from repro.core.packet_format import AlertPacketType
from repro.core.zones import destination_zone
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.location.service import LocationService
from tests.conftest import build_network


def run_alert(
    n_nodes=60,
    seed=11,
    n_packets=10,
    pairs=((0, 59),),
    updates=True,
    config=None,
    field_size=600.0,
    speed=2.0,
    gap=1.0,
):
    net = build_network(n_nodes=n_nodes, seed=seed, field_size=field_size, speed=speed)
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    location = LocationService(net, updates_enabled=updates, cost_model=cost)
    cfg = config if config is not None else AlertConfig(h_override=4)
    proto = AlertProtocol(net, location, metrics, cost, cfg)
    net.start_hello()
    net.engine.run(until=0.5)
    for i in range(n_packets):
        for s, d in pairs:
            proto.send_data(s, d)
        net.engine.run(until=net.engine.now + gap)
    net.engine.run(until=net.engine.now + 3.0)
    return net, proto, metrics, cost


class TestDelivery:
    def test_delivers_most_packets(self):
        _, _, metrics, _ = run_alert()
        assert metrics.delivery_rate() >= 0.8

    def test_payload_end_to_end_integrity(self):
        """Every delivered payload decrypts to the exact sent bytes."""
        _, _, metrics, _ = run_alert()
        delivered = sum(1 for f in metrics.flows() if f.delivered)
        assert metrics.counters.get("payload_verified", 0) >= delivered * 0.9
        assert metrics.counters.get("payload_mismatch", 0) == 0
        assert metrics.counters.get("payload_decrypt_failures", 0) == 0

    def test_multiple_pairs(self):
        _, _, metrics, _ = run_alert(pairs=((0, 59), (1, 58), (2, 57)), n_packets=5)
        assert metrics.delivery_rate() >= 0.7


class TestAnonymityMechanics:
    def test_uses_random_forwarders(self):
        _, proto, metrics, _ = run_alert()
        assert metrics.mean_rf_count(delivered_only=False) > 0.3

    def test_routes_vary_between_packets(self):
        """The paper's core claim: per-packet random routes (§3.1)."""
        from repro.analysis.anonymity import mean_pairwise_overlap
        _, _, metrics, _ = run_alert(n_packets=12)
        routes = [f.path for f in metrics.flows() if f.delivered and len(f.path) > 2]
        if len(routes) >= 4:
            assert mean_pairwise_overlap(routes) < 0.9

    def test_more_participants_than_gpsr_style_path(self):
        _, _, metrics, _ = run_alert(n_packets=15)
        union = metrics.participating_nodes()
        mean_path = metrics.mean_hops()
        assert len(union) > mean_path  # many distinct nodes over time

    def test_zone_population_near_k(self):
        net, proto, metrics, _ = run_alert()
        n_bcasts = metrics.counters.get("zone_broadcasts", 0)
        if n_bcasts:
            mean_pop = metrics.counters["zone_population"] / n_bcasts
            # H=4 in a 600 m field with 60 nodes → 60/16 = 3.75 expected
            assert 1.0 <= mean_pop <= 12.0

    def test_partitions_bounded_by_rounds(self):
        _, proto, metrics, _ = run_alert()
        for f in metrics.flows():
            assert f.partitions <= proto.config.max_rf_rounds * proto.h


class TestSessions:
    def test_session_reused_across_packets(self):
        _, proto, _, cost = run_alert(n_packets=8)
        # Exactly one session: the key wrap happened once (2 pubkey
        # encrypts: wrapped key + encrypted source zone).
        assert cost.charges.get("pubkey_encrypt", 0) == 2

    def test_symmetric_per_packet(self):
        _, _, metrics, cost = run_alert(n_packets=8)
        assert cost.charges.get("symmetric_encrypt", 0) == 8

    def test_destination_unwraps_once(self):
        _, _, _, cost = run_alert(n_packets=8)
        assert cost.charges.get("pubkey_decrypt", 0) >= 1

    def test_zd_matches_destination_position(self):
        net, proto, metrics, _ = run_alert(n_packets=3)
        sess = proto._sessions[(0, 59)]
        d_pos = net.nodes[59].position(net.engine.now)
        # With updates on, Z_D tracks D within the update interval.
        zd_now = destination_zone(
            net.field.bounds, d_pos, proto.h, proto.config.first_direction
        )
        assert sess.zd.intersects(zd_now)


class TestReliability:
    def test_confirmation_round_trip(self):
        cfg = AlertConfig(h_override=4, enable_confirmation=True)
        _, _, metrics, _ = run_alert(config=cfg, n_packets=6, gap=1.5)
        assert metrics.counters.get("rrep_sent", 0) >= 1
        assert metrics.counters.get("rrep_received", 0) >= 1

    def test_resend_on_missing_confirmation(self):
        cfg = AlertConfig(
            h_override=4, enable_confirmation=True, confirmation_timeout=0.3
        )
        net, proto, metrics, _ = run_alert(config=cfg, n_packets=6, gap=1.0)
        # Some confirmations inevitably miss (mobile, lossy) → resends
        # happen or every RREP arrived; either way the machinery ran.
        assert (
            metrics.counters.get("resends", 0) >= 0
        )  # smoke: no crash; detailed check below
        assert metrics.counters.get("rrep_sent", 0) >= 1

    def test_promiscuous_delivery_can_be_disabled(self):
        cfg = AlertConfig(h_override=4, promiscuous_destination=False)
        _, _, metrics, _ = run_alert(config=cfg)
        # Still functions (zone broadcast delivers).
        assert metrics.delivery_rate() > 0.5


class TestNotifyAndGo:
    def test_covers_emitted(self):
        cfg = AlertConfig(h_override=4, notify_and_go=True)
        _, _, metrics, _ = run_alert(config=cfg, n_packets=5)
        assert metrics.counters.get("cover_tx", 0) > 0
        assert metrics.counters.get("notify_rounds", 0) == 5

    def test_anonymity_set_is_eta_plus_one(self):
        cfg = AlertConfig(h_override=4, notify_and_go=True)
        _, _, metrics, _ = run_alert(config=cfg, n_packets=5)
        rounds = metrics.counters["notify_rounds"]
        total = metrics.counters["notify_anonymity_set"]
        assert total / rounds >= 2  # source plus at least one neighbor

    def test_covers_do_not_reduce_delivery_much(self):
        cfg = AlertConfig(h_override=4, notify_and_go=True)
        _, _, metrics, _ = run_alert(config=cfg)
        assert metrics.delivery_rate() >= 0.6


class TestPacketTypes:
    def test_rrep_headers_are_rrep(self):
        """Confirmations use the universal format with ptype=RREP."""
        cfg = AlertConfig(h_override=4, enable_confirmation=True)
        net, proto, metrics, _ = run_alert(config=cfg, n_packets=4, gap=1.5)
        assert AlertPacketType.RREP.value == "rrep"
        assert metrics.counters.get("rrep_sent", 0) >= 1
