"""Additional harness coverage: sweep overrides, table rendering edge
cases, and RunResult accessors."""

from __future__ import annotations

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.sweeps import sweep_metric
from repro.experiments.tables import format_kv_block, format_series_table


BASE = ExperimentConfig(
    n_nodes=30, duration=6.0, n_pairs=2, field_size=600.0, seed=2
)


class TestSweepMetric:
    def test_multi_protocol_grid(self):
        means, cis = sweep_metric(
            BASE,
            "n_nodes",
            [20, 30],
            ["GPSR", "ALERT"],
            lambda r: r.delivery_rate,
            runs=1,
        )
        assert set(means) == {"GPSR", "ALERT"}
        assert len(means["GPSR"]) == 2
        assert all(0 <= v <= 1 for v in means["GPSR"] + means["ALERT"])

    def test_extra_overrides_applied(self):
        captured = []

        def metric(r):
            captured.append(r.config.alert_options)
            return r.delivery_rate

        sweep_metric(
            BASE,
            "speed",
            [2.0],
            ["ALERT"],
            metric,
            runs=1,
            extra_overrides={
                "ALERT": {"alert_options": {"promiscuous_destination": False}}
            },
        )
        assert captured == [{"promiscuous_destination": False}]

    def test_single_run_zero_ci(self):
        _, cis = sweep_metric(
            BASE, "speed", [2.0], ["GPSR"], lambda r: r.delivery_rate, runs=1
        )
        assert cis["GPSR"][0] == 0.0


class TestRunResultAccessors:
    def test_all_metric_properties(self):
        r = run_experiment(BASE.with_(protocol="ALERT"))
        assert 0.0 <= r.delivery_rate <= 1.0
        assert r.mean_hops >= 0
        assert r.participating_nodes >= 1
        assert r.mean_rf_count >= 0 or math.isnan(r.mean_rf_count)
        assert r.mean_hops_with_dissemination() >= r.mean_hops

    def test_pairs_are_reported(self):
        r = run_experiment(BASE.with_(protocol="GPSR"))
        assert len(r.pairs) == 2
        for s, d in r.pairs:
            assert 0 <= s < 30 and 0 <= d < 30 and s != d


class TestTableEdges:
    def test_empty_rows(self):
        text = format_series_table("t", "x", [], {"s": []})
        assert "t" in text

    def test_mixed_types(self):
        text = format_series_table(
            "t", "model", ["rwp", "group"], {"v": [1.0, 2.0]}
        )
        assert "rwp" in text and "group" in text

    def test_kv_block_empty(self):
        assert format_kv_block("Nothing", {}) == "Nothing"

    def test_integer_values_not_float_formatted(self):
        text = format_kv_block("T", {"count": 7})
        assert "7" in text and "7.0000" not in text
