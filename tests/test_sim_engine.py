"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_schedule_at_runs_at_time(self):
        eng = Engine()
        hits = []
        eng.schedule_at(2.5, lambda: hits.append(eng.now))
        eng.run()
        assert hits == [2.5]

    def test_schedule_in_relative(self):
        eng = Engine()
        hits = []
        eng.schedule_in(1.0, lambda: eng.schedule_in(1.5, lambda: hits.append(eng.now)))
        eng.run()
        assert hits == [2.5]

    def test_schedule_in_past_raises(self):
        eng = Engine()
        eng.schedule_at(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_at(1.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule_in(-0.1, lambda: None)

    def test_non_finite_time_raises(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule_at(float("nan"), lambda: None)

    def test_zero_delay_runs_at_now(self):
        eng = Engine()
        order = []
        def outer():
            eng.schedule_in(0.0, lambda: order.append("inner"))
            order.append("outer")
        eng.schedule_in(1.0, outer)
        eng.run()
        assert order == ["outer", "inner"]
        assert eng.now == 1.0


class TestOrdering:
    def test_fifo_at_equal_times(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.schedule_at(1.0, lambda i=i: order.append(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        eng = Engine()
        order = []
        eng.schedule_at(1.0, lambda: order.append("low"), priority=5)
        eng.schedule_at(1.0, lambda: order.append("high"), priority=-5)
        eng.run()
        assert order == ["high", "low"]

    def test_time_order_dominates(self):
        eng = Engine()
        order = []
        eng.schedule_at(2.0, lambda: order.append("b"))
        eng.schedule_at(1.0, lambda: order.append("a"))
        eng.run()
        assert order == ["a", "b"]


class TestRunControl:
    def test_run_until_stops_clock_at_until(self):
        eng = Engine()
        eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(10.0, lambda: None)
        eng.run(until=5.0)
        assert eng.now == 5.0
        assert eng.pending() == 1

    def test_run_until_processes_inclusive(self):
        eng = Engine()
        hits = []
        eng.schedule_at(5.0, lambda: hits.append(1))
        eng.run(until=5.0)
        assert hits == [1]

    def test_resume_after_until(self):
        eng = Engine()
        hits = []
        eng.schedule_at(10.0, lambda: hits.append(eng.now))
        eng.run(until=5.0)
        eng.run()
        assert hits == [10.0]

    def test_stop_halts_processing(self):
        eng = Engine()
        hits = []
        def first():
            hits.append("first")
            eng.stop()
        eng.schedule_at(1.0, first)
        eng.schedule_at(2.0, lambda: hits.append("second"))
        eng.run()
        assert hits == ["first"]
        eng.run()
        assert hits == ["first", "second"]

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_step_processes_one(self):
        eng = Engine()
        hits = []
        eng.schedule_at(1.0, lambda: hits.append(1))
        eng.schedule_at(2.0, lambda: hits.append(2))
        assert eng.step() is True
        assert hits == [1]

    def test_events_processed_counter(self):
        eng = Engine()
        for i in range(7):
            eng.schedule_at(float(i + 1), lambda: None)
        eng.run()
        assert eng.events_processed == 7


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        hits = []
        h = eng.schedule_at(1.0, lambda: hits.append(1))
        h.cancel()
        eng.run()
        assert hits == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        h = eng.schedule_at(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert h.cancelled

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        h1 = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        h1.cancel()
        assert eng.pending() == 1

    def test_handle_reports_time(self):
        eng = Engine()
        h = eng.schedule_at(3.25, lambda: None)
        assert h.time == 3.25

    def test_cancel_heavy_workload_keeps_heap_bounded(self):
        # Schedule/cancel far more events than the compaction threshold:
        # the heap must stay O(live events), not O(all ever scheduled).
        eng = Engine()
        keep = [eng.schedule_at(100.0, lambda: None) for _ in range(10)]
        for _ in range(20):
            batch = [eng.schedule_at(50.0, lambda: None) for _ in range(100)]
            for h in batch:
                h.cancel()
        assert eng.pending() == 10
        assert len(eng._heap) < 300
        hits = []
        for h in keep:
            assert not h.cancelled
        eng.schedule_at(100.0, lambda: hits.append(eng.now))
        eng.run()
        assert hits == [100.0]
        assert eng.pending() == 0

    def test_cancel_after_fire_does_not_corrupt_count(self):
        eng = Engine()
        h = eng.schedule_at(1.0, lambda: None)
        eng.run()
        h.cancel()  # no-op: already fired
        assert eng.pending() == 0


class TestCategories:
    def test_non_cancellable_returns_none_and_fires(self):
        eng = Engine()
        hits = []
        assert eng.schedule_at(1.0, lambda: hits.append(1), cancellable=False) is None
        eng.run()
        assert hits == [1]

    def test_event_counts_by_category(self):
        eng = Engine()
        eng.schedule_at(1.0, lambda: None, category="hello")
        eng.schedule_at(2.0, lambda: None, category="data", cancellable=False)
        eng.schedule_at(3.0, lambda: None, category="data")
        eng.schedule_at(4.0, lambda: None)
        eng.run()
        assert eng.event_counts == {"hello": 1, "data": 2, "other": 1}

    def test_cancelled_events_not_counted(self):
        eng = Engine()
        h = eng.schedule_at(1.0, lambda: None, category="timer")
        h.cancel()
        eng.run()
        assert eng.event_counts == {}
        assert eng.events_processed == 0


class _StubNode:
    """Minimal delivery target for typed-record tests."""

    def __init__(self, log, name="n"):
        self.log = log
        self.name = name

    def deliver(self, packet):
        self.log.append((self.name, packet))


class TestDeliveryRecords:
    """The typed delivery-record lane (``schedule_deliver``)."""

    def test_record_dispatches_node_deliver(self):
        eng = Engine()
        log = []
        eng.schedule_deliver(1.0, _StubNode(log), "pkt", category="data")
        eng.run()
        assert log == [("n", "pkt")]
        assert eng.events_processed == 1
        assert eng.event_counts == {"data": 1}

    def test_step_processes_record(self):
        eng = Engine()
        log = []
        eng.schedule_deliver(1.0, _StubNode(log), "pkt")
        assert eng.step() is True
        assert log == [("n", "pkt")]
        assert eng.now == 1.0

    def test_past_and_non_finite_times_raise(self):
        eng = Engine()
        eng.schedule_at(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_deliver(1.0, _StubNode([]), "pkt")
        with pytest.raises(SimulationError):
            eng.schedule_deliver(float("nan"), _StubNode([]), "pkt")

    def test_records_survive_heap_compaction(self):
        # Compaction filters cancelled events in place; typed records
        # (integer opcode, no Event object) must never be dropped.
        eng = Engine()
        log = []
        eng.schedule_deliver(100.0, _StubNode(log), "pkt")
        for _ in range(20):
            batch = [eng.schedule_at(50.0, lambda: None) for _ in range(100)]
            for h in batch:
                h.cancel()
        eng.run()
        assert log == [("n", "pkt")]


class TestReEntrantSameTimeOrder:
    """Work scheduled at ``time == now`` *during* ``run`` fires within
    the same run, after already-queued same-time events, in
    ``(priority, insertion)`` order — for the legacy callback lane, the
    typed record lane, and any interleaving of the two (the shared
    ``seq`` counter is what keeps the lanes from racing)."""

    def test_callback_lane(self):
        eng = Engine()
        order = []

        def spawner():
            order.append("spawner")
            eng.schedule_at(1.0, lambda: order.append("late"))
            eng.schedule_at(1.0, lambda: order.append("urgent"), priority=-1)

        eng.schedule_at(1.0, spawner)
        eng.schedule_at(1.0, lambda: order.append("queued"))
        eng.run()
        # "queued" was inserted before the spawned events and shares
        # priority 0 with "late"; "urgent" outranks both on priority.
        assert order == ["spawner", "urgent", "queued", "late"]

    def test_record_lane(self):
        eng = Engine()
        log = []

        class _Spawning:
            def deliver(self, packet):
                log.append(("spawn", packet))
                eng.schedule_deliver(1.0, _StubNode(log, "b"), "late")
                eng.schedule_deliver(
                    1.0, _StubNode(log, "a"), "urgent", priority=-1
                )

        eng.schedule_deliver(1.0, _Spawning(), "first")
        eng.schedule_deliver(1.0, _StubNode(log, "q"), "queued")
        eng.run()
        assert log == [
            ("spawn", "first"),
            ("a", "urgent"),
            ("q", "queued"),
            ("b", "late"),
        ]

    def test_lanes_interleave_by_insertion(self):
        eng = Engine()
        order = []

        def spawner():
            order.append("cb-spawner")
            eng.schedule_deliver(
                1.0, _StubNode(order, "rec-spawned"), "p"
            )
            eng.schedule_at(1.0, lambda: order.append("cb-spawned"))

        eng.schedule_at(1.0, spawner)
        eng.schedule_deliver(1.0, _StubNode(order, "rec-queued"), "p")
        eng.schedule_at(1.0, lambda: order.append("cb-queued"))
        eng.run()
        assert order == [
            "cb-spawner",
            ("rec-queued", "p"),
            "cb-queued",
            ("rec-spawned", "p"),
            "cb-spawned",
        ]


class TestSynchronousFeedbackOrder:
    """FlowFeedback dispatch is synchronous: a report made inside an
    engine event fires its listener before the engine moves on, so a
    traffic source observes feedback interleaved with both engine lanes
    in exact event-time order — never batched, reordered, or delayed
    to a later timestamp.  (The golden-trace suite relies on the flip
    side: dispatch schedules nothing, so wiring feedback into a run
    adds no engine events.)"""

    class _Listener:
        def __init__(self, order):
            self.order = order

        def on_flow_delivery(self, flow_id, now):
            self.order.append(("delivery", flow_id, now))

        def on_flow_loss(self, flow_id, kind, now):
            self.order.append((kind, flow_id, now))

    def test_feedback_interleaves_with_both_lanes(self):
        from repro.net.feedback import FlowFeedback

        eng = Engine()
        fb = FlowFeedback()
        order = []
        listener = self._Listener(order)
        fb.register(1, listener)
        fb.register(2, listener)
        eng.schedule_at(1.0, lambda: fb.mac_drop(1, eng.now))
        eng.schedule_deliver(1.0, _StubNode(order, "node"), "pkt")
        eng.schedule_at(1.0, lambda: order.append("plain"))
        eng.schedule_at(2.0, lambda: fb.delivery(2, eng.now))
        before = eng.events_processed
        eng.run()
        # feedback fired inside its producing events, in lane order,
        # stamped with the producing event's time
        assert order == [
            ("mac-drop", 1, 1.0),
            ("node", "pkt"),
            "plain",
            ("delivery", 2, 2.0),
        ]
        # dispatch itself added no engine events: 4 scheduled, 4 run
        assert eng.events_processed - before == 4

    def test_terminal_feedback_inside_event_releases_immediately(self):
        from repro.net.feedback import FlowFeedback

        eng = Engine()
        fb = FlowFeedback()
        order = []
        fb.register(5, self._Listener(order))

        def deliver_then_duplicate():
            fb.delivery(5, eng.now)
            fb.delivery(5, eng.now)  # same-event duplicate: ignored

        eng.schedule_at(1.0, deliver_then_duplicate)
        eng.schedule_at(1.0, lambda: fb.timeout(5, eng.now))
        eng.run()
        # the flow was released by its first terminal event, so the
        # same-time timeout event no longer reaches the listener
        assert order == [("delivery", 5, 1.0)]
        assert fb.deliveries == 2 and fb.timeouts == 1
