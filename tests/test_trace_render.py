"""Tests for the ASCII field renderer."""

from __future__ import annotations

from repro.experiments.trace import render_field
from repro.geometry.primitives import Rect
from tests.conftest import build_network


class TestRenderField:
    def test_dimensions(self, static_network):
        out = render_field(static_network, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 12  # border + 10 rows + border
        assert all(len(line) == 42 for line in lines)

    def test_nodes_marked(self, static_network):
        out = render_field(static_network)
        assert "." in out

    def test_route_endpoints_labeled(self, static_network):
        net = static_network
        route = [0, net.neighbors_of(0)[0], 5]
        out = render_field(net, routes=[route])
        assert "S" in out and "D" in out

    def test_zone_outline(self, static_network):
        out = render_field(
            static_network, zone=Rect(100, 100, 300, 300), mark_nodes=False
        )
        assert out.count("#") >= 8

    def test_multiple_routes_numbered(self, static_network):
        net = static_network
        nbrs = net.neighbors_of(0)
        if len(nbrs) >= 2:
            r1 = [0, nbrs[0], 10]
            r2 = [0, nbrs[1], 11]
            out = render_field(net, routes=[r1, r2])
            assert "1" in out or "2" in out

    def test_no_nodes_mode(self, static_network):
        out = render_field(static_network, mark_nodes=False)
        assert "." not in out
