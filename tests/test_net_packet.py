"""Tests for the generic packet record."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.packet_format import (
    AlertHeader,
    AlertPacketType,
    SegmentState,
)
from repro.core.zones import Direction
from repro.geometry.primitives import Rect
from repro.net.packet import Packet, PacketKind, clone_header
from repro.routing.zap import ZapHeader


def make(**kw):
    defaults = dict(kind=PacketKind.DATA, src=1, dst=2, size_bytes=512)
    defaults.update(kw)
    return Packet(**defaults)


class TestPacket:
    def test_unique_uids(self):
        assert make().uid != make().uid

    def test_hops_from_trace(self):
        p = make()
        assert p.hops == 0
        p.record_visit(1)
        assert p.hops == 0
        p.record_visit(5)
        p.record_visit(9)
        assert p.hops == 2

    def test_record_visit_collapses_duplicates(self):
        p = make()
        p.record_visit(1)
        p.record_visit(1)
        p.record_visit(2)
        p.record_visit(1)
        assert p.trace == [1, 2, 1]

    def test_fork_copies_trace_independently(self):
        p = make()
        p.record_visit(1)
        q = p.fork()
        q.record_visit(2)
        assert p.trace == [1]
        assert q.trace == [1, 2]

    def test_fork_gets_new_uid_keeps_provenance(self):
        p = make(flow_id=7)
        p.transmissions = 3
        p.crypto_delay = 0.5
        q = p.fork()
        assert q.uid != p.uid
        assert q.flow_id == 7
        assert q.transmissions == 3
        assert q.crypto_delay == 0.5
        assert q.src == p.src and q.dst == p.dst

    def test_fork_overrides(self):
        p = make()
        q = p.fork(kind=PacketKind.NAK, size_bytes=64)
        assert q.kind is PacketKind.NAK
        assert q.size_bytes == 64
        assert q.src == p.src

    def test_kinds_enumerated(self):
        assert {k.value for k in PacketKind} == {
            "data", "hello", "cover", "nak", "control",
        }


def alert_header(**kw):
    defaults = dict(
        ptype=AlertPacketType.RREQ,
        p_src=b"s" * 20,
        p_dst=b"d" * 20,
        zone_dst=Rect(0, 0, 100, 100),
        zone_src_enc=b"",
        td=None,
        h=0,
        h_max=4,
        direction=Direction.VERTICAL,
    )
    defaults.update(kw)
    return AlertHeader(**defaults)


class TestForkHeaderIsolation:
    """`fork()` must give each branch its own header copy.

    Regression tests for the broadcast header-aliasing bug: every
    receiver of ``Network.local_broadcast`` used to share one mutable
    header object, so ``hdr.segment.retries = 0`` (ALERT) or
    ``hdr.retries = 0`` (ZAP) in one branch corrupted its siblings.
    """

    def test_fork_clones_header_object(self):
        p = make(header=alert_header())
        q = p.fork()
        assert q.header is not p.header

    def test_branch_mutation_cannot_affect_parent(self):
        p = make(header=alert_header())
        q = p.fork()
        q.header.zone_stage = 2
        q.header.segment.retries = 5
        q.header.bitmap_chain.append(b"x")
        assert p.header.zone_stage == 0
        assert p.header.segment.retries == 0
        assert p.header.bitmap_chain == []

    def test_sibling_branches_are_independent(self):
        p = make(header=ZapHeader(zone=Rect(0, 0, 50, 50), ttl=12))
        a, b = p.fork(), p.fork()
        a.header.retries = 7
        a.header.ttl -= 3
        assert b.header.retries == 0
        assert b.header.ttl == 12

    def test_explicit_header_override_is_not_cloned(self):
        hdr = alert_header()
        p = make(header=alert_header())
        q = p.fork(header=hdr)
        assert q.header is hdr

    def test_none_header_stays_none(self):
        assert make().fork().header is None

    def test_clone_header_deepcopy_fallback(self):
        @dataclass
        class CustomHeader:  # no clone() method
            hops: list = field(default_factory=list)

        hdr = CustomHeader(hops=[1, 2])
        copy_ = clone_header(hdr)
        copy_.hops.append(3)
        assert hdr.hops == [1, 2]

    def test_clone_header_prefers_clone_method(self):
        class Marked:
            def clone(self):
                return ("cloned", self)

        hdr = Marked()
        assert clone_header(hdr) == ("cloned", hdr)
