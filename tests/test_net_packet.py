"""Tests for the generic packet record."""

from __future__ import annotations

from repro.net.packet import Packet, PacketKind


def make(**kw):
    defaults = dict(kind=PacketKind.DATA, src=1, dst=2, size_bytes=512)
    defaults.update(kw)
    return Packet(**defaults)


class TestPacket:
    def test_unique_uids(self):
        assert make().uid != make().uid

    def test_hops_from_trace(self):
        p = make()
        assert p.hops == 0
        p.record_visit(1)
        assert p.hops == 0
        p.record_visit(5)
        p.record_visit(9)
        assert p.hops == 2

    def test_record_visit_collapses_duplicates(self):
        p = make()
        p.record_visit(1)
        p.record_visit(1)
        p.record_visit(2)
        p.record_visit(1)
        assert p.trace == [1, 2, 1]

    def test_fork_copies_trace_independently(self):
        p = make()
        p.record_visit(1)
        q = p.fork()
        q.record_visit(2)
        assert p.trace == [1]
        assert q.trace == [1, 2]

    def test_fork_gets_new_uid_keeps_provenance(self):
        p = make(flow_id=7)
        p.transmissions = 3
        p.crypto_delay = 0.5
        q = p.fork()
        assert q.uid != p.uid
        assert q.flow_id == 7
        assert q.transmissions == 3
        assert q.crypto_delay == 0.5
        assert q.src == p.src and q.dst == p.dst

    def test_fork_overrides(self):
        p = make()
        q = p.fork(kind=PacketKind.NAK, size_bytes=64)
        assert q.kind is PacketKind.NAK
        assert q.size_bytes == 64
        assert q.src == p.src

    def test_kinds_enumerated(self):
        assert {k.value for k in PacketKind} == {
            "data", "hello", "cover", "nak", "control",
        }
