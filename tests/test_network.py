"""Tests for the Network container (unicast, broadcast, beacons)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.base import positions_at
from repro.net.packet import Packet, PacketKind
from tests.conftest import build_network


def data_packet(src=0, dst=1, size=512, flow=None):
    return Packet(kind=PacketKind.DATA, src=src, dst=dst, size_bytes=size, flow_id=flow)


class TestSnapshots:
    def test_snapshot_shape(self, static_network):
        pos, idx = static_network.snapshot()
        assert pos.shape == (static_network.n_nodes, 2)
        assert len(idx) == static_network.n_nodes

    def test_snapshot_cached_within_resolution(self, static_network):
        _, a = static_network.snapshot()
        _, b = static_network.snapshot()
        assert a is b

    def test_snapshot_refreshes_after_resolution(self, small_network):
        small_network.snapshot()
        refreshes = (
            small_network.snapshot_rebuilds
            + small_network.snapshot_incremental
        )
        small_network.engine.schedule_in(1.0, lambda: None)
        small_network.engine.run()
        pos, _ = small_network.snapshot()
        # The cache aged out: a new refresh happened (incremental
        # maintenance may reuse the same index object) and the
        # positions reflect the new time.
        assert (
            small_network.snapshot_rebuilds
            + small_network.snapshot_incremental
        ) == refreshes + 1
        np.testing.assert_array_equal(
            pos,
            positions_at(small_network._mobilities, small_network.engine.now),
        )

    def test_neighbors_symmetric(self, static_network):
        net = static_network
        for nid in range(0, net.n_nodes, 7):
            for other in net.neighbors_of(nid):
                assert nid in net.neighbors_of(other)

    def test_neighbors_excludes_self(self, static_network):
        for nid in range(static_network.n_nodes):
            assert nid not in static_network.neighbors_of(nid)

    def test_nodes_in_rect(self, static_network):
        net = static_network
        from repro.geometry.primitives import Rect
        inside = net.nodes_in_rect(Rect(0, 0, 600, 600))
        assert sorted(inside) == list(range(net.n_nodes))

    def test_node_nearest_to(self, static_network):
        net = static_network
        p = net.position_of(3)
        assert net.node_nearest_to(p) == 3
        assert net.node_nearest_to(p, exclude=3) != 3


class TestUnicast:
    def test_in_range_unicast_delivers(self, static_network):
        net = static_network
        a = 0
        nbrs = net.neighbors_of(a)
        assert nbrs, "test network too sparse"
        b = nbrs[0]
        got = []
        net.nodes[b].on_receive = lambda node, pkt: got.append(pkt.uid)
        pkt = data_packet(src=a, dst=b)
        net.unicast(a, b, pkt)
        net.engine.run()
        assert got == [pkt.uid]
        assert pkt.trace[0] == a and pkt.trace[-1] == b

    def test_unicast_to_self_raises(self, static_network):
        with pytest.raises(ValueError):
            static_network.unicast(0, 0, data_packet())

    def test_out_of_range_fails(self, static_network):
        net = static_network
        # Find the pair with maximum distance (certainly out of range
        # of the 250 m radio in a 600 m field: corners).
        import numpy as np
        pos, _ = net.snapshot()
        d2 = ((pos[None] - pos[:, None]) ** 2).sum(-1)
        a, b = np.unravel_index(np.argmax(d2), d2.shape)
        if d2[a, b] ** 0.5 <= net.radio.range_m:
            pytest.skip("all nodes mutually in range")
        failures = []
        net.unicast(int(a), int(b), data_packet(), on_failed=failures.append)
        net.engine.run()
        assert failures == ["out-of-range"]

    def test_tx_listener_invoked(self, static_network):
        net = static_network
        seen = []
        net.tx_listener = lambda flow, attempts, ok: seen.append((flow, ok))
        b = net.neighbors_of(0)[0]
        net.unicast(0, b, data_packet(flow=42), flow=42)
        net.engine.run()
        assert seen and seen[0][0] == 42

    def test_delivery_takes_positive_time(self, static_network):
        net = static_network
        b = net.neighbors_of(0)[0]
        times = []
        net.nodes[b].on_receive = lambda n, p: times.append(net.engine.now)
        net.unicast(0, b, data_packet())
        net.engine.run()
        assert times and times[0] > 0.0


class TestBroadcast:
    def test_broadcast_reaches_neighbors(self, static_network):
        net = static_network
        got = []
        for n in net.nodes:
            n.on_receive = lambda node, pkt: got.append(node.id)
        expect = set(net.neighbors_of(0))
        receivers = net.local_broadcast(0, data_packet(src=0, dst=-1))
        net.engine.run()
        if receivers:  # broadcast may be lost to base_loss (rare)
            assert set(receivers) == expect
            assert set(got) == expect

    def test_restrict_to_filters(self, static_network):
        net = static_network
        nbrs = net.neighbors_of(0)
        allowed = nbrs[:2]
        receivers = net.local_broadcast(
            0, data_packet(src=0, dst=-1), restrict_to=allowed
        )
        assert set(receivers) <= set(allowed)

    def test_forks_are_independent(self, static_network):
        net = static_network
        seen = []
        for n in net.nodes:
            n.on_receive = lambda node, pkt: seen.append(pkt)
        net.local_broadcast(0, data_packet(src=0, dst=-1))
        net.engine.run()
        uids = [p.uid for p in seen]
        assert len(uids) == len(set(uids))

    def test_receiver_header_mutation_cannot_affect_other_branch(
        self, static_network
    ):
        """Header-aliasing regression (the zone-broadcast corruption bug).

        Every branch of a broadcast must carry its own header copy: a
        receiver resetting its per-hop routing state (as ALERT does with
        ``hdr.segment.retries = 0`` and ZAP with ``hdr.retries = 0``)
        used to mutate the single shared header object, corrupting every
        sibling branch.  Fails on the pre-fix ``Packet.fork()``.
        """
        from repro.routing.zap import ZapHeader
        from repro.geometry.primitives import Rect

        net = static_network
        delivered = []
        for n in net.nodes:
            n.on_receive = lambda node, pkt: delivered.append(pkt)
        packet = data_packet(src=0, dst=-1)
        packet.header = ZapHeader(zone=Rect(0, 0, 100, 100), ttl=12, retries=2)
        receivers = net.local_broadcast(0, packet)
        net.engine.run()
        if len(receivers) < 2:
            return  # collided frame / sparse neighborhood: nothing to check
        headers = [p.header for p in delivered]
        assert len(set(map(id, headers))) == len(headers)  # no aliasing
        # One receiver mutates its per-hop state...
        headers[0].retries = 0
        headers[0].ttl -= 1
        # ...and neither a sibling branch nor the sender's packet moves.
        assert headers[1].retries == 2
        assert headers[1].ttl == 12
        assert packet.header.retries == 2
        assert packet.header.ttl == 12


class TestHello:
    def test_beacons_populate_neighbor_tables(self, small_network):
        net = small_network
        net.start_hello()
        net.engine.run(until=0.5)
        populated = sum(1 for n in net.nodes if len(n.neighbors) > 0)
        assert populated >= net.n_nodes * 0.9
        net.stop_hello()

    def test_beacon_entries_match_truth(self, static_network):
        net = static_network
        net.start_hello()
        net.engine.run(until=0.5)
        node = net.nodes[0]
        for e in node.neighbors.live_entries(net.engine.now):
            truth = net.position_of(e.link_address)
            assert truth.distance_to(e.position) < 5.0
        net.stop_hello()

    def test_stop_hello_stops_counting(self, static_network):
        net = static_network
        net.start_hello()
        net.engine.run(until=1.5)
        net.stop_hello()
        count = net.hello_tx
        net.engine.schedule_in(5.0, lambda: None)
        net.engine.run()
        assert net.hello_tx == count


class TestHelloRoundParity:
    """The vectorized round must match the scalar reference exactly."""

    @pytest.mark.parametrize("static", [True, False])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_vectorized_matches_scalar(self, static, seed):
        vec = build_network(seed=seed, static=static)
        ref = build_network(seed=seed, static=static)
        for net in (vec, ref):
            net.engine.schedule_in(0.7, lambda: None)
            net.engine.run()
        vec._emit_hello_round()
        ref._emit_hello_round_scalar()
        assert vec.hello_tx == ref.hello_tx
        assert vec.airtime_tx_s == ref.airtime_tx_s
        assert vec.airtime_rx_s == ref.airtime_rx_s
        now = vec.engine.now
        for a, b in zip(vec.nodes, ref.nodes):
            assert a.tx_count == b.tx_count
            assert a.neighbors.live_entries(now) == b.neighbors.live_entries(now)

    def test_parity_with_dead_nodes(self):
        vec = build_network(seed=4, static=True)
        ref = build_network(seed=4, static=True)
        for net in (vec, ref):
            for nid in (0, 7, 13):
                net.nodes[nid].fail()
        vec._emit_hello_round()
        ref._emit_hello_round_scalar()
        assert vec.hello_tx == ref.hello_tx
        now = vec.engine.now
        for a, b in zip(vec.nodes, ref.nodes):
            assert a.neighbors.live_entries(now) == b.neighbors.live_entries(now)
        # dead nodes never transmit
        assert vec.nodes[0].tx_count == 0
