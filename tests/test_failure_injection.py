"""Failure-injection tests: the system under hostile conditions."""

from __future__ import annotations

import pytest

from repro.core.alert import AlertProtocol
from repro.core.config import AlertConfig
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.metrics import MetricsCollector
from repro.location.service import LocationService, LookupError_
from repro.net.mac import Mac80211Dcf
from repro.net.radio import RadioModel
from repro.routing.gpsr import GpsrProtocol
from tests.conftest import build_network


class TestLocationServerFailures:
    def test_alert_survives_minority_server_failures(self):
        net = build_network(n_nodes=50, seed=19)
        metrics = MetricsCollector()
        location = LocationService(net, cost_model=CryptoCostModel())
        proto = AlertProtocol(
            net, location, metrics, config=AlertConfig(h_override=4)
        )
        # Kill all but one replica before any traffic.
        for server in location.servers[1:]:
            server.fail()
        net.start_hello()
        net.engine.run(until=0.5)
        for _ in range(6):
            proto.send_data(0, 49)
            net.engine.run(until=net.engine.now + 1.0)
        net.engine.run(until=net.engine.now + 2.0)
        assert metrics.delivery_rate() >= 0.5
        location.stop()

    def test_total_outage_surfaces_as_error(self):
        net = build_network(n_nodes=20, seed=20)
        location = LocationService(net)
        proto = GpsrProtocol(net, location)
        for server in location.servers:
            server.fail()
        with pytest.raises(LookupError_):
            proto.send_data(0, 19)
        location.stop()

    def test_recovery_after_restore(self):
        net = build_network(n_nodes=20, seed=21)
        location = LocationService(net)
        for server in location.servers:
            server.fail()
        with pytest.raises(LookupError_):
            location.lookup(0, 5)
        location.servers[0].restore()
        assert location.lookup(0, 5).node_id == 5
        location.stop()


class TestLossyChannel:
    def _lossy_network(self, base_loss):
        net = build_network(n_nodes=50, seed=23)
        net.mac = Mac80211Dcf(
            net.radio, net.engine.rng.stream("mac-lossy"), base_loss=base_loss
        )
        return net

    def _run(self, net, protocol_cls, **cfg_kw):
        metrics = MetricsCollector()
        location = LocationService(net, cost_model=CryptoCostModel())
        if protocol_cls is AlertProtocol:
            proto = AlertProtocol(
                net, location, metrics, config=AlertConfig(h_override=4)
            )
        else:
            proto = protocol_cls(net, location, metrics)
        net.start_hello()
        net.engine.run(until=0.5)
        for _ in range(8):
            proto.send_data(0, 49)
            net.engine.run(until=net.engine.now + 1.0)
        net.engine.run(until=net.engine.now + 2.0)
        location.stop()
        return metrics

    def test_retries_absorb_moderate_loss(self):
        metrics = self._run(self._lossy_network(0.2), GpsrProtocol)
        assert metrics.delivery_rate() >= 0.7
        # Retries show up as attempts > tx_count.
        total_attempts = sum(f.attempts for f in metrics.flows())
        total_tx = sum(f.tx_count for f in metrics.flows())
        assert total_attempts > total_tx

    def test_extreme_loss_degrades_but_never_crashes(self):
        """At 90 % per-attempt loss the retry machinery burns many
        attempts per hop; delivery survives only through it."""
        metrics = self._run(self._lossy_network(0.9), GpsrProtocol)
        total_attempts = sum(f.attempts for f in metrics.flows())
        total_tx = sum(f.tx_count for f in metrics.flows())
        assert total_tx >= 1
        assert total_attempts / total_tx > 3.0  # heavy retrying
        # No exception escaped; undelivered flows ended in clean drops.
        for f in metrics.flows():
            assert f.delivered or f.dropped_reason is not None or f.tx_count >= 0

    def test_alert_on_lossy_channel(self):
        metrics = self._run(self._lossy_network(0.2), AlertProtocol)
        assert metrics.delivery_rate() >= 0.4


class TestSparseNetworks:
    def test_partitioned_network_drops_cleanly(self):
        """Five nodes in a 1 km field are mutually unreachable."""
        net = build_network(n_nodes=5, seed=29, field_size=2000.0)
        metrics = MetricsCollector()
        location = LocationService(net, cost_model=CryptoCostModel())
        proto = GpsrProtocol(net, location, metrics)
        net.start_hello()
        net.engine.run(until=0.5)
        proto.send_data(0, 4)
        net.engine.run(until=net.engine.now + 3.0)
        flow = metrics.flows()[0]
        assert not flow.delivered or flow.tx_count >= 1
        location.stop()

    def test_two_node_adjacent_delivery(self):
        net = build_network(n_nodes=2, seed=31, field_size=200.0)
        metrics = MetricsCollector()
        location = LocationService(net, cost_model=CryptoCostModel())
        proto = GpsrProtocol(net, location, metrics)
        net.start_hello()
        net.engine.run(until=0.5)
        proto.send_data(0, 1)
        net.engine.run(until=net.engine.now + 2.0)
        assert metrics.delivery_rate() == 1.0
        location.stop()
