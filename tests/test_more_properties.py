"""A further round of property-based tests across modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.anonymity import route_overlap
from repro.crypto.cipher import PublicKeyCipher, SymmetricCipher
from repro.crypto.keys import SymmetricKey, generate_keypair
from repro.crypto.pseudonym import PseudonymManager
from repro.core.zones import Direction, destination_zone, separate_from_zone
from repro.geometry.primitives import Point, Rect
from repro.geometry.spatial_index import GridIndex

KP = generate_keypair(np.random.default_rng(77), bits=64)


class TestSignatureProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=300))
    def test_sign_verify_roundtrip(self, message):
        signer = PublicKeyCipher.for_owner(KP)
        sig = signer.sign(message)
        assert PublicKeyCipher.for_encryption(KP.public).verify(message, sig)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=300), st.integers(0, 255))
    def test_tamper_detection(self, message, flip_byte):
        signer = PublicKeyCipher.for_owner(KP)
        sig = signer.sign(message)
        tampered = bytearray(message)
        tampered[flip_byte % len(tampered)] ^= 0x01
        if bytes(tampered) != message:
            assert not signer.verify(bytes(tampered), sig)


class TestPseudonymProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.0, 1e4), st.floats(0.5, 500.0))
    def test_rotation_schedule(self, start, lifetime):
        m = PseudonymManager(
            b"\x01" * 6, np.random.default_rng(1), lifetime=lifetime
        )
        first = m.current(start)
        assert m.current(start + lifetime * 0.99).digest == first.digest
        later = m.current(start + lifetime * 1.01)
        assert later.digest != first.digest
        assert m.was_ours(first.digest) and m.was_ours(later.digest)


class TestZoneCrossChecks:
    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(0, 1000), st.floats(0, 1000),
        st.integers(1, 8), st.sampled_from(list(Direction)),
    )
    def test_zd_is_fixed_point_of_separation(self, dx, dy, h, first):
        """Separating any outside point from Z_D yields a next zone
        that still contains Z_D and whose area is ≥ Z_D's."""
        field = Rect(0, 0, 1000, 1000)
        zd = destination_zone(field, Point(dx, dy), h)
        outside = Point((dx + 500.0) % 1000.0, (dy + 500.0) % 1000.0)
        if zd.contains_closed(outside):
            return
        res = separate_from_zone(field, outside, zd, first)
        assert res.next_zone.contains_rect(zd)
        assert res.next_zone.area >= zd.area - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0, 1000), st.floats(0, 1000), st.integers(0, 7))
    def test_zone_nesting(self, dx, dy, h):
        """Z_D at depth h+1 nests inside Z_D at depth h."""
        field = Rect(0, 0, 1000, 1000)
        d = Point(dx, dy)
        outer = destination_zone(field, d, h)
        inner = destination_zone(field, d, h + 1)
        assert outer.contains_rect(inner)


class TestSpatialNearest:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 60), st.integers(0, 10_000))
    def test_nearest_matches_bruteforce(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 500, size=(n, 2))
        idx = GridIndex(pos, 100.0)
        q = rng.uniform(0, 500, size=2)
        got = idx.nearest(q[0], q[1])
        brute = int(np.argmin(((pos - q) ** 2).sum(axis=1)))
        assert ((pos[got] - q) ** 2).sum() == pytest.approx(
            ((pos[brute] - q) ** 2).sum()
        )


class TestOverlapMetamorphic:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=15))
    def test_self_overlap_is_one(self, route):
        assert route_overlap(route, route) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 15), min_size=1, max_size=10),
        st.lists(st.integers(16, 30), min_size=1, max_size=10),
    )
    def test_disjoint_overlap_is_zero(self, a, b):
        assert route_overlap(a, b) == 0.0


class TestSymmetricNonceDiscipline:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=128), st.integers(0, 2**63 - 1))
    def test_distinct_nonces_distinct_ciphertexts(self, data, seq):
        key = SymmetricKey(b"0123456789abcdef")
        c = SymmetricCipher(key)
        n1 = seq.to_bytes(8, "big")
        n2 = ((seq + 1) % 2**63).to_bytes(8, "big")
        assert c.encrypt(data, n1) != c.encrypt(data, n2)
