"""Cross-module property-based tests: whole-system invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


def _fingerprint(result) -> tuple:
    """A deterministic digest of a run's observable behaviour."""
    flows = tuple(
        (
            f.flow_id,
            f.src,
            f.dst,
            f.delivered,
            round(f.latency, 9) if f.latency is not None else None,
            f.tx_count,
            f.rf_count,
            tuple(f.path),
        )
        for f in result.metrics.flows()
    )
    return flows


def _mini_config(protocol: str, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        protocol=protocol,
        n_nodes=30,
        duration=8.0,
        n_pairs=2,
        field_size=600.0,
        seed=seed,
    )


class TestSystemProperties:
    @settings(max_examples=4, deadline=None)
    @given(
        st.sampled_from(["ALERT", "GPSR"]),
        st.integers(0, 10_000),
    )
    def test_bitwise_determinism(self, protocol, seed):
        """Two runs of the same (config, seed) are indistinguishable."""
        a = run_experiment(_mini_config(protocol, seed))
        b = run_experiment(_mini_config(protocol, seed))
        assert _fingerprint(a) == _fingerprint(b)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_flow_records_well_formed(self, seed):
        """Every flow record obeys the structural invariants."""
        r = run_experiment(_mini_config("ALERT", seed))
        for f in r.metrics.flows():
            assert f.attempts >= f.tx_count >= 0
            assert f.rf_count >= 0
            if f.delivered:
                assert f.latency is not None and f.latency > 0
                assert f.path[0] == f.src
                assert f.path[-1] == f.dst
            assert not (f.delivered and f.dropped_reason)
            # Participants are real node ids.
            assert all(0 <= p < 30 for p in f.participants)

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000))
    def test_metrics_bounds(self, seed):
        """Aggregate metrics stay within their mathematical ranges."""
        r = run_experiment(_mini_config("GPSR", seed))
        assert 0.0 <= r.delivery_rate <= 1.0
        if r.metrics.packets_sent:
            assert r.mean_hops >= 0
        series = r.metrics.cumulative_participants()
        assert series == sorted(series)  # monotone non-decreasing
        assert all(v <= 30 for v in series)

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 6))
    def test_alert_h_invariants(self, seed, h):
        """ALERT respects its configured partition bound at any H."""
        cfg = _mini_config("ALERT", seed).with_(h_override=h)
        r = run_experiment(cfg)
        from repro.core.alert import AlertProtocol
        assert isinstance(r.protocol, AlertProtocol)
        assert r.protocol.h == h
        for f in r.metrics.flows():
            max_rounds = r.protocol.config.max_rf_rounds
            assert f.partitions <= (max_rounds + 1) * h
