"""Tests for the metrics collector."""

from __future__ import annotations

import math

from repro.experiments.metrics import MetricsCollector


class TestFlowLifecycle:
    def test_start_flow_ids_increment(self):
        m = MetricsCollector()
        assert m.start_flow(1, 2, 0.0, 512) == 1
        assert m.start_flow(1, 2, 0.0, 512) == 2
        assert m.packets_sent == 2

    def test_delivery_records_latency(self):
        m = MetricsCollector()
        fid = m.start_flow(1, 2, 10.0, 512)
        m.record_delivery(fid, 10.5, path=[1, 3, 2])
        rec = m.flow(fid)
        assert rec.delivered
        assert rec.latency == 0.5
        assert rec.path == [1, 3, 2]

    def test_first_delivery_wins(self):
        m = MetricsCollector()
        fid = m.start_flow(1, 2, 0.0, 512)
        m.record_delivery(fid, 1.0)
        m.record_delivery(fid, 2.0)
        assert m.flow(fid).delivered_at == 1.0

    def test_drop_does_not_override_delivery(self):
        m = MetricsCollector()
        fid = m.start_flow(1, 2, 0.0, 512)
        m.record_delivery(fid, 1.0)
        m.record_drop(fid, "ttl")
        assert m.flow(fid).dropped_reason is None

    def test_first_drop_reason_kept(self):
        m = MetricsCollector()
        fid = m.start_flow(1, 2, 0.0, 512)
        m.record_drop(fid, "a")
        m.record_drop(fid, "b")
        assert m.flow(fid).dropped_reason == "a"

    def test_tx_recording(self):
        m = MetricsCollector()
        fid = m.start_flow(1, 2, 0.0, 512)
        m.record_tx(fid, attempts=3, success=True)
        m.record_tx(fid, attempts=2, success=False)
        rec = m.flow(fid)
        assert rec.tx_count == 1
        assert rec.attempts == 5

    def test_tx_ignores_unknown_flow(self):
        m = MetricsCollector()
        m.record_tx(None, 1, True)
        m.record_tx(99, 1, True)  # no crash

    def test_rf_recording_adds_participant(self):
        m = MetricsCollector()
        fid = m.start_flow(1, 2, 0.0, 512)
        m.record_rf(fid, 7)
        m.record_rf(fid, 9)
        rec = m.flow(fid)
        assert rec.rf_count == 2
        assert rec.participants == {7, 9}


class TestAggregates:
    def _collector(self):
        m = MetricsCollector()
        for i in range(4):
            fid = m.start_flow(1, 2, float(i), 512)
            m.record_tx(fid, 1, True)
            m.record_tx(fid, 1, True)
            m.record_participant(fid, 10 + i)
            if i < 3:
                m.record_delivery(fid, i + 0.5)
        return m

    def test_delivery_rate(self):
        assert self._collector().delivery_rate() == 0.75

    def test_empty_delivery_rate(self):
        assert MetricsCollector().delivery_rate() == 0.0

    def test_mean_latency_over_delivered_only(self):
        assert self._collector().mean_latency() == 0.5

    def test_mean_latency_nan_when_none(self):
        m = MetricsCollector()
        m.start_flow(1, 2, 0.0, 512)
        assert math.isnan(m.mean_latency())

    def test_mean_hops_divides_by_sent(self):
        assert self._collector().mean_hops() == 2.0

    def test_participating_union(self):
        assert self._collector().participating_nodes() == {10, 11, 12, 13}

    def test_cumulative_participants_monotone(self):
        series = self._collector().cumulative_participants()
        assert series == [1, 2, 3, 4]

    def test_mean_rf_count_delivered_only(self):
        m = MetricsCollector()
        a = m.start_flow(1, 2, 0.0, 512)
        b = m.start_flow(1, 2, 0.0, 512)
        m.record_rf(a, 5)
        m.record_rf(a, 6)
        m.record_delivery(a, 1.0)
        m.record_rf(b, 7)  # undelivered
        assert m.mean_rf_count() == 2.0
        assert m.mean_rf_count(delivered_only=False) == 1.5

    def test_counters(self):
        m = MetricsCollector()
        m.note("x")
        m.note("x", 2.5)
        assert m.counters["x"] == 3.5
