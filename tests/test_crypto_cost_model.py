"""Tests for the simulated crypto cost model."""

from __future__ import annotations

import pytest

from repro.crypto.cost_model import CryptoCostModel


class TestCostModel:
    def test_defaults_match_paper_calibration(self):
        m = CryptoCostModel()
        # §5.2: symmetric "several milliseconds", public key "2-3
        # hundred milliseconds".
        assert 0.001 <= m.symmetric_encrypt_s <= 0.01
        assert 0.2 <= m.pubkey_encrypt_s <= 0.3
        # The headline ratio: public key ≈ hundreds of times symmetric.
        assert m.pubkey_encrypt_s / m.symmetric_encrypt_s >= 50

    def test_charges_return_cost(self):
        m = CryptoCostModel()
        assert m.symmetric_encrypt() == pytest.approx(m.symmetric_encrypt_s)
        assert m.pubkey_encrypt(2) == pytest.approx(2 * m.pubkey_encrypt_s)

    def test_charge_tally(self):
        m = CryptoCostModel()
        m.symmetric_encrypt(3)
        m.pubkey_decrypt()
        m.sign(2)
        assert m.charges == {
            "symmetric_encrypt": 3,
            "pubkey_decrypt": 1,
            "sign": 2,
        }
        assert m.total_operations() == 6

    def test_zero_count_charges_nothing(self):
        m = CryptoCostModel()
        assert m.verify(0) == 0.0
        assert m.total_operations() == 0

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            CryptoCostModel().hash(-1)

    def test_all_operations_covered(self):
        m = CryptoCostModel()
        for op in (
            m.symmetric_encrypt, m.symmetric_decrypt, m.pubkey_encrypt,
            m.pubkey_decrypt, m.sign, m.verify, m.hash,
        ):
            assert op() > 0.0
        assert m.total_operations() == 7
