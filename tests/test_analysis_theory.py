"""Tests for the §4 closed forms against the paper's stated values."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.theory import (
    equivalent_zone_radius,
    expected_participating_nodes,
    expected_random_forwarders,
    location_service_overhead,
    remaining_nodes,
    remaining_probability,
    rf_count_pmf,
    separation_probability,
    zone_side_lengths,
)


class TestSideLengths:
    def test_paper_example(self):
        """Eqs (3)-(4): h=3 → a = 0.5 l_A, b = 0.25 l_B."""
        a, b = zone_side_lengths(3, 1000.0, 1000.0)
        assert a == pytest.approx(500.0)
        assert b == pytest.approx(250.0)

    def test_vectorised(self):
        a, b = zone_side_lengths(np.arange(0, 6), 1000.0, 1000.0)
        assert a.shape == (6,)
        assert np.all(a * b == 1e6 / 2.0 ** np.arange(0, 6))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            zone_side_lengths(-1, 1.0, 1.0)


class TestSeparationProbability:
    def test_eq5(self):
        p = separation_probability(np.arange(1, 6), 5)
        assert np.allclose(p, [0.5, 0.25, 0.125, 0.0625, 0.03125])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            separation_probability(0, 5)
        with pytest.raises(ValueError):
            separation_probability(6, 5)


class TestParticipatingNodes:
    def test_fig7a_saturation(self):
        """§4.1: the count tends to ≈ 1/4 of the population as H grows."""
        rho = 200 / 1e6
        values = [
            expected_participating_nodes(h, 1000.0, 1000.0, rho)
            for h in range(1, 11)
        ]
        # increasing and saturating
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(200 / 4.0, rel=0.35)

    def test_fast_rise_then_slow(self):
        rho = 200 / 1e6
        v1 = expected_participating_nodes(1, 1000.0, 1000.0, rho)
        v2 = expected_participating_nodes(2, 1000.0, 1000.0, rho)
        v9 = expected_participating_nodes(9, 1000.0, 1000.0, rho)
        v10 = expected_participating_nodes(10, 1000.0, 1000.0, rho)
        assert (v2 - v1) > (v10 - v9)

    def test_scales_with_density(self):
        a = expected_participating_nodes(5, 1000.0, 1000.0, 100 / 1e6)
        b = expected_participating_nodes(5, 1000.0, 1000.0, 400 / 1e6)
        assert b == pytest.approx(4 * a)

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            expected_participating_nodes(0, 1.0, 1.0, 1.0)


class TestRandomForwarders:
    def test_pmf_sums_to_one(self):
        for sigma in range(1, 6):
            assert rf_count_pmf(sigma, 5).sum() == pytest.approx(1.0)

    def test_pmf_mean_is_binomial(self):
        """E[i] for Binomial(H-σ, 1/2) = (H-σ)/2."""
        pmf = rf_count_pmf(2, 8)
        mean = float((pmf * np.arange(pmf.size)).sum())
        assert mean == pytest.approx((8 - 2) / 2.0)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            rf_count_pmf(0, 5)
        with pytest.raises(ValueError):
            rf_count_pmf(6, 5)

    def test_fig7b_linear_trend(self):
        """Fig 7b: E[#RFs] grows ≈ linearly with H."""
        totals = [expected_random_forwarders(h) for h in range(1, 11)]
        diffs = [b - a for a, b in zip(totals, totals[1:])]
        # Increments approach a constant (≈ the asymptotic slope).
        assert all(d > 0 for d in diffs)
        assert abs(diffs[-1] - diffs[-2]) < 0.02

    def test_per_sigma_decreasing(self):
        per = expected_random_forwarders(6, per_sigma=True)
        assert per.shape == (6,)
        assert all(a >= b for a, b in zip(per, per[1:]))

    def test_closed_form(self):
        """N_RF(σ) = (H-σ)/2, weighted by 2^-σ."""
        h = 5
        expect = sum((h - s) / 2.0 * 0.5**s for s in range(1, h + 1))
        assert expected_random_forwarders(h) == pytest.approx(expect)


class TestRemainingNodes:
    def test_probability_decays(self):
        p = remaining_probability(np.array([0.0, 10.0, 50.0]), r=100.0, v=2.0)
        assert p[0] == 1.0
        assert p[0] > p[1] > p[2] > 0.0

    def test_zero_speed_stays(self):
        p = remaining_probability(np.array([1e3, 1e6]), r=100.0, v=0.0)
        assert np.all(p == 1.0)

    def test_beta_formula(self):
        """p_r(t) = exp(-2vt / πr) exactly."""
        t, r, v = 30.0, 120.0, 2.0
        expect = math.exp(-t / (math.pi * r / (2 * v)))
        assert remaining_probability(t, r, v) == pytest.approx(expect)

    def test_equivalent_radius(self):
        """Eq 13: r = side/√π."""
        assert equivalent_zone_radius(176.7) == pytest.approx(176.7 / math.sqrt(math.pi))
        with pytest.raises(ValueError):
            equivalent_zone_radius(0.0)

    def test_remaining_nodes_initial_population(self):
        """At t=0 the zone holds ρ · a(H)² nodes."""
        rho = 200 / 1e6
        n0 = remaining_nodes(0.0, 4, 1000.0, 2.0, rho)
        # H=4 → a=250 → 62500 m² → 12.5 nodes
        assert float(n0) == pytest.approx(12.5)

    def test_fig9a_density_ordering(self):
        """Denser networks keep more nodes at every time."""
        t = np.linspace(0, 50, 6)
        lo = remaining_nodes(t, 5, 1000.0, 2.0, 100 / 1e6)
        hi = remaining_nodes(t, 5, 1000.0, 2.0, 400 / 1e6)
        assert np.all(hi > lo)

    def test_fig9b_speed_ordering(self):
        """Faster movement empties the zone sooner."""
        t = np.linspace(1, 50, 6)
        slow = remaining_nodes(t, 5, 1000.0, 1.0, 200 / 1e6)
        fast = remaining_nodes(t, 5, 1000.0, 4.0, 200 / 1e6)
        assert np.all(slow > fast)

    def test_fig13a_fewer_partitions_more_nodes(self):
        """H=4 zones hold more nodes than H=5 zones (paper Fig 13a)."""
        t = np.linspace(0, 30, 5)
        h4 = remaining_nodes(t, 4, 1000.0, 2.0, 200 / 1e6)
        h5 = remaining_nodes(t, 5, 1000.0, 2.0, 200 / 1e6)
        assert np.all(h4 > h5)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.0, 200.0), st.floats(10.0, 500.0), st.floats(0.0, 20.0))
    def test_probability_bounds(self, t, r, v):
        p = float(remaining_probability(t, r, v))
        assert 0.0 <= p <= 1.0


class TestOverhead:
    def test_sqrt_n_servers_small_overhead(self):
        """§4.3: N_L ≈ √N and f ≪ F keeps the ratio ≪ 1."""
        ratio = location_service_overhead(
            n_nodes=400, n_servers=20, update_frequency=0.01, data_frequency=1.0
        )
        assert ratio < 0.05

    def test_too_many_servers_blow_up(self):
        small = location_service_overhead(400, 20, 0.1, 1.0)
        big = location_service_overhead(400, 400, 0.1, 1.0)
        assert big > small * 10

    def test_validation(self):
        with pytest.raises(ValueError):
            location_service_overhead(0, 1, 0.1, 1.0)
        with pytest.raises(ValueError):
            location_service_overhead(10, 1, 0.1, 0.0)
