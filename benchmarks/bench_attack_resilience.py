"""§3 — attack-resilience experiments (no figure in the paper; these
back the claims of §3.1-§3.3 quantitatively).

* Intersection attack (§3.3): an observer intersects destination-zone
  recipient sets over a session, with and without ALERT's two-step
  partial multicast.
* Timing attack (§3.2): delay-regularity correlation on ALERT vs GPSR.
* Route interception (§3.1): an attacker compromises the historically
  busiest relays and tries to catch future packets — GPSR's fixed
  shortest path versus ALERT's random routes.
"""

from __future__ import annotations

from repro.attacks.adversary import (
    DeliveryObservation,
    union_observations_by_window,
)
from repro.attacks.intersection_attack import IntersectionAttacker
from repro.attacks.timing_attack import TimingAttacker
from repro.attacks.traffic_analysis import InterceptionAttacker
from repro.core.alert import AlertProtocol
from repro.core.config import AlertConfig
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import MetricsCollector
from repro.experiments.runner import make_mobility_factory, run_experiment
from repro.experiments.tables import format_kv_block
from repro.geometry.field import Field
from repro.location.service import LocationService
from repro.net.network import Network
from repro.sim.engine import Engine

from _common import emit, once


def _alert_session(defense: bool, seed=17, n_packets=30):
    """One long S-D session with a zone observer attached."""
    engine = Engine(seed=seed)
    fld = Field(1000, 1000)
    cfg = ExperimentConfig(n_nodes=200)
    net = Network(engine, fld, make_mobility_factory(cfg, engine, fld), 200)
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    location = LocationService(net, updates_enabled=True, cost_model=cost)
    acfg = AlertConfig(h_override=5, intersection_defense=defense, multicast_m=3)
    proto = AlertProtocol(net, location, metrics, cost, acfg)
    observations: list[DeliveryObservation] = []
    proto.zone_delivery_observer = lambda t, r: observations.append(
        DeliveryObservation(time=t, recipients=frozenset(r))
    )
    net.start_hello()
    engine.run(until=0.5)
    src, dst = 0, 100
    for _ in range(n_packets):
        proto.send_data(src, dst)
        engine.run(until=engine.now + 2.0)
    engine.run(until=engine.now + 3.0)
    return dst, observations, metrics


def regen_intersection():
    rows = {}
    for defense in (False, True):
        dst, observations, metrics = _alert_session(defense)
        attacker = IntersectionAttacker()
        # One packet's delivery can span several frames; the attacker
        # unions receptions within a 1 s window (packets are 2 s apart)
        # into per-packet observations before intersecting.
        attacker.observe_all(union_observations_by_window(observations, 1.0))
        label = "with defense" if defense else "no defense"
        rows[f"{label}: observations"] = attacker.observations
        rows[f"{label}: final candidate set"] = len(attacker.candidates())
        rows[f"{label}: D identified"] = attacker.identified(dst)
        rows[f"{label}: D escaped intersection"] = attacker.defeated(dst)
        rows[f"{label}: delivery rate"] = metrics.delivery_rate()
    return rows, format_kv_block(
        "§3.3 — intersection attack on a 30-packet session (200 nodes, H=5)",
        rows,
    )


def _far_pair_session(
    protocol: str, seed: int = 23, n_packets: int = 30, mobility: str = "rwp"
):
    """A session between a cross-field pair (multi-hop for sure)."""
    import numpy as np

    from repro.experiments.runner import make_protocol

    engine = Engine(seed=seed)
    fld = Field(1000, 1000)
    cfg = ExperimentConfig(n_nodes=200, protocol=protocol, mobility=mobility)
    net = Network(engine, fld, make_mobility_factory(cfg, engine, fld), 200)
    metrics = MetricsCollector()
    cost = CryptoCostModel()
    location = LocationService(net, cost_model=CryptoCostModel())
    proto = make_protocol(cfg, net, location, metrics, cost)
    net.start_hello()
    engine.run(until=0.5)
    pos, _ = net.snapshot()
    d2 = ((pos[None] - pos[:, None]) ** 2).sum(-1)
    src, dst = map(int, np.unravel_index(np.argmax(d2), d2.shape))
    for _ in range(n_packets):
        proto.send_data(src, dst)
        engine.run(until=engine.now + 2.0)
    engine.run(until=engine.now + 3.0)
    location.stop()
    from repro.routing.alarm import AlarmProtocol
    if isinstance(proto, AlarmProtocol):  # pragma: no cover
        proto.stop()
    return metrics, (src, dst)


def regen_timing():
    rows = {}
    attacker = TimingAttacker(cv_threshold=0.15, min_pairs=5)
    for proto in ("GPSR", "ALERT"):
        metrics, _ = _far_pair_session(proto)
        deps = [f.created_at for f in metrics.flows()]
        arrs = [f.delivered_at for f in metrics.flows() if f.delivered]
        v = attacker.correlate(deps, arrs)
        rows[f"{proto}: matched pairs"] = v.matched_pairs
        rows[f"{proto}: delay CV"] = round(v.cv, 4)
        rows[f"{proto}: S-D link identified"] = v.identified
    return rows, format_kv_block(
        "§3.2 — timing attack (delay-regularity correlation, "
        "cross-field S-D pair)",
        rows,
    )


def regen_interception():
    """§3.1's low-mobility setting, where GPSR's path is truly fixed:
    "the route between a given S-D pair is unlikely to change for
    different packet transmissions"."""
    rows = {}
    for proto in ("GPSR", "ALERT"):
        metrics, (src, dst) = _far_pair_session(
            proto, seed=29, mobility="static"
        )
        routes = [f.path for f in metrics.flows() if f.delivered]
        half = len(routes) // 2
        attacker = InterceptionAttacker(budget=3)
        rate = attacker.interception_rate(
            routes[:half], routes[half:], exclude=[src, dst]
        )
        rows[f"{proto}: observed routes"] = half
        rows[f"{proto}: interception rate"] = round(rate, 3)
    return rows, format_kv_block(
        "§3.1 — interception after compromising the 3 busiest relays "
        "(static nodes: GPSR's worst case)",
        rows,
    )


def regen_zap_comparison():
    """§3.3's cost argument: ZAP can also blunt the intersection attack
    by enlarging its anonymity zone, but the broadcast bill grows with
    the zone; ALERT's two-step multicast keeps a constant (m-sized)
    footprint."""
    from repro.routing.zap import ZapConfig, ZapProtocol

    rows = {}
    for label, zap_cfg in (
        ("ZAP static zone", ZapConfig(enlargement_per_packet=0.0)),
        ("ZAP enlarging zone", ZapConfig(enlargement_per_packet=0.15)),
    ):
        engine = Engine(seed=41)
        fld = Field(1000, 1000)
        cfg = ExperimentConfig(n_nodes=200)
        net = Network(engine, fld, make_mobility_factory(cfg, engine, fld), 200)
        metrics = MetricsCollector()
        location = LocationService(net, cost_model=CryptoCostModel())
        proto = ZapProtocol(net, location, metrics, CryptoCostModel(), zap_cfg)
        observations: list[DeliveryObservation] = []
        proto.zone_delivery_observer = lambda t, r, obs=observations: obs.append(
            DeliveryObservation(time=t, recipients=frozenset(r))
        )
        net.start_hello()
        engine.run(until=0.5)
        for _ in range(30):
            proto.send_data(0, 100)
            engine.run(until=engine.now + 2.0)
        engine.run(until=engine.now + 3.0)
        attacker = IntersectionAttacker()
        attacker.observe_all(union_observations_by_window(observations, 1.0))
        floods = metrics.counters.get("zap_zone_floods", 0)
        pop = metrics.counters.get("zap_zone_population", 0)
        rows[f"{label}: candidates left"] = len(attacker.candidates())
        rows[f"{label}: D identified"] = attacker.identified(100)
        rows[f"{label}: floods/packet"] = round(floods / 30.0, 2)
        rows[f"{label}: mean zone population"] = round(pop / max(floods, 1), 1)
        location.stop()

    # ALERT's defense for reference (constant per-packet footprint).
    dst, observations, metrics = _alert_session(True, seed=41)
    attacker = IntersectionAttacker()
    attacker.observe_all(union_observations_by_window(observations, 1.0))
    rows["ALERT defense: candidates left"] = len(attacker.candidates())
    rows["ALERT defense: D identified"] = attacker.identified(dst)
    rows["ALERT defense: observable recipients/packet"] = round(
        metrics.counters.get("defense_recipients", 0)
        / max(metrics.counters.get("defense_multicasts", 1), 1),
        2,
    )
    return rows, format_kv_block(
        "§3.3 — countering the intersection attack: ZAP's zone "
        "enlargement vs ALERT's two-step multicast",
        rows,
    )


def test_zap_vs_alert_defense(benchmark, capsys):
    rows, table = once(benchmark, regen_zap_comparison)
    emit(capsys, "attack_zap_vs_alert", table)
    # Enlarging ZAP zones raises the broadcast bill.
    assert (
        rows["ZAP enlarging zone: mean zone population"]
        > rows["ZAP static zone: mean zone population"]
    )
    # ALERT's observable footprint stays m-sized (m = 3 here).
    assert rows["ALERT defense: observable recipients/packet"] <= 3.5


def test_intersection_attack(benchmark, capsys):
    rows, table = once(benchmark, regen_intersection)
    emit(capsys, "attack_intersection", table)
    # Without the defense, the intersection converges on (or very near)
    # the destination; with it, D escapes the attacker's candidate set.
    assert rows["no defense: final candidate set"] <= 3
    assert rows["with defense: D escaped intersection"] or not rows[
        "with defense: D identified"
    ]


def test_timing_attack(benchmark, capsys):
    rows, table = once(benchmark, regen_timing)
    emit(capsys, "attack_timing", table)
    # ALERT's per-packet random routes spread the delay distribution.
    assert rows["ALERT: delay CV"] > rows["GPSR: delay CV"]


def test_interception_attack(benchmark, capsys):
    rows, table = once(benchmark, regen_interception)
    emit(capsys, "attack_interception", table)
    # Compromising GPSR's stable path catches (nearly) everything;
    # ALERT's dispersion caps what three compromised relays can see.
    assert rows["GPSR: interception rate"] >= rows["ALERT: interception rate"]
