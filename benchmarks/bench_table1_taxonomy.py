"""Table 1 — the protocol taxonomy (§6).

Regenerates the paper's classification of anonymous routing protocols
(category, mechanism, routing substrate, and which anonymity
properties each provides), plus ALERT's own row for comparison.
"""

from __future__ import annotations

from repro.routing.taxonomy import PROTOCOL_TAXONOMY, format_taxonomy

from _common import emit, once


def test_table1_taxonomy(benchmark, capsys):
    table = once(benchmark, lambda: format_taxonomy())
    emit(capsys, "table1", "Table 1 — anonymous routing protocols\n" + table)
    names = {e.name for e in PROTOCOL_TAXONOMY}
    assert {"MASK", "ANODR", "AO2P", "ZAP", "ALARM", "MAPCP", "ALERT"} <= names
    # The table's takeaway: ALERT uniquely combines identity, location,
    # and route anonymity for both endpoints.
    full = [
        e.name
        for e in PROTOCOL_TAXONOMY
        if e.route_anonymity
        and "destination" in e.identity_anonymity
        and "destination" in e.location_anonymity
    ]
    assert full == ["ALERT"]
