"""Fig. 10a/10b — simulated actual participating nodes (§5.3).

Fig. 10a: cumulative count of distinct nodes that actually forwarded
packets of one S-D flow, versus the number of packets transmitted, for
100 and 200 nodes.  The paper reports ALERT reaching ≈30 (100 nodes)
and ≈45 (200 nodes) after 20 packets while GPSR (≈ ALARM ≈ AO2P) stays
near the single-path size.

Fig. 10b: the count after 20 packets versus network size 50-200
(paper: GPSR 2-3 nodes, ALERT 13-20).
"""

from __future__ import annotations

from repro.experiments.parallel import run_many_parallel
from repro.experiments.runner import aggregate
from repro.experiments.tables import format_series_table

from _common import bench_runs, emit, once, paper_config

PACKET_MARKS = [4, 8, 12, 16, 20]


def _participants_series(r):
    """Cumulative-participants curve of one run (picklable metric)."""
    return r.metrics.cumulative_participants()


def _cumulative_series(cfg):
    """Mean cumulative-participants curve at PACKET_MARKS."""
    series_per_run = run_many_parallel(
        cfg,
        _participants_series,
        runs=bench_runs(),
        max_packets_per_pair=max(PACKET_MARKS),
    )
    out = []
    for mark in PACKET_MARKS:
        vals = [
            series[min(mark, len(series)) - 1]
            for series in series_per_run
            if series
        ]
        out.append(aggregate(vals)[0])
    return out


def _single_pair_cfg(protocol, n_nodes):
    return paper_config(
        protocol=protocol,
        n_nodes=n_nodes,
        n_pairs=1,
        duration=45.0,
        send_interval=2.0,
    )


def regen_fig10a():
    columns = {}
    for n in (100, 200):
        for proto in ("ALERT", "GPSR"):
            columns[f"{proto} N={n}"] = _cumulative_series(
                _single_pair_cfg(proto, n)
            )
    return columns, format_series_table(
        "Fig. 10a — cumulative actual participating nodes vs packets sent",
        "packets",
        PACKET_MARKS,
        columns,
        digits=1,
    )


def regen_fig10b():
    sizes = [50, 100, 150, 200]
    columns = {"ALERT": [], "GPSR": []}
    for n in sizes:
        for proto in ("ALERT", "GPSR"):
            series = _cumulative_series(_single_pair_cfg(proto, n))
            columns[proto].append(series[-1])
    return columns, format_series_table(
        "Fig. 10b — actual participating nodes after 20 packets vs network size",
        "N",
        sizes,
        columns,
        digits=1,
    )


def test_fig10a_cumulative_participants(benchmark, capsys):
    columns, table = once(benchmark, regen_fig10a)
    emit(capsys, "fig10a", table)
    for n in (100, 200):
        alert = columns[f"ALERT N={n}"]
        gpsr = columns[f"GPSR N={n}"]
        # ALERT accumulates many more distinct forwarders than GPSR...
        assert alert[-1] > gpsr[-1] * 1.5
        # ...and keeps growing with more packets.
        assert alert[-1] > alert[0]
    # More nodes → more participants for ALERT (paper's observation).
    assert columns["ALERT N=200"][-1] > columns["ALERT N=100"][-1]


def test_fig10b_participants_vs_size(benchmark, capsys):
    columns, table = once(benchmark, regen_fig10b)
    emit(capsys, "fig10b", table)
    # GPSR stays small at every size; ALERT is several times larger.
    assert max(columns["GPSR"]) < 12
    assert all(a > g * 1.5 for a, g in zip(columns["ALERT"], columns["GPSR"]))
