"""Fig. 16a/16b — delivery rate (§5.6).

Fig. 16a: delivery rate versus node count with destination update.
Paper: all protocols near 1 except in the sparse 50/km² setting.

Fig. 16b: delivery rate versus node speed, with and without
destination update.  Paper: with update, flat near 1; without update,
rates fall with speed and **ALERT beats GPSR** thanks to the final
local broadcast in the destination zone.
"""

from __future__ import annotations

from repro.experiments.parallel import run_many_parallel
from repro.experiments.runner import aggregate
from repro.experiments.sweeps import metric_delivery_rate, sweep_metric
from repro.experiments.tables import format_series_table

from _common import bench_runs, emit, once, paper_config, sweep_progress

SIZES = [50, 100, 150, 200]
SPEEDS = [2.0, 4.0, 6.0, 8.0]
PROTOCOLS = ["ALERT", "GPSR", "ALARM", "AO2P"]


def regen_fig16a():
    means, cis = sweep_metric(
        paper_config(),
        "n_nodes",
        SIZES,
        PROTOCOLS,
        metric_delivery_rate,
        runs=bench_runs(),
        on_result=sweep_progress(
            "fig16a", len(SIZES) * len(PROTOCOLS) * bench_runs()
        ),
    )
    return means, format_series_table(
        "Fig. 16a — delivery rate vs number of nodes (with destination update)",
        "N",
        SIZES,
        means,
        cis=cis,
        digits=3,
    )


def regen_fig16b():
    columns: dict[str, list[float]] = {}
    for proto in ("ALERT", "GPSR"):
        for update in (True, False):
            label = f"{proto} {'with' if update else 'w/o'} update"
            m = []
            for v in SPEEDS:
                cfg = paper_config(
                    protocol=proto, speed=v, destination_update=update,
                    duration=100.0,
                )
                values = run_many_parallel(
                    cfg, metric_delivery_rate, runs=bench_runs()
                )
                m.append(aggregate(values)[0])
            columns[label] = m
    return columns, format_series_table(
        "Fig. 16b — delivery rate vs node speed, with/without destination update",
        "v (m/s)",
        SPEEDS,
        columns,
        digits=3,
    )


def test_fig16a_delivery_vs_density(benchmark, capsys):
    means, table = once(benchmark, regen_fig16a)
    emit(capsys, "fig16a", table)
    for p in PROTOCOLS:
        # Near-perfect delivery at the denser settings.
        assert means[p][-1] >= 0.9
        # Sparse 50-node networks are the weakest point for everyone.
        assert means[p][0] <= means[p][-1] + 0.05


def test_fig16b_delivery_vs_speed(benchmark, capsys):
    columns, table = once(benchmark, regen_fig16b)
    emit(capsys, "fig16b", table)
    # With update: flat near 1 at all speeds.
    for proto in ("ALERT", "GPSR"):
        assert min(columns[f"{proto} with update"]) >= 0.85
    # Without update: rates fall as speed rises.
    for proto in ("ALERT", "GPSR"):
        series = columns[f"{proto} w/o update"]
        assert series[-1] < series[0]
    # The paper's highlighted crossover: ALERT's zone broadcast makes
    # it more robust than GPSR when positions go stale at speed.
    assert (
        columns["ALERT w/o update"][-1] >= columns["GPSR w/o update"][-1] - 0.05
    )
