"""Ablations over ALERT's design knobs (DESIGN.md §5).

* **k / H tradeoff** — larger destination zones (smaller H) raise the
  anonymity set but cost broadcast coverage; more partitions (larger
  H) buy route anonymity at extra hops (§5.4's "optimal tradeoff
  point" discussion).
* **m (partial multicast fan-out)** — §3.3's coverage formula vs
  observable recipient-set size.
* **notify-and-go** — source anonymity set vs the cover-traffic bill.
* **zone flood / promiscuous delivery** — the delivery machinery
  backing the final local broadcast.
"""

from __future__ import annotations

from repro.core.intersection_defense import coverage_percent
from repro.experiments.runner import aggregate, run_many
from repro.experiments.tables import format_kv_block, format_series_table

from _common import bench_runs, emit, once, paper_config


def regen_h_tradeoff():
    hs = [3, 4, 5, 6]
    hops, rfs, zone_pop, delivery = [], [], [], []
    for h in hs:
        results = run_many(
            paper_config(protocol="ALERT", h_override=h, duration=50.0),
            runs=bench_runs(),
        )
        hops.append(aggregate([r.mean_hops for r in results])[0])
        rfs.append(
            aggregate(
                [r.metrics.mean_rf_count(delivered_only=False) for r in results]
            )[0]
        )
        pops = []
        for r in results:
            b = r.metrics.counters.get("zone_broadcasts", 0)
            if b:
                pops.append(r.metrics.counters.get("zone_population", 0) / b)
        zone_pop.append(aggregate(pops)[0] if pops else float("nan"))
        delivery.append(aggregate([r.delivery_rate for r in results])[0])
    return (
        hops,
        rfs,
        zone_pop,
        format_series_table(
            "Ablation — H (partition count): route anonymity vs cost",
            "H",
            hs,
            {
                "hops/packet": hops,
                "#RF": rfs,
                "zone population (k)": zone_pop,
                "delivery rate": delivery,
            },
            digits=2,
        ),
    )


def regen_m_tradeoff():
    ms = [1, 2, 3, 4, 6]
    k = 6
    rows = {
        f"m={m}: coverage with p_c=1 / observable set": (
            f"{coverage_percent(m, k, 1.0):.2f} / {m}"
        )
        for m in ms
    }
    return format_kv_block(
        "Ablation — m (two-step multicast fan-out), k=6 (§3.3 formula)",
        rows,
    )


def regen_notify_tradeoff():
    rows = {}
    for enabled in (False, True):
        results = run_many(
            paper_config(
                protocol="ALERT",
                duration=40.0,
                alert_options={"notify_and_go": enabled},
            ),
            runs=bench_runs(),
        )
        label = "on" if enabled else "off"
        rows[f"notify {label}: delivery"] = aggregate(
            [r.delivery_rate for r in results]
        )[0]
        rows[f"notify {label}: latency (s)"] = aggregate(
            [r.mean_latency for r in results]
        )[0]
        covers = aggregate(
            [r.metrics.counters.get("cover_tx", 0.0) for r in results]
        )[0]
        rounds = aggregate(
            [r.metrics.counters.get("notify_rounds", 0.0) for r in results]
        )[0]
        sets = aggregate(
            [r.metrics.counters.get("notify_anonymity_set", 0.0) for r in results]
        )[0]
        rows[f"notify {label}: covers/packet"] = covers / max(rounds, 1)
        rows[f"notify {label}: source anonymity set"] = sets / max(rounds, 1)
    return rows, format_kv_block(
        "Ablation — notify-and-go: source anonymity vs cover traffic", rows
    )


def regen_delivery_machinery():
    rows = {}
    for flood, promisc in ((True, True), (False, True), (True, False), (False, False)):
        results = run_many(
            paper_config(
                protocol="ALERT",
                duration=50.0,
                destination_update=False,
                speed=6.0,
                alert_options={
                    "zone_flood": flood,
                    "promiscuous_destination": promisc,
                },
            ),
            runs=bench_runs(),
        )
        label = f"flood={'y' if flood else 'n'} promisc={'y' if promisc else 'n'}"
        rows[f"{label}: delivery"] = aggregate(
            [r.delivery_rate for r in results]
        )[0]
    return rows, format_kv_block(
        "Ablation — zone flood / promiscuous destination "
        "(6 m/s, stale positions)",
        rows,
    )


def test_ablation_h_tradeoff(benchmark, capsys):
    hops, rfs, zone_pop, table = once(benchmark, regen_h_tradeoff)
    emit(capsys, "ablation_h", table)
    # More partitions → more RFs (anonymity) and smaller zones (less
    # destination cover): both directions of the paper's tradeoff.
    assert rfs[-1] > rfs[0]
    assert zone_pop[0] > zone_pop[-1]


def test_ablation_m_formula(benchmark, capsys):
    table = once(benchmark, regen_m_tradeoff)
    emit(capsys, "ablation_m", table)
    assert coverage_percent(3, 6, 1.0) == 1.0


def test_ablation_notify_and_go(benchmark, capsys):
    rows, table = once(benchmark, regen_notify_tradeoff)
    emit(capsys, "ablation_notify", table)
    # Notify-and-go buys an η+1 anonymity set at a cover-traffic cost.
    assert rows["notify on: source anonymity set"] > 1.5
    assert rows["notify on: covers/packet"] > 0
    assert rows["notify off: covers/packet"] == 0


def test_ablation_delivery_machinery(benchmark, capsys):
    rows, table = once(benchmark, regen_delivery_machinery)
    emit(capsys, "ablation_delivery", table)
    best = rows["flood=y promisc=y: delivery"]
    worst = rows["flood=n promisc=n: delivery"]
    assert best >= worst
