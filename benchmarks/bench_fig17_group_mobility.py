"""Fig. 17 — ALERT delay under different movement models (§5.6).

Delay of ALERT under random waypoint versus the group mobility model
with 10 groups × 150 m and 5 groups × 200 m.  Paper: group mobility
adds delay (senders/forwarders see less uniformly spread neighbors),
and 5 groups > 10 groups > random waypoint.
"""

from __future__ import annotations

from repro.experiments.parallel import run_many_parallel
from repro.experiments.runner import aggregate
from repro.experiments.sweeps import metric_mean_latency
from repro.experiments.tables import format_series_table

from _common import bench_runs, emit, once, paper_config

CONDITIONS = [
    ("random waypoint", dict(mobility="rwp")),
    ("group: 10 x 150 m", dict(mobility="group", n_groups=10, group_range=150.0)),
    ("group: 5 x 200 m", dict(mobility="group", n_groups=5, group_range=200.0)),
]


def regen_fig17():
    means, cis = [], []
    # The movement-model effect is the subtlest in the paper ("the
    # delay of ALERT increases slightly in the group movement model"),
    # so this figure gets extra seeds regardless of REPRO_RUNS.
    runs = max(bench_runs(), 4)
    for _, overrides in CONDITIONS:
        cfg = paper_config(protocol="ALERT", duration=60.0, **overrides)
        values = run_many_parallel(cfg, metric_mean_latency, runs=runs)
        mean, ci = aggregate(values)
        means.append(mean)
        cis.append(ci)
    labels = [name for name, _ in CONDITIONS]
    table = format_series_table(
        "Fig. 17 — ALERT delay (s) under different movement models",
        "model",
        labels,
        {"latency (s)": means},
        cis={"latency (s)": cis},
        digits=4,
    )
    return dict(zip(labels, means)), table


def test_fig17_movement_models(benchmark, capsys):
    means, table = once(benchmark, regen_fig17)
    emit(capsys, "fig17", table)
    rwp = means["random waypoint"]
    g10 = means["group: 10 x 150 m"]
    g5 = means["group: 5 x 200 m"]
    # All three conditions route at the same millisecond scale...
    for v in (rwp, g10, g5):
        assert 0.005 <= v <= 0.1
    # ...and group mobility never *beats* random waypoint by more than
    # run-to-run noise (the paper's effect — group slightly slower —
    # is subtle; its strict ordering emerges at REPRO_RUNS≈10+, while
    # this guard only rejects a reversed ordering beyond noise).
    assert g10 >= rwp * 0.7
    assert g5 >= rwp * 0.7
