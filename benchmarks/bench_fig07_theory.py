"""Fig. 7a/7b — analytical routing-node curves (§4.1, §4.2).

Fig. 7a: expected number of *possible participating nodes* versus the
number of partitions H, for 100 / 200 / 400 nodes on 1000 m × 1000 m
(eq. 7).  The paper's observations: fast rise from H=1 to 2, then
saturation near N/4.

Fig. 7b: expected number of *random forwarders* versus H (eq. 10),
an approximately linear trend.
"""

from __future__ import annotations

from repro.analysis.theory import (
    expected_participating_nodes,
    expected_random_forwarders,
)
from repro.experiments.tables import format_series_table

from _common import emit, once

H_VALUES = list(range(1, 11))
FIELD = 1000.0


def regen_fig7a():
    columns = {}
    for n in (100, 200, 400):
        rho = n / (FIELD * FIELD)
        columns[f"N={n}"] = [
            expected_participating_nodes(h, FIELD, FIELD, rho) for h in H_VALUES
        ]
    return format_series_table(
        "Fig. 7a — expected possible participating nodes vs partitions (eq. 7)",
        "H",
        H_VALUES,
        columns,
        digits=2,
    )


def regen_fig7b():
    series = [expected_random_forwarders(h) for h in H_VALUES]
    return format_series_table(
        "Fig. 7b — expected random forwarders vs partitions (eq. 10)",
        "H",
        H_VALUES,
        {"E[#RF]": series},
        digits=3,
    )


def test_fig7a_possible_participating_nodes(benchmark, capsys):
    table = once(benchmark, regen_fig7a)
    emit(capsys, "fig07a", table)
    # Shape assertions mirroring the paper's observations.
    rho = 200 / 1e6
    values = [expected_participating_nodes(h, FIELD, FIELD, rho) for h in H_VALUES]
    assert values == sorted(values)  # monotone rise
    assert values[1] - values[0] > values[-1] - values[-2]  # saturating
    assert abs(values[-1] - 200 / 4) / (200 / 4) < 0.35  # ≈ N/4


def test_fig7b_random_forwarders(benchmark, capsys):
    table = once(benchmark, regen_fig7b)
    emit(capsys, "fig07b", table)
    series = [expected_random_forwarders(h) for h in H_VALUES]
    diffs = [b - a for a, b in zip(series, series[1:])]
    assert all(d > 0 for d in diffs)  # increasing
    # approximately linear: late increments are near-constant
    assert abs(diffs[-1] - diffs[-2]) < 0.05
