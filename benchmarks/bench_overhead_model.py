"""§4.3 — location-service message overhead.

The paper's usability condition: pseudonym/location maintenance must
be a vanishing fraction of regular traffic, achieved with N_L ≈ √N
servers and update frequency f ≪ data frequency F.  This bench prints
the overhead ratio across server-count choices and verifies the √N
sweet spot, both in closed form and measured on the live location
service.
"""

from __future__ import annotations

import math

from repro.analysis.theory import location_service_overhead
from repro.experiments.tables import format_kv_block, format_series_table
from repro.location.service import LocationService
from repro.experiments.runner import make_mobility_factory
from repro.experiments.config import ExperimentConfig
from repro.geometry.field import Field
from repro.net.network import Network
from repro.sim.engine import Engine

from _common import emit, once

N = 200
F_DATA = 0.5  # packets/s per node (paper: 1 packet / 2 s)
F_UPDATE = 1 / 30.0  # pseudonym/location updates every 30 s


def regen_overhead():
    server_counts = [1, 5, 14, 50, 100, 200]
    ratios = [
        location_service_overhead(N, nl, F_UPDATE, F_DATA) for nl in server_counts
    ]
    closed = format_series_table(
        "§4.3 — maintenance overhead ratio vs number of location servers "
        f"(N={N}, f=1/30 Hz, F=0.5 Hz)",
        "N_L",
        server_counts,
        {"overhead ratio": ratios},
        digits=4,
    )

    # Measured on the live service: run 60 s and count messages.
    cfg = ExperimentConfig(n_nodes=N)
    engine = Engine(seed=1)
    fld = Field(1000, 1000)
    net = Network(engine, fld, make_mobility_factory(cfg, engine, fld), N)
    svc = LocationService(net, updates_enabled=True, update_interval=30.0)
    engine.run(until=60.0)
    svc.stop()
    measured = svc.message_overhead(duration=60.0, data_frequency=F_DATA)
    writes = sum(s.writes for s in svc.servers)
    repl = sum(s.replications for s in svc.servers)
    live = format_kv_block(
        "Measured on the live service (60 s, N_L = sqrt(N) = 14):",
        {
            "servers": len(svc.servers),
            "node writes": writes,
            "replications": repl,
            "overhead ratio": measured,
        },
    )
    return ratios, measured, closed + "\n\n" + live


def test_overhead_sqrt_n_sweet_spot(benchmark, capsys):
    ratios, measured, table = once(benchmark, regen_overhead)
    emit(capsys, "overhead", table)
    sqrt_ratio = location_service_overhead(N, int(math.sqrt(N)), F_UPDATE, F_DATA)
    # The paper's condition: ≪ 1 at N_L ≈ √N (≈ 0.13 here).
    assert sqrt_ratio < 0.2
    assert measured < 0.2
    # Overhead explodes when every node hosts a server.
    assert ratios[-1] > sqrt_ratio * 10
