"""Fig. 15a/15b — transmission cost in hops per packet (§5.6).

Fig. 15a: average hops per packet versus node count for ALERT, GPSR,
ALARM, AO2P, plus "ALARM (include id dissemination hops)" — ALARM's
data hops plus its periodic identity-dissemination receptions
amortised per data packet.  Paper shape: ALERT a few hops above the
shortest-path protocols; ALARM-with-dissemination far above everyone.

Fig. 15b: hops versus node speed with and without destination update.
Paper: without update the hop count grows with speed (stale positions
lengthen routes); with update it stays flat.
"""

from __future__ import annotations

from repro.experiments.runner import aggregate, run_many
from repro.experiments.sweeps import metric_mean_hops, sweep_metric
from repro.experiments.tables import format_series_table

from _common import bench_runs, emit, once, paper_config, sweep_progress

SIZES = [50, 100, 150, 200]
SPEEDS = [2.0, 4.0, 6.0, 8.0]


def regen_fig15a():
    means, cis = sweep_metric(
        paper_config(),
        "n_nodes",
        SIZES,
        ["ALERT", "GPSR", "AO2P"],
        metric_mean_hops,
        runs=bench_runs(),
        on_result=sweep_progress("fig15a", len(SIZES) * 3 * bench_runs()),
    )
    # ALARM twice: plain data hops and with dissemination included.
    alarm_plain, alarm_full = [], []
    for n in SIZES:
        results = run_many(
            paper_config(protocol="ALARM", n_nodes=n), runs=bench_runs()
        )
        alarm_plain.append(aggregate([r.mean_hops for r in results])[0])
        alarm_full.append(
            aggregate([r.mean_hops_with_dissemination() for r in results])[0]
        )
    means["ALARM"] = alarm_plain
    means["ALARM+dissem"] = alarm_full
    return means, format_series_table(
        "Fig. 15a — hops per packet vs number of nodes",
        "N",
        SIZES,
        means,
        digits=2,
    )


def regen_fig15b():
    columns: dict[str, list[float]] = {}
    for proto in ("ALERT", "GPSR"):
        for update in (True, False):
            label = f"{proto} {'with' if update else 'w/o'} update"
            m = []
            for v in SPEEDS:
                cfg = paper_config(
                    protocol=proto, speed=v, destination_update=update,
                    duration=80.0,
                )
                results = run_many(cfg, runs=bench_runs())
                m.append(aggregate([r.mean_hops for r in results])[0])
            columns[label] = m
    return columns, format_series_table(
        "Fig. 15b — hops per packet vs node speed, with/without "
        "destination update",
        "v (m/s)",
        SPEEDS,
        columns,
        digits=2,
    )


def test_fig15a_hops_vs_density(benchmark, capsys):
    means, table = once(benchmark, regen_fig15a)
    emit(capsys, "fig15a", table)
    for i, n in enumerate(SIZES):
        # ALERT pays extra hops for anonymity over every shortest-path
        # protocol...
        assert means["ALERT"][i] > means["GPSR"][i]
        # ...but ALARM with dissemination included dominates the chart
        # wherever the network is dense enough for dissemination to
        # reach everyone (the paper's headline is the 200-node point;
        # at 50 nodes/km² the per-round reception count is tiny).
        if n >= 100:
            assert means["ALARM+dissem"][i] > means["ALERT"][i]
        assert means["ALARM+dissem"][i] > means["ALARM"][i] * 1.5
        # Shortest-path protocols cluster together.
        assert abs(means["ALARM"][i] - means["GPSR"][i]) < 2.0


def test_fig15b_hops_vs_speed(benchmark, capsys):
    columns, table = once(benchmark, regen_fig15b)
    emit(capsys, "fig15b", table)
    # Without update, higher speed lengthens (or at least never
    # shortens much) GPSR's routes.
    gpsr_wo = columns["GPSR w/o update"]
    assert gpsr_wo[-1] >= gpsr_wo[0] - 0.5
    # With update, hop counts stay flat for both protocols.
    for proto in ("ALERT", "GPSR"):
        series = columns[f"{proto} with update"]
        assert max(series) - min(series) < max(2.0, 0.5 * min(series))
