"""Fig. 12 — simulated destination anonymity (§5.5).

Number of nodes remaining in an H=5 destination zone over time, node
speed 2 m/s, densities 100 / 150 / 200 per km².  The paper observes:
more remaining nodes at higher density, decay over time, matching the
analytical Fig. 9a.
"""

from __future__ import annotations

from repro.analysis.theory import remaining_nodes
from repro.analysis.zone_residency import measure_remaining_nodes
from repro.experiments.tables import format_series_table

from _common import emit, once

TIMES = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
H = 5


def regen_fig12():
    columns = {}
    for n in (100, 150, 200):
        columns[f"rho={n}/km^2 (sim)"] = measure_remaining_nodes(
            n, 2.0, H, TIMES, seed=n
        )
        columns[f"rho={n}/km^2 (eq.15)"] = [
            float(remaining_nodes(t, H, 1000.0, 2.0, n / 1e6)) for t in TIMES
        ]
    return columns, format_series_table(
        "Fig. 12 — remaining nodes in the destination zone vs time "
        "(v=2 m/s, H=5; simulated and analytical)",
        "t (s)",
        TIMES,
        columns,
        digits=2,
    )


def test_fig12_remaining_nodes(benchmark, capsys):
    columns, table = once(benchmark, regen_fig12)
    emit(capsys, "fig12", table)
    for n in (100, 150, 200):
        sim = columns[f"rho={n}/km^2 (sim)"]
        # Decays over time (within sampling noise).
        assert sim[-1] < sim[0] + 0.5
        # Starts near the analytical population rho·G/2^H.
        assert abs(sim[0] - n / 32) <= max(2.0, 0.5 * n / 32)
    # Density ordering, as in the paper.
    assert columns["rho=200/km^2 (sim)"][0] > columns["rho=100/km^2 (sim)"][0]
