"""Energy consumption and DoS resilience — the paper's summary claims.

* **Energy** (§5.6 summary: ALERT "has significantly lower energy
  consumption compared to AO2P and ALARM"): total joules per delivered
  packet, broken into radio airtime and crypto CPU time, for all four
  protocols.
* **DoS / node compromise** (§3.1: "the communication of two nodes in
  ALERT cannot be completely stopped by compromising certain nodes"):
  after observing half a session, the attacker disables the busiest
  relays; we measure delivery before and after for GPSR vs ALERT.
"""

from __future__ import annotations

from repro.attacks.traffic_analysis import InterceptionAttacker
from repro.experiments.runner import run_experiment
from repro.experiments.tables import format_kv_block, format_series_table
from repro.net.energy import EnergyModel

from _common import emit, once, paper_config

PROTOCOLS = ["ALERT", "GPSR", "ALARM", "AO2P"]


def regen_energy():
    model = EnergyModel()
    rows: dict[str, list[float]] = {
        "radio (J)": [], "crypto (J)": [], "total (J)": [],
        "J per delivered packet": [],
    }
    for proto in PROTOCOLS:
        r = run_experiment(paper_config(protocol=proto, duration=50.0))
        b = model.breakdown(r.network, r.cost)
        delivered = max(
            sum(1 for f in r.metrics.flows() if f.delivered), 1
        )
        rows["radio (J)"].append(b["radio_tx_j"] + b["radio_rx_j"])
        rows["crypto (J)"].append(b["crypto_j"])
        rows["total (J)"].append(b["total_j"])
        rows["J per delivered packet"].append(b["total_j"] / delivered)
    table = format_series_table(
        "Energy — radio + crypto joules over a 50 s run (200 nodes)",
        "protocol",
        PROTOCOLS,
        rows,
        digits=2,
    )
    return rows, table


def regen_dos():
    rows = {}
    for proto in ("GPSR", "ALERT"):
        cfg = paper_config(protocol=proto, n_pairs=1, duration=80.0, seed=31)
        # Phase 1: observe. Run the full session but compute targets
        # from the first half of the delivered routes.
        r = run_experiment(cfg)
        flows = r.metrics.flows()
        routes = [f.path for f in flows if f.delivered]
        src, dst = r.pairs[0]
        targets = InterceptionAttacker(budget=3).choose_targets(
            routes[: len(routes) // 2], exclude=[src, dst]
        )
        baseline = r.delivery_rate

        # Phase 2: rerun the same seed with those relays dead from the
        # start — the strongest version of the compromise.
        from repro.experiments.runner import run_experiment as _run

        def _with_failures(cfg=cfg, targets=tuple(targets)):
            import repro.experiments.runner as runner_mod
            result = None
            # Build the run manually so we can kill nodes post-warmup.
            from repro.experiments.runner import (
                make_mobility_factory, make_protocol, choose_pairs,
            )
            from repro.crypto.cost_model import CryptoCostModel
            from repro.experiments.metrics import MetricsCollector
            from repro.geometry.field import Field
            from repro.location.service import LocationService
            from repro.net.network import Network
            from repro.net.radio import RadioModel
            from repro.net.traffic import CbrSource
            from repro.sim.engine import Engine

            engine = Engine(seed=cfg.seed)
            fld = Field(cfg.field_size, cfg.field_size)
            net = Network(
                engine, fld, make_mobility_factory(cfg, engine, fld),
                cfg.n_nodes, radio=RadioModel(range_m=cfg.radio_range),
            )
            metrics = MetricsCollector()
            cost = CryptoCostModel()
            location = LocationService(net, cost_model=cost)
            proto_obj = make_protocol(cfg, net, location, metrics, cost)
            net.start_hello()
            engine.run(until=0.5)
            for t in targets:
                net.nodes[t].fail()
            pairs = choose_pairs(cfg, engine)
            sources = [
                CbrSource(engine, proto_obj.send_data, s, d,
                          interval=cfg.send_interval,
                          size_bytes=cfg.packet_size, start_offset=1.0)
                for s, d in pairs
            ]
            engine.run(until=cfg.duration)
            for s in sources:
                s.stop()
            engine.run(until=cfg.duration + cfg.drain_time)
            return metrics.delivery_rate()

        after = _with_failures()
        rows[f"{proto}: delivery, no compromise"] = round(baseline, 3)
        rows[f"{proto}: delivery, 3 busiest relays dead"] = round(after, 3)
    return rows, format_kv_block(
        "§3.1 — DoS by compromising the 3 historically busiest relays",
        rows,
    )


def test_energy_comparison(benchmark, capsys):
    rows, table = once(benchmark, regen_energy)
    emit(capsys, "energy", table)
    by = dict(zip(PROTOCOLS, rows["total (J)"]))
    crypto = dict(zip(PROTOCOLS, rows["crypto (J)"]))
    # The headline: hop-by-hop/periodic public-key crypto costs ALARM
    # and AO2P far more total energy than ALERT.
    assert by["ALARM"] > by["ALERT"] * 2
    assert by["AO2P"] > by["ALERT"] * 1.1
    assert crypto["AO2P"] > crypto["ALERT"] * 5
    # ALERT pays more radio than bare GPSR (more hops) but only
    # symmetric crypto.
    assert by["ALERT"] >= by["GPSR"] * 0.8


def test_dos_resilience(benchmark, capsys):
    rows, table = once(benchmark, regen_dos)
    emit(capsys, "dos", table)
    # Neither protocol is fully stopped; ALERT retains most delivery.
    assert rows["ALERT: delivery, 3 busiest relays dead"] >= 0.5
