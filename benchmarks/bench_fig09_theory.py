"""Fig. 9a/9b — analytical destination anonymity over time (§4.3).

Fig. 9a: number of nodes remaining in the destination zone versus
data-transmission duration, v = 2 m/s, densities 100/200/400 per km²
(eq. 15, H = 5).

Fig. 9b: the same at fixed density 200/km² for speeds 1/2/4 m/s.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.theory import remaining_nodes
from repro.experiments.tables import format_series_table

from _common import emit, once

TIMES = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
FIELD = 1000.0
H = 5


def regen_fig9a():
    columns = {}
    for n in (100, 200, 400):
        rho = n / (FIELD * FIELD)
        columns[f"rho={n}/km^2"] = list(
            remaining_nodes(np.array(TIMES), H, FIELD, 2.0, rho)
        )
    return format_series_table(
        "Fig. 9a — analytical remaining nodes vs time (v=2 m/s, H=5, eq. 15)",
        "t (s)",
        TIMES,
        columns,
        digits=2,
    )


def regen_fig9b():
    rho = 200 / (FIELD * FIELD)
    columns = {
        f"v={v} m/s": list(remaining_nodes(np.array(TIMES), H, FIELD, v, rho))
        for v in (1.0, 2.0, 4.0)
    }
    return format_series_table(
        "Fig. 9b — analytical remaining nodes vs time (rho=200/km^2, H=5)",
        "t (s)",
        TIMES,
        columns,
        digits=2,
    )


def test_fig9a_density_effect(benchmark, capsys):
    table = once(benchmark, regen_fig9a)
    emit(capsys, "fig09a", table)
    t = np.array(TIMES)
    lo = remaining_nodes(t, H, FIELD, 2.0, 100 / 1e6)
    hi = remaining_nodes(t, H, FIELD, 2.0, 400 / 1e6)
    assert np.all(hi > lo)          # denser → more remaining
    assert np.all(np.diff(lo) < 0)  # decays over time


def test_fig9b_speed_effect(benchmark, capsys):
    table = once(benchmark, regen_fig9b)
    emit(capsys, "fig09b", table)
    t = np.array(TIMES[1:])
    rho = 200 / 1e6
    slow = remaining_nodes(t, H, FIELD, 1.0, rho)
    fast = remaining_nodes(t, H, FIELD, 4.0, rho)
    assert np.all(slow > fast)      # faster movement empties the zone
