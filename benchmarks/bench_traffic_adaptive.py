"""Closed-loop traffic harness: adaptive goodput vs the CBR baseline.

The paper's sources are open-loop CBR; the repository adds
:class:`~repro.net.traffic.AdaptiveSource`, an AIMD source driven by
per-flow delivery/loss feedback (``repro.net.feedback``).  This harness
runs one deliberately congested ALERT scenario twice — once with plain
CBR, once with adaptive sources — and records the trade the closed
loop is supposed to make: **offered load drops (backoff events fire)
while goodput stays within 10 % of the CBR baseline**.

The scenario is dense (60 nodes on a 400 m field, 25 pairs at 20 pkt/s
each) so the MAC saturates and CBR wastes transmissions on retries and
drops; the adaptive sources back off only on *terminal* losses
(routing drops and confirmation timeouts, ``react_to_mac_drops=False``)
with a gentle factor and a tight interval cap, which sheds enough load
to raise the delivery rate without starving throughput.

Both runs are fully seeded, so every number in the report — goodput
ratio, backoff count, offered load — is deterministic for a given
simulated duration; the CI gate (``check_perf_regression.py
check_traffic``) asserts the closed-loop invariants on these exact
values rather than on machine-dependent wall time.

Results land in the ``traffic`` section of ``BENCH_perf.json``::

    PYTHONPATH=src python benchmarks/bench_traffic_adaptive.py          # full + quick points
    PYTHONPATH=src python benchmarks/bench_traffic_adaptive.py --quick  # CI: quick point only

or through pytest, which executes the quick profile and asserts the
report is well-formed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentConfig, TrafficConfig
from repro.experiments.runner import run_experiment

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_perf.json"

#: Dedicated seed, distinct from the golden-trace seeds (1/2/3/11) and
#: the scale harness's 101 so the suites never mask each other's drift.
TRAFFIC_SEED = 9

#: Simulated seconds: the committed full profile and the CI quick run.
FULL_DURATION = 30.0
QUICK_DURATION = 12.0

#: AIMD parameters frozen after tuning on the scenario below: terminal
#: losses only, gentle multiplicative growth, tight cap.  Reacting to
#: every MAC drop over-throttles (goodput ratio ~0.55 with defaults);
#: this setting sheds ~8 % offered load for a ~3-point delivery-rate
#: gain, keeping goodput within 5 % of CBR.
ADAPTIVE_TRAFFIC = TrafficConfig(
    model="adaptive",
    min_interval=0.05,
    max_interval=0.5,
    backoff_factor=1.25,
    recovery_step=0.5,
    react_to_mac_drops=False,
)


def traffic_config(duration: float) -> ExperimentConfig:
    """The congested baseline scenario (CBR side) at ``duration``."""
    return ExperimentConfig(
        protocol="ALERT",
        n_nodes=60,
        field_size=400.0,
        duration=duration,
        n_pairs=25,
        send_interval=0.05,
        seed=TRAFFIC_SEED,
    )


def bench_traffic_point(duration: float) -> dict:
    """One CBR/adaptive run pair at ``duration``; all stats deterministic."""
    cfg = traffic_config(duration)
    t0 = time.perf_counter()
    cbr = run_experiment(cfg)
    t1 = time.perf_counter()
    adaptive = run_experiment(cfg.with_(traffic=ADAPTIVE_TRAFFIC))
    t2 = time.perf_counter()
    return {
        "sim_duration_s": duration,
        "n_nodes": cfg.n_nodes,
        "n_pairs": cfg.n_pairs,
        "send_interval_s": cfg.send_interval,
        "cbr": {
            "offered_load_pps": cbr.offered_load_pps,
            "goodput_pps": cbr.goodput_pps,
            "delivery_rate": cbr.delivery_rate,
            "wall_s": t1 - t0,
        },
        "adaptive": {
            "offered_load_pps": adaptive.offered_load_pps,
            "goodput_pps": adaptive.goodput_pps,
            "delivery_rate": adaptive.delivery_rate,
            "backoff_events": adaptive.backoff_events,
            "recovery_events": adaptive.recovery_events,
            "wall_s": t2 - t1,
        },
        "goodput_ratio": adaptive.goodput_pps / cbr.goodput_pps,
    }


def run_traffic(quick: bool = False) -> dict:
    """Execute the harness and assemble the ``traffic`` section.

    The full profile records *both* durations so the committed baseline
    always has a point duration-matched to CI's quick candidate.
    """
    section: dict = {
        "quick": quick,
        "seed": TRAFFIC_SEED,
        "adaptive_params": {
            "min_interval": ADAPTIVE_TRAFFIC.min_interval,
            "max_interval": ADAPTIVE_TRAFFIC.max_interval,
            "backoff_factor": ADAPTIVE_TRAFFIC.backoff_factor,
            "recovery_step": ADAPTIVE_TRAFFIC.recovery_step,
            "react_to_mac_drops": ADAPTIVE_TRAFFIC.react_to_mac_drops,
        },
    }
    durations = (QUICK_DURATION,) if quick else (QUICK_DURATION, FULL_DURATION)
    for duration in durations:
        point = bench_traffic_point(duration)
        key = "quick_point" if duration == QUICK_DURATION else "full_point"
        section[key] = point
        print(
            f"[traffic] dur={duration:.0f}s: goodput ratio "
            f"{point['goodput_ratio']:.3f} "
            f"(cbr {point['cbr']['goodput_pps']:.1f} pps -> adaptive "
            f"{point['adaptive']['goodput_pps']:.1f} pps), offered "
            f"{point['cbr']['offered_load_pps']:.1f} -> "
            f"{point['adaptive']['offered_load_pps']:.1f} pps, "
            f"{point['adaptive']['backoff_events']} backoffs",
            flush=True,
        )
    return section


def merge_report(out_path: Path, section: dict) -> dict:
    """Write ``section`` as the ``traffic`` key of the report at ``out_path``.

    Merges into an existing ``BENCH_perf.json`` (preserving ``timings``
    and ``scale``); creates a minimal standalone report when the file
    does not exist (the CI candidate path).
    """
    if out_path.exists():
        report = json.loads(out_path.read_text())
    else:
        report = {
            "schema": 1,
            "generated_unix": time.time(),
            "host": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "cpu_count": os.cpu_count(),
                "machine": platform.machine(),
            },
        }
    report["traffic"] = section
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: quick point only"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPORT_PATH,
        help=f"report path to merge into (default {REPORT_PATH})",
    )
    args = parser.parse_args(argv)
    section = run_traffic(quick=args.quick)
    merge_report(args.out, section)
    print(f"\nwrote traffic section to {args.out}")
    return 0


def test_traffic_harness_smoke(tmp_path):
    """Quick profile runs end to end and satisfies the closed-loop claims."""
    section = run_traffic(quick=True)
    point = section["quick_point"]
    assert point["adaptive"]["backoff_events"] > 0
    assert (
        point["adaptive"]["offered_load_pps"] < point["cbr"]["offered_load_pps"]
    )
    assert point["goodput_ratio"] >= 0.9
    assert point["adaptive"]["delivery_rate"] >= point["cbr"]["delivery_rate"]
    out = tmp_path / "BENCH_perf.json"
    report = merge_report(out, section)
    assert json.loads(out.read_text())["traffic"] == report["traffic"]


if __name__ == "__main__":
    raise SystemExit(main())
