"""Fig. 11 — simulated number of random forwarders vs partitions (§5.4).

The average number of RFs per delivered packet, versus the partition
count H.  The paper reports an approximately linear trend, consistent
with the analytical Fig. 7b; both series are printed side by side.
"""

from __future__ import annotations

from repro.analysis.theory import expected_random_forwarders
from repro.experiments.parallel import run_many_parallel
from repro.experiments.runner import aggregate
from repro.experiments.tables import format_series_table

from _common import bench_runs, emit, once, paper_config

H_VALUES = [1, 2, 3, 4, 5, 6]


def _rf_count_all(r):
    """Mean RF count over all packets, delivered or not (picklable)."""
    return r.metrics.mean_rf_count(delivered_only=False)


def regen_fig11():
    sim_means, sim_cis, theory = [], [], []
    for h in H_VALUES:
        cfg = paper_config(
            protocol="ALERT", h_override=h, duration=40.0, n_pairs=6
        )
        values = run_many_parallel(cfg, _rf_count_all, runs=bench_runs())
        mean, ci = aggregate(values)
        sim_means.append(mean)
        sim_cis.append(ci)
        theory.append(expected_random_forwarders(h))
    table = format_series_table(
        "Fig. 11 — number of random forwarders vs partitions "
        "(simulated, with eq. 10 for reference)",
        "H",
        H_VALUES,
        {"simulated #RF": sim_means, "theory eq.10": theory},
        cis={"simulated #RF": sim_cis},
        digits=2,
    )
    return sim_means, table


def test_fig11_rf_vs_partitions(benchmark, capsys):
    sim_means, table = once(benchmark, regen_fig11)
    emit(capsys, "fig11", table)
    # Increasing trend with H (the paper's headline observation).
    assert sim_means[-1] > sim_means[0]
    # Broadly monotone: each step up in H does not lose more than noise.
    for a, b in zip(sim_means, sim_means[1:]):
        assert b >= a - 0.5
