"""Large-field scaling harness: loop cost per event at N=1000–10000.

The paper's evaluation stops at 200 nodes; the repository's large-N
fast lane (typed delivery records, batched greedy forwarding,
round-batched hello ingest) targets fields an order of magnitude
bigger.  This harness runs one seeded ALERT simulation per population
at the paper's density (200 nodes per 1000 m × 1000 m, so the field
side grows as ``1000·sqrt(N/200)``) and records the *event-loop* cost
per processed event.

Setup cost (key generation, registration, network build) is fixed per
run and grows with N, so naive ``wall / events`` would drown the loop
numbers in setup at short durations.  ``run_experiment``'s ``on_setup``
hook marks the instant the stack is built and the first event is about
to run; everything before it is reported as ``setup_mean_s`` and
everything after as ``loop_mean_s``, and the µs/event figure divides
only the loop time.

Results land in the ``scale`` section of ``BENCH_perf.json`` (the
default ``--out`` merges into an existing report).  Run it directly::

    PYTHONPATH=src python benchmarks/bench_scale.py          # full: N=1000–10000
    PYTHONPATH=src python benchmarks/bench_scale.py --quick  # CI: N=1000, 3 reps

or through pytest, which executes the quick profile and asserts the
report is well-formed.  The CI perf gate compares the quick run's
N=1000 point against the committed baseline's — same config, same
duration, so loop times are directly comparable.  Each point records
both the mean and the *minimum* loop time over its reps; the gate
prefers the minimum, which is the standard least-interference
estimator and far less sensitive to scheduler noise than a mean of
one or two draws.  Each population additionally runs in its own
interpreter (see ``_bench_point_isolated``): allocator-arena history
from earlier, smaller points measurably inflates later points' loop
times when the whole sweep shares one process.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from _common import event_rate, us_per_event
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_perf.json"

#: Seed shared by every scale point; distinct from the golden-trace and
#: alert_run seeds so the three suites never mask each other's drift.
SCALE_SEED = 101

#: Simulated seconds per run.  Short enough that even N=10000 stays
#: minutes, long enough that the data phase dominates the first hello
#: rounds.
SCALE_DURATION = 10.0

#: Full-profile populations with their repetition counts; quick mode
#: runs only the first point, at ``QUICK_REPS`` repetitions.  Three
#: reps at the large points keep ``loop_min_s`` a usable estimator
#: there — host-level scheduler noise arrives in multi-second bursts
#: that can swallow two consecutive draws just when the runs are
#: longest.
SCALE_POINTS = ((1000, 2), (2000, 2), (5000, 3), (10000, 3))

#: Reps for the CI quick point.  Three N=1000 runs cost ~2 s of wall
#: clock and make ``loop_min_s`` a stable gate input; a single draw on
#: a busy runner can swing ±40%.
QUICK_REPS = 3


def scale_config(n_nodes: int, duration: float = SCALE_DURATION) -> ExperimentConfig:
    """The paper's density extrapolated to ``n_nodes``.

    Field side ``1000·sqrt(N/200)`` keeps 200 nodes per km²; pair count
    scales as N/50 so offered load per node matches the 200-node
    default (10 pairs).
    """
    return ExperimentConfig(
        protocol="ALERT",
        n_nodes=n_nodes,
        field_size=round(1000.0 * math.sqrt(n_nodes / 200.0), 1),
        duration=duration,
        n_pairs=n_nodes // 50,
        seed=SCALE_SEED,
    )


def bench_scale_point(n_nodes: int, reps: int) -> dict:
    """One population: mean wall/setup/loop seconds and per-event cost."""
    cfg = scale_config(n_nodes)
    walls: list[float] = []
    setups: list[float] = []
    result = None
    for _ in range(reps):
        # A finished run leaves large cyclic structures (network ↔
        # protocol ↔ engine) to the collector; without an explicit
        # collection here, later points in the sweep pay progressively
        # longer GC pauses for *earlier* points' garbage, inflating
        # their loop numbers by 30%+ at N=5000.
        gc.collect()
        marks: list[float] = []
        t0 = time.perf_counter()
        result = run_experiment(
            cfg, on_setup=lambda: marks.append(time.perf_counter() - t0)
        )
        walls.append(time.perf_counter() - t0)
        setups.append(marks[0])
    events = result.engine.events_processed
    loops = [w - s for w, s in zip(walls, setups)]
    wall = float(np.mean(walls))
    setup = float(np.mean(setups))
    loop = wall - setup
    return {
        "n_nodes": n_nodes,
        "field_size": cfg.field_size,
        "n_pairs": cfg.n_pairs,
        "sim_duration_s": cfg.duration,
        "reps": reps,
        "wall_mean_s": wall,
        "setup_mean_s": setup,
        "loop_mean_s": loop,
        "loop_min_s": float(min(loops)),
        "events_processed": events,
        "event_counts": {
            k: int(v) for k, v in sorted(result.event_counts.items())
        },
        "us_per_event": us_per_event(events, loop),
        "events_per_s": event_rate(events, loop),
    }


def _bench_point_isolated(n_nodes: int, reps: int) -> dict:
    """Run one scale point in a fresh interpreter.

    Loop times drift upward over a long-lived process — each finished
    run leaves the allocator's arenas more fragmented, and by the time
    the N=10000 point runs at the tail of an in-process sweep its loop
    is measurably (~10–20%) slower than the same run in a fresh
    process.  Per-point isolation removes that cross-point interference
    so every population is measured from the same cold-heap start.
    """
    out = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--point",
            str(n_nodes),
            "--reps",
            str(reps),
        ],
        check=True,
        capture_output=True,
        text=True,
    )
    return json.loads(out.stdout.splitlines()[-1])


def run_scale(quick: bool = False, isolate: bool = True) -> dict:
    """Execute the scaling sweep and assemble the ``scale`` section."""
    points = SCALE_POINTS[:1] if quick else SCALE_POINTS
    section: dict = {
        "quick": quick,
        "seed": SCALE_SEED,
        "sim_duration_s": SCALE_DURATION,
    }
    for n_nodes, reps in points:
        reps = QUICK_REPS if quick else reps
        if isolate:
            point = _bench_point_isolated(n_nodes, reps)
        else:
            point = bench_scale_point(n_nodes, reps)
        section[f"n{n_nodes}"] = point
        print(
            f"[scale] N={n_nodes}: {point['us_per_event']:.1f} µs/event "
            f"({point['events_per_s']:.0f} events/s, "
            f"loop {point['loop_mean_s']:.2f} s, "
            f"setup {point['setup_mean_s']:.2f} s, "
            f"{point['events_processed']} events)",
            flush=True,
        )
    return section


def merge_report(out_path: Path, section: dict) -> dict:
    """Write ``section`` as the ``scale`` key of the report at ``out_path``.

    Merges into an existing ``BENCH_perf.json`` (preserving the core
    harness's ``timings``); creates a minimal standalone report when the
    file does not exist (the CI candidate path).
    """
    if out_path.exists():
        report = json.loads(out_path.read_text())
    else:
        report = {
            "schema": 1,
            "generated_unix": time.time(),
            "host": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "cpu_count": os.cpu_count(),
                "machine": platform.machine(),
            },
        }
    report["scale"] = section
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke: N=1000 only, {QUICK_REPS} reps",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPORT_PATH,
        help=f"report path to merge into (default {REPORT_PATH})",
    )
    parser.add_argument(
        "--point",
        type=int,
        default=None,
        help="internal: run one population in-process and print its "
        "JSON point (used by the per-point isolation wrapper)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="repetitions for --point (defaults to the sweep's value)",
    )
    args = parser.parse_args(argv)
    if args.point is not None:
        reps = args.reps
        if reps is None:
            reps = dict(SCALE_POINTS).get(args.point, 2)
        print(json.dumps(bench_scale_point(args.point, reps)))
        return 0
    section = run_scale(quick=args.quick)
    merge_report(args.out, section)
    print(f"\nwrote scale section to {args.out}")
    return 0


def test_scale_harness_smoke(tmp_path):
    """Quick profile runs end to end and produces a well-formed report."""
    section = run_scale(quick=True)
    point = section["n1000"]
    assert point["events_processed"] > 0
    assert point["loop_mean_s"] > 0.0
    assert 0.0 < point["loop_min_s"] <= point["loop_mean_s"] + 1e-12
    assert point["us_per_event"] > 0.0
    # events/s and µs/event are reciprocal views of the same number.
    assert math.isclose(
        point["events_per_s"] * point["us_per_event"], 1e6, rel_tol=1e-12
    )
    assert sum(point["event_counts"].values()) == point["events_processed"]
    out = tmp_path / "BENCH_perf.json"
    report = merge_report(out, section)
    assert json.loads(out.read_text())["scale"] == report["scale"]


if __name__ == "__main__":
    raise SystemExit(main())
