"""Profile one end-to-end simulation run under cProfile.

The per-run kernel's optimisation loop needs to know *where* the
remaining microseconds per event go; this driver answers that by
wrapping a single :func:`repro.experiments.runner.run_experiment` in
cProfile and printing the top-N cumulative table, e.g.::

    PYTHONPATH=src python benchmarks/bench_profile.py
    PYTHONPATH=src python benchmarks/bench_profile.py \
        --protocol GPSR --n-nodes 100 --duration 20 --top 40 --sort tottime
    PYTHONPATH=src python benchmarks/bench_profile.py \
        --dump /tmp/alert.pstats     # raw stats for snakeviz & friends

Other drivers get the same instrumentation without a dedicated flag:
any code wrapped in :func:`repro.experiments.profiling.maybe_profile`
(the perf harness's ALERT run is) dumps the same table when
``REPRO_PROFILE=1`` is set in the environment.

cProfile inflates call-heavy helpers ~2x (fixed per-call cost), so the
table is for *relative* attribution; absolute timings belong to the
un-profiled harness (``benchmarks/bench_perf_core.py``).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.profiling import format_stats
from repro.experiments.runner import run_experiment


def profile_run(
    cfg: ExperimentConfig,
    top: int = 30,
    sort: str = "cumulative",
    dump: Path | None = None,
) -> tuple[cProfile.Profile, str, float]:
    """Profile one run; returns (profile, formatted table, wall seconds)."""
    prof = cProfile.Profile()
    t0 = time.perf_counter()
    result = prof.runcall(run_experiment, cfg)
    wall = time.perf_counter() - t0
    if dump is not None:
        pstats.Stats(prof).dump_stats(str(dump))
    counts = result.event_counts
    header = (
        f"profiled {cfg.protocol} run: n_nodes={cfg.n_nodes} "
        f"duration={cfg.duration}s seed={cfg.seed} | "
        f"wall={wall:.3f}s (cProfile overhead included) | "
        f"events={result.engine.events_processed} "
        f"by category={dict(sorted(counts.items()))}"
    )
    return prof, header + "\n" + format_stats(prof, top=top, sort=sort), wall


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", default="ALERT")
    parser.add_argument("--n-nodes", type=int, default=200)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--n-pairs", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--top", type=int, default=30, help="rows of the stats table"
    )
    parser.add_argument(
        "--sort", default="cumulative", help="pstats sort key"
    )
    parser.add_argument(
        "--dump",
        type=Path,
        default=None,
        help="also write the raw pstats file here",
    )
    args = parser.parse_args(argv)
    cfg = ExperimentConfig(
        protocol=args.protocol,
        n_nodes=args.n_nodes,
        duration=args.duration,
        n_pairs=args.n_pairs,
        seed=args.seed,
    )
    _, report, _ = profile_run(
        cfg, top=args.top, sort=args.sort, dump=args.dump
    )
    print(report)
    if args.dump is not None:
        print(f"wrote raw stats to {args.dump}")
    return 0


def test_profile_run_smoke(tmp_path):
    """The profiler wraps a tiny run and produces a readable table."""
    cfg = ExperimentConfig(
        protocol="ALERT", n_nodes=20, duration=2.0, n_pairs=2,
        field_size=400.0,
    )
    dump = tmp_path / "run.pstats"
    prof, report, wall = profile_run(cfg, top=10, dump=dump)
    assert wall > 0.0
    assert "run_experiment" in report  # the run is attributed
    assert "cumulative" in report  # pstats printed its sorted table
    assert dump.exists() and dump.stat().st_size > 0
    # The raw dump round-trips through pstats for external viewers.
    stats = pstats.Stats(str(dump))
    assert stats.total_calls > 0


if __name__ == "__main__":
    raise SystemExit(main())
