"""Fig. 13a/13b — node speed and partitions vs destination anonymity (§5.5).

Fig. 13a: remaining nodes over time for H ∈ {4, 5} and v ∈ {0, 2, 4} m/s
(density 200/km²).  Paper: higher mobility → fewer remaining nodes;
H=4 keeps more nodes than H=5.

Fig. 13b: the node density required to keep a fixed number of nodes in
the destination zone 10 s into the session, versus speed.  Paper: the
required density grows with speed.
"""

from __future__ import annotations

from repro.analysis.zone_residency import (
    measure_remaining_nodes,
    required_density_for_remaining,
)
from repro.experiments.tables import format_series_table

from _common import emit, once

TIMES = [0.0, 10.0, 20.0, 30.0]


def regen_fig13a():
    columns = {}
    for h in (4, 5):
        for v in (0.0, 2.0, 4.0):
            columns[f"H={h} v={int(v)}"] = measure_remaining_nodes(
                200, v, h, TIMES, seed=int(10 * h + v)
            )
    return columns, format_series_table(
        "Fig. 13a — remaining nodes vs time for H in {4,5}, v in {0,2,4} m/s "
        "(rho=200/km^2)",
        "t (s)",
        TIMES,
        columns,
        digits=2,
    )


def regen_fig13b():
    speeds = [1.0, 2.0, 4.0, 8.0]
    target = 5.0  # keep five nodes in the zone at t = 10 s
    densities = [50, 100, 150, 200, 300, 400]
    required = [
        required_density_for_remaining(target, v, 5, 10.0, densities, seed=3)
        for v in speeds
    ]
    return required, format_series_table(
        "Fig. 13b — density required to keep 5 nodes in the zone at "
        "t=10 s vs node speed (H=5)",
        "v (m/s)",
        speeds,
        {"required density (/km^2)": required},
        digits=1,
    )


def test_fig13a_speed_and_partitions(benchmark, capsys):
    columns, table = once(benchmark, regen_fig13a)
    emit(capsys, "fig13a", table)
    # Static nodes never leave the zone.
    assert columns["H=5 v=0"][0] == columns["H=5 v=0"][-1]
    # Faster movement drains the zone harder (compare at t=30 s,
    # normalising by the initial population).
    for h in (4, 5):
        slow = columns[f"H={h} v=2"]
        fast = columns[f"H={h} v=4"]
        if slow[0] > 0 and fast[0] > 0:
            assert fast[-1] / fast[0] <= slow[-1] / slow[0] + 0.15
    # Fewer partitions → larger zone → more remaining nodes.
    assert columns["H=4 v=2"][0] > columns["H=5 v=2"][0]


def test_fig13b_required_density(benchmark, capsys):
    required, table = once(benchmark, regen_fig13b)
    emit(capsys, "fig13b", table)
    # Required density grows with speed (allowing interpolation noise).
    assert required[-1] >= required[0]
