"""CI gate: fail when ``alert_run`` regresses against the committed baseline.

Usage (what CI runs after the quick harness)::

    PYTHONPATH=src python benchmarks/check_perf_regression.py \
        --baseline BENCH_perf.json --candidate /tmp/BENCH_perf_ci.json \
        --max-regression 0.25

The committed ``BENCH_perf.json`` is a *full* profile (60 simulated
seconds) while CI runs the *quick* one (10 s), so raw means are not
directly comparable — and neither is raw per-event cost, because the
fixed per-run setup (network build, key generation, the first hello
round) amortises over 6x fewer events in a quick run.  Full profiles
therefore also record an ``alert_run_quick`` section measured at the
quick duration; the gate picks the baseline section whose
``sim_duration_s`` matches the candidate and compares **mean wall
time** over that identical workload.  When no section matches (older
baselines), it falls back to per-event cost (``mean_s /
events_processed``), which is only approximately duration-invariant.

Caveats the threshold absorbs: CI runners are not the machine the
baseline was recorded on, and a 200-node quick run is ~0.2 s of
wall-clock, so the gate catches structural regressions (an optimisation
reverted, an accidental O(n) in the event loop), not single-digit
percentages.  Skip it on known-slower PRs with the ``skip-perf-gate``
label (wired in ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _events(run: dict) -> int:
    events = run.get("events_processed")
    if not events:
        raise KeyError(
            "alert_run has no events_processed; regenerate the report "
            "with the current benchmarks/bench_perf_core.py"
        )
    return events


def pick_comparison(baseline: dict, candidate: dict) -> tuple[float, float, str]:
    """Return (baseline_cost, candidate_cost, label) for the gate.

    Prefers a baseline section recorded at the candidate's simulated
    duration (identical workload -> compare means); otherwise falls
    back to per-event cost across mismatched durations.
    """
    cand = candidate["timings"]["alert_run"]
    for key in ("alert_run_quick", "alert_run"):
        base = baseline["timings"].get(key)
        if base is None:
            continue
        if base.get("sim_duration_s") == cand.get("sim_duration_s"):
            return base["mean_s"], cand["mean_s"], f"mean_s vs {key}"
    base = baseline["timings"]["alert_run"]
    return (
        base["mean_s"] / _events(base),
        cand["mean_s"] / _events(cand),
        "per-event cost (no duration-matched baseline section)",
    )


def check(
    baseline: dict, candidate: dict, max_regression: float
) -> tuple[bool, str]:
    """Compare alert_run costs; returns (ok, human-readable summary)."""
    base, cand, label = pick_comparison(baseline, candidate)
    change = cand / base - 1.0
    summary = (
        f"alert_run [{label}]: baseline {base * 1e3:.3f} ms, "
        f"candidate {cand * 1e3:.3f} ms ({change:+.1%}; "
        f"limit +{max_regression:.0%})"
    )
    return change <= max_regression, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--candidate", type=Path, required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fractional slowdown (default 0.25)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    candidate = json.loads(args.candidate.read_text())
    ok, summary = check(baseline, candidate, args.max_regression)
    print(summary)
    if not ok:
        print("FAIL: alert_run regressed beyond the limit", file=sys.stderr)
        return 1
    print("OK")
    return 0


def _report(mean_s: float, events: int, duration: float = 60.0, **extra) -> dict:
    timings = {
        "alert_run": {
            "mean_s": mean_s,
            "events_processed": events,
            "sim_duration_s": duration,
        }
    }
    timings.update(extra)
    return {"timings": timings}


def test_gate_passes_within_limit():
    ok, summary = check(
        _report(1.0, 1000, 10.0), _report(1.17, 1000, 10.0), 0.25
    )
    assert ok and "+17.0%" in summary


def test_gate_fails_beyond_limit():
    ok, _ = check(_report(1.0, 1000, 10.0), _report(1.5, 1000, 10.0), 0.25)
    assert not ok


def test_gate_prefers_duration_matched_quick_section():
    # Full baseline with a quick section: candidate at 10 s must be
    # compared against alert_run_quick, not the 60 s run's per-event
    # cost (setup amortisation differs across durations).
    base = _report(
        1.8,
        41000,
        60.0,
        alert_run_quick={
            "mean_s": 0.30,
            "events_processed": 6800,
            "sim_duration_s": 10.0,
        },
    )
    ok, summary = check(base, _report(0.33, 6800, 10.0), 0.25)
    assert ok and "alert_run_quick" in summary
    ok, _ = check(base, _report(0.50, 6800, 10.0), 0.25)
    assert not ok


def test_gate_falls_back_to_per_event_cost():
    # No duration-matched section in the baseline: per-event fallback.
    ok, summary = check(_report(1.8, 41000, 60.0), _report(0.3, 6833, 10.0), 0.25)
    assert ok and "per-event" in summary


def test_gate_main_roundtrip(tmp_path):
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(_report(1.0, 1000, 10.0)))
    cand.write_text(json.dumps(_report(2.0, 1000, 10.0)))
    rc = main(["--baseline", str(base), "--candidate", str(cand)])
    assert rc == 1
    cand.write_text(json.dumps(_report(1.0, 1000, 10.0)))
    rc = main(["--baseline", str(base), "--candidate", str(cand)])
    assert rc == 0


if __name__ == "__main__":
    raise SystemExit(main())
