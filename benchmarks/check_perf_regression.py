"""CI gate: fail when ``alert_run`` regresses against the committed baseline.

Usage (what CI runs after the quick harness)::

    PYTHONPATH=src python benchmarks/check_perf_regression.py \
        --baseline BENCH_perf.json --candidate /tmp/BENCH_perf_ci.json \
        --max-regression 0.25

The committed ``BENCH_perf.json`` is a *full* profile (60 simulated
seconds) while CI runs the *quick* one (10 s), so raw means are not
directly comparable — and neither is raw per-event cost, because the
fixed per-run setup (network build, key generation, the first hello
round) amortises over 6x fewer events in a quick run.  Full profiles
therefore also record an ``alert_run_quick`` section measured at the
quick duration; the gate picks the baseline section whose
``sim_duration_s`` matches the candidate and compares **mean wall
time** over that identical workload.  When no section matches (older
baselines), it falls back to per-event cost (``mean_s /
events_processed``), which is only approximately duration-invariant.

A second gate covers the ``scale`` section written by
``benchmarks/bench_scale.py``: CI's ``--quick`` run records one N=1000
point at the same config and duration as the committed baseline's, so
loop times are directly comparable.  The gate prefers ``loop_min_s``
(minimum loop time over the point's reps — the least-interference
estimator, stable where a mean of one or two draws swings with
scheduler noise) and falls back to ``loop_mean_s`` for reports that
predate the field.  Reports that predate the scale harness entirely
skip this gate instead of failing it.

A third gate covers the ``mac`` section written by
``benchmarks/bench_mac.py``.  Its parity verdict is deterministic and
hard-fails when broken (the batched MAC diverged from the scalar
oracle — a correctness bug, not a perf question); the batched
per-transmission cost is additionally bounded against a
config-matched baseline point when one exists.

A fourth gate covers the ``traffic`` section written by
``benchmarks/bench_traffic_adaptive.py``.  Unlike the other two it is
deterministic (seeded simulation outputs, not wall time): it asserts
the closed-loop traffic invariants — backoff events fired, adaptive
offered load below CBR's, goodput within 10 % of the CBR baseline —
and additionally bounds the goodput-ratio drop against a
duration-matched baseline point when one exists.

Caveats the threshold absorbs: CI runners are not the machine the
baseline was recorded on, and a 200-node quick run is ~0.2 s of
wall-clock, so the gate catches structural regressions (an optimisation
reverted, an accidental O(n) in the event loop), not single-digit
percentages.  Skip it on known-slower PRs with the ``skip-perf-gate``
label (wired in ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _events(run: dict) -> int:
    events = run.get("events_processed")
    if not events:
        raise KeyError(
            "alert_run has no events_processed; regenerate the report "
            "with the current benchmarks/bench_perf_core.py"
        )
    return events


def pick_comparison(baseline: dict, candidate: dict) -> tuple[float, float, str]:
    """Return (baseline_cost, candidate_cost, label) for the gate.

    Prefers a baseline section recorded at the candidate's simulated
    duration (identical workload -> compare means); otherwise falls
    back to per-event cost across mismatched durations.
    """
    cand = candidate["timings"]["alert_run"]
    for key in ("alert_run_quick", "alert_run"):
        base = baseline["timings"].get(key)
        if base is None:
            continue
        if base.get("sim_duration_s") == cand.get("sim_duration_s"):
            return base["mean_s"], cand["mean_s"], f"mean_s vs {key}"
    base = baseline["timings"]["alert_run"]
    return (
        base["mean_s"] / _events(base),
        cand["mean_s"] / _events(cand),
        "per-event cost (no duration-matched baseline section)",
    )


def check(
    baseline: dict, candidate: dict, max_regression: float
) -> tuple[bool, str]:
    """Compare alert_run costs; returns (ok, human-readable summary)."""
    base, cand, label = pick_comparison(baseline, candidate)
    change = cand / base - 1.0
    summary = (
        f"alert_run [{label}]: baseline {base * 1e3:.3f} ms, "
        f"candidate {cand * 1e3:.3f} ms ({change:+.1%}; "
        f"limit +{max_regression:.0%})"
    )
    return change <= max_regression, summary


def check_scale(
    baseline: dict, candidate: dict, max_regression: float
) -> tuple[bool, str]:
    """Gate the N=1000 scale point's event-loop cost.

    ``bench_scale.py --quick`` and the committed full profile both run
    the same config (seed, field, pairs) at the same simulated
    duration, so loop times are directly comparable — no amortisation
    caveat.  Prefers ``loop_min_s`` (min over reps; wall-clock noise
    only ever adds time, so the minimum is the tightest estimate of
    true cost) and falls back to ``loop_mean_s`` when either report
    predates that field.  If either report predates the scale harness,
    the gate is skipped rather than failed so older baselines don't
    block CI.
    """
    base = (baseline.get("scale") or {}).get("n1000")
    cand = (candidate.get("scale") or {}).get("n1000")
    if base is None or cand is None:
        return True, "scale n1000: skipped (section missing from a report)"
    if base.get("sim_duration_s") == cand.get("sim_duration_s"):
        if "loop_min_s" in base and "loop_min_s" in cand:
            b, c = base["loop_min_s"], cand["loop_min_s"]
            label = "loop_min_s"
        else:
            b, c = base["loop_mean_s"], cand["loop_mean_s"]
            label = "loop_mean_s"
    else:
        b, c = base["us_per_event"], cand["us_per_event"]
        label = "us_per_event (duration mismatch)"
    change = c / b - 1.0
    summary = (
        f"scale n1000 [{label}]: baseline {b:.4g}, candidate {c:.4g} "
        f"({change:+.1%}; limit +{max_regression:.0%})"
    )
    return change <= max_regression, summary


def check_mac(
    baseline: dict, candidate: dict, max_regression: float
) -> tuple[bool, str]:
    """Gate the MAC microbenchmark from ``bench_mac.py``.

    ``parity_ok`` is a seeded, deterministic verdict (batched paths
    replayed against the scalar oracle: outcomes, counters, post-call
    RNG state) — ``False`` always fails, regardless of timing.  The
    batched unicast cost is then bounded against a baseline point with
    the same fan-out and payload (per-transmission minima, so values
    are comparable across call counts).  Reports that predate the MAC
    harness skip this gate instead of failing it.
    """
    cand = candidate.get("mac")
    if cand is None:
        return True, "mac: skipped (section missing from candidate)"
    if not cand.get("parity_ok"):
        return False, "mac: batched-vs-scalar parity BROKEN"
    c = cand["unicast"]["batched_us_per_tx"]
    base = baseline.get("mac")
    if (
        base is None
        or base.get("fanout") != cand.get("fanout")
        or base.get("payload_bytes") != cand.get("payload_bytes")
    ):
        return True, (
            f"mac: parity OK, batched unicast {c:.2f} µs/tx "
            "(no config-matched baseline)"
        )
    b = base["unicast"]["batched_us_per_tx"]
    change = c / b - 1.0
    summary = (
        f"mac [batched unicast µs/tx]: baseline {b:.2f}, "
        f"candidate {c:.2f} ({change:+.1%}; limit +{max_regression:.0%})"
    )
    return change <= max_regression, summary


def check_traffic(
    baseline: dict, candidate: dict, max_regression: float
) -> tuple[bool, str]:
    """Gate the closed-loop traffic point from ``bench_traffic_adaptive.py``.

    Every number in the ``traffic`` section is produced by seeded runs,
    so this gate checks the *closed-loop invariants* on exact values
    rather than wall time: backoff events fired, adaptive offered load
    sits below CBR's, and adaptive goodput stays within 10 % of the CBR
    baseline.  When the baseline report has a duration-matched point,
    the goodput ratio is additionally not allowed to drop by more than
    ``max_regression`` relative to it.  Reports that predate the traffic
    harness skip this gate instead of failing it.
    """
    cand_section = candidate.get("traffic") or {}
    cand = cand_section.get("quick_point") or cand_section.get("full_point")
    if cand is None:
        return True, "traffic: skipped (section missing from candidate)"
    ratio = cand["goodput_ratio"]
    problems = []
    if cand["adaptive"]["backoff_events"] <= 0:
        problems.append("no backoff events (feedback loop inert)")
    if cand["adaptive"]["offered_load_pps"] >= cand["cbr"]["offered_load_pps"]:
        problems.append("adaptive offered load not below CBR")
    if ratio < 0.9:
        problems.append(f"goodput ratio {ratio:.3f} < 0.9")
    base_section = baseline.get("traffic") or {}
    rel = ""
    for key in ("quick_point", "full_point"):
        base = base_section.get(key)
        if base and base.get("sim_duration_s") == cand.get("sim_duration_s"):
            change = ratio / base["goodput_ratio"] - 1.0
            rel = f", vs {key} {change:+.1%}"
            if change < -max_regression:
                problems.append(
                    f"ratio fell {-change:.1%} vs baseline {key} "
                    f"(limit {max_regression:.0%})"
                )
            break
    summary = (
        f"traffic: goodput ratio {ratio:.3f}, "
        f"{cand['adaptive']['backoff_events']} backoffs, offered "
        f"{cand['cbr']['offered_load_pps']:.1f} -> "
        f"{cand['adaptive']['offered_load_pps']:.1f} pps{rel}"
    )
    if problems:
        return False, summary + " | " + "; ".join(problems)
    return True, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--candidate", type=Path, required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fractional slowdown (default 0.25)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    candidate = json.loads(args.candidate.read_text())
    failed = False
    for gate in (check, check_scale, check_mac, check_traffic):
        ok, summary = gate(baseline, candidate, args.max_regression)
        print(summary)
        if not ok:
            failed = True
    if failed:
        print("FAIL: regression beyond the limit", file=sys.stderr)
        return 1
    print("OK")
    return 0


def _report(mean_s: float, events: int, duration: float = 60.0, **extra) -> dict:
    timings = {
        "alert_run": {
            "mean_s": mean_s,
            "events_processed": events,
            "sim_duration_s": duration,
        }
    }
    timings.update(extra)
    return {"timings": timings}


def test_gate_passes_within_limit():
    ok, summary = check(
        _report(1.0, 1000, 10.0), _report(1.17, 1000, 10.0), 0.25
    )
    assert ok and "+17.0%" in summary


def test_gate_fails_beyond_limit():
    ok, _ = check(_report(1.0, 1000, 10.0), _report(1.5, 1000, 10.0), 0.25)
    assert not ok


def test_gate_prefers_duration_matched_quick_section():
    # Full baseline with a quick section: candidate at 10 s must be
    # compared against alert_run_quick, not the 60 s run's per-event
    # cost (setup amortisation differs across durations).
    base = _report(
        1.8,
        41000,
        60.0,
        alert_run_quick={
            "mean_s": 0.30,
            "events_processed": 6800,
            "sim_duration_s": 10.0,
        },
    )
    ok, summary = check(base, _report(0.33, 6800, 10.0), 0.25)
    assert ok and "alert_run_quick" in summary
    ok, _ = check(base, _report(0.50, 6800, 10.0), 0.25)
    assert not ok


def test_gate_falls_back_to_per_event_cost():
    # No duration-matched section in the baseline: per-event fallback.
    ok, summary = check(_report(1.8, 41000, 60.0), _report(0.3, 6833, 10.0), 0.25)
    assert ok and "per-event" in summary


def _scale_report(loop_s: float, events: int = 50000, duration: float = 10.0) -> dict:
    report = _report(1.0, 1000, 10.0)
    report["scale"] = {
        "n1000": {
            "loop_mean_s": loop_s,
            "events_processed": events,
            "sim_duration_s": duration,
            "us_per_event": loop_s / events * 1e6,
        }
    }
    return report


def test_scale_gate_compares_loop_means():
    ok, summary = check_scale(_scale_report(5.0), _scale_report(5.8), 0.25)
    assert ok and "loop_mean_s" in summary
    ok, _ = check_scale(_scale_report(5.0), _scale_report(7.0), 0.25)
    assert not ok


def test_scale_gate_prefers_loop_min():
    # When both reports carry loop_min_s, the gate compares minima and
    # ignores the (noisier) means entirely.
    base = _scale_report(5.0)
    base["scale"]["n1000"]["loop_min_s"] = 4.0
    cand = _scale_report(9.0)  # mean alone would fail the gate
    cand["scale"]["n1000"]["loop_min_s"] = 4.5
    ok, summary = check_scale(base, cand, 0.25)
    assert ok and "loop_min_s" in summary
    cand["scale"]["n1000"]["loop_min_s"] = 6.0
    ok, _ = check_scale(base, cand, 0.25)
    assert not ok


def test_scale_gate_mean_fallback_on_one_sided_min():
    # Older baseline without loop_min_s: fall back to means even though
    # the candidate records a minimum.
    cand = _scale_report(5.8)
    cand["scale"]["n1000"]["loop_min_s"] = 5.5
    ok, summary = check_scale(_scale_report(5.0), cand, 0.25)
    assert ok and "loop_mean_s" in summary


def test_scale_gate_falls_back_on_duration_mismatch():
    base = _scale_report(30.0, events=300000, duration=60.0)
    cand = _scale_report(5.2, events=50000, duration=10.0)
    ok, summary = check_scale(base, cand, 0.25)
    assert ok and "duration mismatch" in summary


def test_scale_gate_skips_when_section_missing():
    ok, summary = check_scale(
        _report(1.0, 1000, 10.0), _scale_report(5.0), 0.25
    )
    assert ok and "skipped" in summary


def _mac_report(batched_us: float, parity: bool = True) -> dict:
    report = _report(1.0, 1000, 10.0)
    report["mac"] = {
        "parity_ok": parity,
        "fanout": 64,
        "payload_bytes": 512,
        "unicast": {
            "scalar_us_per_tx": batched_us * 1.3,
            "batched_us_per_tx": batched_us,
            "speedup": 1.3,
        },
    }
    return report


def test_mac_gate_fails_on_broken_parity():
    # Parity is a correctness verdict: it fails even with a faster
    # candidate.
    ok, summary = check_mac(
        _mac_report(5.0), _mac_report(1.0, parity=False), 0.25
    )
    assert not ok and "parity" in summary


def test_mac_gate_bounds_batched_cost():
    ok, summary = check_mac(_mac_report(5.0), _mac_report(5.8), 0.25)
    assert ok and "batched unicast" in summary
    ok, _ = check_mac(_mac_report(5.0), _mac_report(7.0), 0.25)
    assert not ok


def test_mac_gate_skips_unmatched_or_missing_baseline():
    cand = _mac_report(5.0)
    ok, summary = check_mac(_report(1.0, 1000, 10.0), cand, 0.25)
    assert ok and "no config-matched baseline" in summary
    base = _mac_report(1.0)
    base["mac"]["fanout"] = 32
    ok, summary = check_mac(base, cand, 0.25)
    assert ok and "no config-matched baseline" in summary


def test_mac_gate_skips_when_candidate_section_missing():
    ok, summary = check_mac(
        _mac_report(5.0), _report(1.0, 1000, 10.0), 0.25
    )
    assert ok and "skipped" in summary


def test_main_fails_on_scale_regression(tmp_path):
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(_scale_report(5.0)))
    cand.write_text(json.dumps(_scale_report(9.0)))  # alert_run unchanged
    rc = main(["--baseline", str(base), "--candidate", str(cand)])
    assert rc == 1


def _traffic_report(
    ratio: float,
    backoffs: int = 1500,
    offered: tuple[float, float] = (455.0, 420.0),
    duration: float = 12.0,
    point: str = "quick_point",
) -> dict:
    report = _report(1.0, 1000, 10.0)
    cbr_off, ad_off = offered
    report["traffic"] = {
        point: {
            "sim_duration_s": duration,
            "goodput_ratio": ratio,
            "cbr": {"offered_load_pps": cbr_off, "goodput_pps": 380.0},
            "adaptive": {
                "offered_load_pps": ad_off,
                "goodput_pps": 380.0 * ratio,
                "backoff_events": backoffs,
            },
        }
    }
    return report


def test_traffic_gate_passes_on_healthy_point():
    ok, summary = check_traffic(
        _traffic_report(0.95), _traffic_report(0.93), 0.25
    )
    assert ok and "goodput ratio 0.930" in summary and "quick_point" in summary


def test_traffic_gate_fails_below_absolute_floor():
    ok, summary = check_traffic(
        _traffic_report(0.95), _traffic_report(0.85), 0.25
    )
    assert not ok and "< 0.9" in summary


def test_traffic_gate_fails_without_backoffs():
    ok, summary = check_traffic(
        _traffic_report(0.95), _traffic_report(0.95, backoffs=0), 0.25
    )
    assert not ok and "inert" in summary


def test_traffic_gate_fails_when_load_not_cut():
    ok, summary = check_traffic(
        _traffic_report(0.95),
        _traffic_report(0.95, offered=(455.0, 455.0)),
        0.25,
    )
    assert not ok and "not below CBR" in summary


def test_traffic_gate_skips_without_candidate_section():
    ok, summary = check_traffic(
        _traffic_report(0.95), _report(1.0, 1000, 10.0), 0.25
    )
    assert ok and "skipped" in summary


def test_traffic_gate_ignores_duration_mismatched_baseline():
    # Baseline point at a different simulated duration: absolute checks
    # only, no relative comparison in the summary.
    base = _traffic_report(0.99, duration=30.0)
    ok, summary = check_traffic(base, _traffic_report(0.92), 0.25)
    assert ok and "vs quick_point" not in summary


def test_main_fails_on_traffic_violation(tmp_path):
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(_traffic_report(0.95)))
    cand.write_text(json.dumps(_traffic_report(0.95, backoffs=0)))
    rc = main(["--baseline", str(base), "--candidate", str(cand)])
    assert rc == 1


def test_gate_main_roundtrip(tmp_path):
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(_report(1.0, 1000, 10.0)))
    cand.write_text(json.dumps(_report(2.0, 1000, 10.0)))
    rc = main(["--baseline", str(base), "--candidate", str(cand)])
    assert rc == 1
    cand.write_text(json.dumps(_report(1.0, 1000, 10.0)))
    rc = main(["--baseline", str(base), "--candidate", str(cand)])
    assert rc == 0


if __name__ == "__main__":
    raise SystemExit(main())
