"""Fig. 14a/14b — latency per packet (§5.6).

Fig. 14a: latency versus node count (50-200) for ALERT, GPSR, ALARM,
AO2P.  Paper shape: ALARM ≈ AO2P ≫ ALERT ≳ GPSR (the hop-by-hop /
periodic public-key work dwarfs path-length effects), with AO2P a
little above ALARM, and everyone's latency falling as density rises.

Fig. 14b: latency versus node speed (2-8 m/s) with and without
destination update for ALERT and GPSR.  Paper: stable with update;
mildly increasing without.
"""

from __future__ import annotations

from repro.experiments.parallel import run_many_parallel
from repro.experiments.runner import aggregate
from repro.experiments.sweeps import metric_mean_latency, sweep_metric
from repro.experiments.tables import format_series_table

from _common import bench_runs, emit, once, paper_config, sweep_progress

SIZES = [50, 100, 150, 200]
SPEEDS = [2.0, 4.0, 6.0, 8.0]
PROTOCOLS = ["ALERT", "GPSR", "ALARM", "AO2P"]


def regen_fig14a():
    means, cis = sweep_metric(
        paper_config(),
        "n_nodes",
        SIZES,
        PROTOCOLS,
        metric_mean_latency,
        runs=bench_runs(),
        on_result=sweep_progress(
            "fig14a", len(SIZES) * len(PROTOCOLS) * bench_runs()
        ),
    )
    return means, format_series_table(
        "Fig. 14a — latency per packet (s) vs number of nodes",
        "N",
        SIZES,
        means,
        cis=cis,
        digits=4,
    )


def regen_fig14b():
    columns: dict[str, list[float]] = {}
    cis: dict[str, list[float]] = {}
    for proto in ("ALERT", "GPSR"):
        for update in (True, False):
            label = f"{proto} {'with' if update else 'w/o'} update"
            m, c = [], []
            for v in SPEEDS:
                cfg = paper_config(
                    protocol=proto, speed=v, destination_update=update,
                    duration=80.0,
                )
                values = run_many_parallel(
                    cfg, metric_mean_latency, runs=bench_runs()
                )
                mean, ci = aggregate(values)
                m.append(mean)
                c.append(ci)
            columns[label] = m
            cis[label] = c
    return columns, format_series_table(
        "Fig. 14b — latency per packet (s) vs node speed, with/without "
        "destination update",
        "v (m/s)",
        SPEEDS,
        columns,
        cis=cis,
        digits=4,
    )


def test_fig14a_latency_vs_density(benchmark, capsys):
    means, table = once(benchmark, regen_fig14a)
    emit(capsys, "fig14a", table)
    for i in range(len(SIZES)):
        # Hop-by-hop / periodic public-key protocols are dramatically
        # slower than ALERT and GPSR at every density.
        assert means["ALARM"][i] > means["ALERT"][i] * 5
        assert means["AO2P"][i] > means["ALERT"][i] * 5
        # ALERT pays a modest premium over GPSR for its random routes.
        assert means["ALERT"][i] > means["GPSR"][i]
    # Density relief: everyone is no slower at 200 than at 50 nodes.
    for p in PROTOCOLS:
        assert means[p][-1] <= means[p][0] * 1.5


def test_fig14b_latency_vs_speed(benchmark, capsys):
    columns, table = once(benchmark, regen_fig14b)
    emit(capsys, "fig14b", table)
    # With updates, latency stays roughly flat across speeds.
    for proto in ("ALERT", "GPSR"):
        series = columns[f"{proto} with update"]
        assert max(series) <= min(series) * 2.5
    # ALERT remains above GPSR in every condition.
    for cond in ("with", "w/o"):
        for i in range(len(SPEEDS)):
            assert (
                columns[f"ALERT {cond} update"][i]
                > columns[f"GPSR {cond} update"][i] * 0.8
            )
