"""Core performance harness: times the simulator's hot paths.

Unlike the ``bench_fig*`` drivers (which regenerate the paper's
figures), this harness measures *wall-clock* performance of the four
layers every figure regeneration bottlenecks on:

1. position snapshot build (vectorised mobility interpolation),
2. incremental snapshot refresh vs from-scratch index rebuild,
3. spatial-index radius queries (neighbor discovery),
4. a full hello round (snapshot + N queries + table updates),
5. one end-to-end ALERT simulation (real crypto and cost-only mode,
   with per-category engine event counters),
6. sweep result-transport IPC: the legacy pickle-everything path vs
   the executor's shared-memory float64 result buffer,
7. the neighbor table's sorted-row cache at a dense topology,

plus, optionally, a serial-vs-parallel sweep of one small figure.
Set ``REPRO_PROFILE=1`` to additionally profile one ALERT run under
cProfile (see ``benchmarks/bench_profile.py``).

Results are written machine-readable to ``BENCH_perf.json`` at the
repository root so subsequent changes have a perf trajectory to
defend.  Run it directly::

    PYTHONPATH=src python benchmarks/bench_perf_core.py          # full
    PYTHONPATH=src python benchmarks/bench_perf_core.py --quick  # CI smoke

or through pytest (``pytest benchmarks/bench_perf_core.py``), which
executes the quick profile and asserts the report is well-formed.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from _common import event_rate, us_per_event
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    Cell,
    SweepExecutor,
    _picklable,
    _representative_payloads,
    parallel_map_cells,
    worker_count,
)
from repro.crypto.keys import generate_keypair
from repro.experiments.profiling import maybe_profile, profile_enabled
from repro.experiments.runner import run_experiment
from repro.experiments.sweeps import metric_delivery_rate
from repro.geometry.field import Field
from repro.geometry.primitives import Point
from repro.geometry.spatial_index import GridIndex
from repro.mobility.random_waypoint import RandomWaypoint
from repro.net.neighbor_table import NeighborEntry, NeighborTable
from repro.net.network import Network
from repro.sim.engine import Engine

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_perf.json"


def _timeit(fn, reps: int) -> dict[str, float]:
    """Run ``fn`` ``reps`` times; report mean/min wall-clock seconds."""
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "mean_s": float(np.mean(samples)),
        "min_s": float(np.min(samples)),
        "reps": reps,
    }


def _make_network(n_nodes: int) -> Network:
    engine = Engine(seed=7)
    fld = Field(1000.0, 1000.0)
    net = Network(
        engine,
        fld,
        lambda i, rng: RandomWaypoint(fld, rng, speed_min=2.0, speed_max=2.0),
        n_nodes,
    )
    return net


def bench_snapshot_build(n_nodes: int, reps: int) -> dict[str, float]:
    """Cold-cache position snapshot builds (positions + grid index)."""
    net = _make_network(n_nodes)
    net.engine._now = 50.0  # force trajectories to materialise legs
    net.snapshot()  # warm-up: trajectory extension is amortised cost

    def build() -> None:
        net._snapshot_time = -1.0  # invalidate the cache
        net.snapshot()

    out = _timeit(build, reps)
    out["n_nodes"] = n_nodes
    return out


def bench_snapshot_incremental(n_nodes: int, reps: int) -> dict[str, float]:
    """Incremental snapshot refresh vs a forced from-scratch rebuild.

    Two identically-seeded networks advance time in 0.25 s steps (at
    2 m/s nodes move 0.5 m — almost nobody crosses a 250 m cell), one
    refreshing via the incremental diff path, the other with its index
    invalidated before every refresh.  Both produce result-identical
    indices; the incremental path should win on wall-clock.
    """
    inc = _make_network(n_nodes)
    full = _make_network(n_nodes)
    for net in (inc, full):
        net.engine._now = 50.0
        net.snapshot()  # warm-up: trajectory extension is amortised
        # Pre-extend trajectories past the benchmark window so leg
        # materialisation cost doesn't land on either timed path.
        net.engine._now = 50.0 + 0.25 * (reps + 1)
        net.snapshot()
        net.engine._now = 50.0
        net._snapshot_index = None
        net.snapshot()

    def step_incremental() -> None:
        inc.engine._now += 0.25
        inc.snapshot()

    def step_full_rebuild() -> None:
        full.engine._now += 0.25
        full._snapshot_index = None  # force the from-scratch path
        full.snapshot()

    out: dict[str, float] = {"n_nodes": n_nodes}
    incremental = _timeit(step_incremental, reps)
    rebuild = _timeit(step_full_rebuild, reps)
    out["incremental_mean_s"] = incremental["mean_s"]
    out["incremental_min_s"] = incremental["min_s"]
    out["full_rebuild_mean_s"] = rebuild["mean_s"]
    out["full_rebuild_min_s"] = rebuild["min_s"]
    out["reps"] = reps
    out["speedup"] = (
        rebuild["mean_s"] / incremental["mean_s"]
        if incremental["mean_s"] > 0
        else float("nan")
    )
    out["incremental_refreshes"] = inc.snapshot_incremental

    # Index-maintenance only (excluding the mobility interpolation both
    # paths share): adopt_positions vs constructing a fresh GridIndex
    # over the same two consecutive snapshot arrays.
    pos_a = np.array(full.snapshot()[0])
    full.engine._now += 0.25
    full._snapshot_index = None
    pos_b = np.array(full.snapshot()[0])
    cell = full.radio.range_m
    grid = GridIndex(pos_a.copy(), cell)
    flip = [pos_b, pos_a]

    def adopt_only() -> None:
        grid.adopt_positions(flip[0].copy())
        flip.reverse()

    def build_only() -> None:
        GridIndex(flip[0], cell)

    out["index_adopt_mean_s"] = _timeit(adopt_only, reps)["mean_s"]
    out["index_build_mean_s"] = _timeit(build_only, reps)["mean_s"]
    out["index_only_speedup"] = (
        out["index_build_mean_s"] / out["index_adopt_mean_s"]
        if out["index_adopt_mean_s"] > 0
        else float("nan")
    )
    return out


def bench_radius_query(n_nodes: int, reps: int) -> dict[str, float]:
    """Radius queries against a built index (neighbor discovery)."""
    rng = np.random.default_rng(11)
    pos = rng.uniform(0.0, 1000.0, size=(n_nodes, 2))
    index = GridIndex(pos, 250.0)
    centers = rng.uniform(0.0, 1000.0, size=(256, 2))

    def queries() -> None:
        for cx, cy in centers:
            index.query_radius(cx, cy, 250.0)

    out = _timeit(queries, reps)
    out["n_nodes"] = n_nodes
    out["queries_per_rep"] = len(centers)
    return out


def bench_hello_round(n_nodes: int, reps: int) -> dict[str, float]:
    """One full beacon round: snapshot + N neighbor queries + updates."""
    net = _make_network(n_nodes)
    net.engine._now = 10.0
    net.snapshot()
    out = _timeit(net._emit_hello_round, reps)
    out["n_nodes"] = n_nodes
    return out


def bench_alert_run(duration: float, reps: int = 3) -> dict[str, float]:
    """End-to-end ALERT simulations at the paper's defaults.

    Times the run with real crypto and again in ``cost-only`` mode
    (shadow ciphertexts, identical event trace, crypto charged to the
    cost model only).  Multiple reps because a single 200-node run is
    ~1 s and shared machines jitter by ±20 %; the mean is the number
    the CI regression gate defends.  The per-category engine event
    counters of the real run are recorded alongside the timings so a
    perf change that silently alters the workload (rather than the
    per-event cost) is visible in the report diff.

    With ``REPRO_PROFILE=1`` one extra (untimed) run is profiled and
    its top-N cumulative table dumped to stderr.
    """
    cfg = ExperimentConfig(
        protocol="ALERT", n_nodes=200, duration=duration, n_pairs=10
    )
    cost_cfg = cfg.with_(
        alert_options={**cfg.alert_options, "crypto_mode": "cost-only"}
    )
    result = run_experiment(cfg)  # warm-up: imports, allocator, caches
    run_experiment(cost_cfg)
    # Interleave the two modes so drifting background load (shared CI
    # machines) biases both samples the same way instead of whichever
    # mode happened to run second.
    real: list[float] = []
    cost_only: list[float] = []
    for _ in range(reps):
        t0 = time.perf_counter()
        run_experiment(cfg)
        real.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_experiment(cost_cfg)
        cost_only.append(time.perf_counter() - t0)

    mean_s = float(np.mean(real))
    events = result.engine.events_processed
    out: dict[str, float] = {
        "mean_s": mean_s,
        "min_s": float(np.min(real)),
        "reps": reps,
        "n_nodes": cfg.n_nodes,
        "sim_duration_s": duration,
        "events_processed": events,
        # Throughput via the shared helpers so every driver derives
        # events/s and µs/event the same way (see benchmarks/_common).
        "events_per_s": event_rate(events, mean_s),
        "us_per_event": us_per_event(events, mean_s),
        "event_counts": {
            k: int(v) for k, v in sorted(result.event_counts.items())
        },
        "cost_only_mean_s": float(np.mean(cost_only)),
        "cost_only_min_s": float(np.min(cost_only)),
    }

    with maybe_profile(label=f"alert_run n=200 duration={duration}s"):
        if profile_enabled():
            run_experiment(cfg)
    return out


def bench_neighbor_live_entries(n_entries: int, reps: int) -> dict[str, float]:
    """``NeighborTable.live_entries`` with and without the sorted cache.

    Routing decisions read the table far more often than hello rounds
    rewrite it; the address-sorted row cache turns every read between
    writes into a filter over a prebuilt list instead of a fresh
    ``sorted()`` of the whole table.  This times a dense topology
    (``n_entries`` neighbors — every node in range at the paper's
    200-node default) at a read:write ratio of 100:1, with the
    uncached baseline simulated by clobbering the cache before each
    read.
    """
    rng = np.random.default_rng(3)
    key = generate_keypair(rng).public
    table = NeighborTable(ttl=3.0)
    table.bulk_update(
        NeighborEntry(
            link_address=i,
            pseudonym=bytes(rng.integers(0, 256, size=8, dtype=np.uint8)),
            position=Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000))),
            public_key=key,
            last_seen=10.0,
        )
        for i in range(n_entries)
    )
    reads = 100

    def cached() -> None:
        for _ in range(reads):
            table.live_entries(11.0)

    def uncached() -> None:
        for _ in range(reads):
            table._sorted = None  # defeat the cache: re-sort per read
            table.live_entries(11.0)

    out: dict[str, float] = {"n_entries": n_entries, "reads_per_rep": reads}
    out["cached_mean_s"] = _timeit(cached, reps)["mean_s"]
    out["uncached_mean_s"] = _timeit(uncached, reps)["mean_s"]
    out["speedup"] = (
        out["uncached_mean_s"] / out["cached_mean_s"]
        if out["cached_mean_s"] > 0
        else float("nan")
    )
    out["reps"] = reps
    return out


def bench_sweep(workers: int, duration: float, runs: int) -> dict[str, float]:
    """Serial vs parallel execution of one small figure sweep."""
    base = ExperimentConfig(duration=duration, n_pairs=5)
    cells = [
        Cell(base.with_(n_nodes=n, protocol=p), metric_delivery_rate, runs)
        for n in (100, 150)
        for p in ("ALERT", "GPSR")
    ]

    t0 = time.perf_counter()
    serial = parallel_map_cells(cells, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = parallel_map_cells(cells, workers=workers)
    parallel_s = time.perf_counter() - t0

    return {
        "cells": len(cells),
        "runs_per_cell": runs,
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("nan"),
        "identical_results": serial == parallel,
    }


def bench_sweep_ipc(
    n_cells: int, runs_per_cell: int, reps: int
) -> dict[str, float]:
    """Sweep result-transport (IPC) cost: pickle path vs shared memory.

    A sweep's IPC has two parts the executor controls: the pre-flight
    picklability probe and returning each ``(cell, seed)`` metric value
    to the parent.  The legacy path pickled the *entire* payload list
    just to probe it and pickled every result back across the process
    boundary; the shared-memory path probes one representative payload
    per metric and has workers write each scalar into a float64 slot
    the parent reads directly.  End-to-end sweep wall-clock is
    dominated by the simulations themselves, so this times the two
    transports in isolation over the value matrix of an ``n_cells``-cell
    sweep.  A small *real* sweep additionally checks that the serial,
    pickle-return, and shared-memory paths produce bit-identical
    results.

    The shared-memory path pays a fixed segment create/unlink cost per
    sweep, so it wins once the sweep has a realistic number of seeds
    (the paper averages 30 per cell; break-even is a few hundred total)
    — keep ``n_cells × runs_per_cell`` ≥ ~500.
    """
    base = ExperimentConfig(
        n_nodes=30, duration=5.0, n_pairs=2, field_size=600.0
    )
    cells = [
        Cell(base.with_(seed=s), metric_delivery_rate, runs_per_cell)
        for s in range(n_cells)
    ]
    payloads: list[tuple] = []
    for cell in cells:
        for cfg in cell.seed_configs():
            payloads.append(
                (len(payloads), None, cfg, cell.metric,
                 cell.max_packets_per_pair)
            )
    rng = np.random.default_rng(5)
    values = rng.uniform(size=len(payloads)).tolist()

    def pickle_transport() -> None:
        # Legacy probe: serialize every payload a second time …
        assert _picklable(payloads)
        # … and pickle every result value back to the parent.
        for v in values:
            tag, out = pickle.loads(pickle.dumps(("value", v)))
            assert out == v

    def shm_transport() -> None:
        # New probe: one representative payload per distinct metric.
        assert all(
            _picklable(p) for p in _representative_payloads(payloads)
        )
        shm = shared_memory.SharedMemory(create=True, size=8 * len(values))
        try:
            buf = np.ndarray(
                (len(values),), dtype=np.float64, buffer=shm.buf
            )
            for slot, v in enumerate(values):  # worker-side slot writes
                buf[slot] = v
            for slot, v in enumerate(values):  # parent-side slot reads
                assert float(buf[slot]) == v
        finally:
            buf = None
            shm.close()
            shm.unlink()

    pickle_t = _timeit(pickle_transport, reps)
    shm_t = _timeit(shm_transport, reps)
    out: dict[str, float] = {
        "cells": n_cells,
        "seeds": len(payloads),
        "pickle_ipc_mean_s": pickle_t["mean_s"],
        "shm_ipc_mean_s": shm_t["mean_s"],
        "pickle_ipc_min_s": pickle_t["min_s"],
        "shm_ipc_min_s": shm_t["min_s"],
    }
    # Best-of-reps: the shm path's segment create/unlink syscalls jitter
    # wildly on loaded hosts (noise is strictly additive), so the mean
    # ratio swings 1–9x rep to rep while the min ratio is stable.
    out["speedup"] = (
        out["pickle_ipc_min_s"] / out["shm_ipc_min_s"]
        if out["shm_ipc_min_s"] > 0
        else float("nan")
    )

    parity_cells = [
        Cell(base.with_(seed=s), metric_delivery_rate, 1) for s in range(4)
    ]
    with SweepExecutor(workers=1) as ex:
        serial = ex.map_cells(parity_cells)
    with SweepExecutor(workers=2, use_shared_memory=False) as ex:
        pickled = ex.map_cells(parity_cells)
    with SweepExecutor(workers=2, use_shared_memory=True) as ex:
        shared = ex.map_cells(parity_cells)
    out["identical_results"] = serial == pickled == shared
    return out


def run_harness(quick: bool = False, sweep: bool = True) -> dict:
    """Execute every benchmark and assemble the report dict."""
    reps = 3 if quick else 10
    n_nodes = 200
    report: dict = {
        "schema": 1,
        "generated_unix": time.time(),
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
        },
        "timings": {
            # The end-to-end run goes first: it is the number the CI
            # regression gate defends, and timing it in a fresh process
            # (before the N=2000 benches blow up the allocator's
            # footprint) keeps run-to-run jitter down.
            # Six reps full / two quick: single runs are ~1 s and shared
            # machines jitter ±25 %, so the mean needs samples to settle.
            "alert_run": bench_alert_run(
                10.0 if quick else 60.0, reps=2 if quick else 6
            ),
            "snapshot_build": bench_snapshot_build(n_nodes, reps),
            # Acceptance target: incremental beats from-scratch at N=2000.
            "snapshot_incremental": bench_snapshot_incremental(
                2000, max(reps, 20)
            ),
            "radius_query": bench_radius_query(n_nodes, reps),
            "hello_round": bench_hello_round(n_nodes, reps),
            "neighbor_live_entries": bench_neighbor_live_entries(
                n_nodes, max(reps, 5)
            ),
            # Acceptance target: shared-memory sweep IPC >= 1.5x the
            # pickle path at a 100+-cell sweep, bit-identical results.
            "sweep_ipc": bench_sweep_ipc(
                n_cells=120,
                runs_per_cell=5 if quick else 30,
                reps=max(reps, 5),
            ),
        },
    }
    if not quick:
        # A quick-profile measurement alongside the full one: CI's
        # regression gate compares its own quick run against this
        # section (same simulated duration → same setup amortisation),
        # falling back to per-event cost only for older baselines.
        report["timings"]["alert_run_quick"] = bench_alert_run(10.0, reps=2)
    if sweep:
        # The env-resolved (CPU-clamped) worker count: forcing a wide
        # pool onto a small host just measured contention (a 4-worker
        # pool on 1 CPU ran the sweep *slower* than serial).
        report["timings"]["sweep"] = bench_sweep(
            workers=worker_count(),
            duration=5.0 if quick else 20.0,
            runs=1 if quick else 2,
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="fast CI smoke profile"
    )
    parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the serial-vs-parallel sweep comparison",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPORT_PATH,
        help=f"report path (default {REPORT_PATH})",
    )
    args = parser.parse_args(argv)
    report = run_harness(quick=args.quick, sweep=not args.no_sweep)
    if args.out.exists():
        # Preserve sections owned by other harnesses (bench_scale.py's
        # `scale`) instead of dropping them on a core-only rerun.
        report = {**json.loads(args.out.read_text()), **report}
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report["timings"], indent=2, sort_keys=True))
    print(f"\nwrote {args.out}")
    return 0


def test_perf_harness_smoke(tmp_path):
    """The harness runs end to end and produces a well-formed report."""
    report = run_harness(quick=True, sweep=True)
    for key in ("snapshot_build", "radius_query", "hello_round", "alert_run"):
        assert report["timings"][key]["mean_s"] > 0.0
    snap = report["timings"]["snapshot_incremental"]
    assert snap["incremental_mean_s"] > 0.0
    assert snap["incremental_refreshes"] > 0  # the diff path really ran
    run = report["timings"]["alert_run"]
    # Per-category counters ship with the report, and cover every
    # processed event (nothing escapes categorisation).
    assert sum(run["event_counts"].values()) == run["events_processed"]
    assert run["cost_only_mean_s"] > 0.0
    assert report["timings"]["neighbor_live_entries"]["speedup"] >= 1.5
    assert report["timings"]["sweep"]["identical_results"]
    ipc = report["timings"]["sweep_ipc"]
    assert ipc["cells"] >= 100
    assert ipc["identical_results"]  # serial == pickle == shared memory
    assert ipc["speedup"] >= 1.5
    out = tmp_path / "BENCH_perf.json"
    out.write_text(json.dumps(report))
    assert json.loads(out.read_text())["schema"] == 1


if __name__ == "__main__":
    raise SystemExit(main())
