"""MAC-layer microbenchmark: scalar vs batched contention resolution.

PR 8's transmission pipeline resolves whole fan-outs through
``Mac80211Dcf.unicast_batch`` / ``broadcast_batch`` — scalar-replay
chains that issue the exact per-receiver RNG draws of the scalar loop
(so golden traces stay bit-identical) while pricing airtime,
propagation, and failure probabilities for the whole fan-out up front.
This harness times both paths over identical seeded inputs and records
the per-transmission cost of each, plus a parity verdict computed by
replaying the same stream through both paths and comparing outcomes,
counters, and the post-call generator state.

Results land in the ``mac`` section of ``BENCH_perf.json`` (the default
``--out`` merges into an existing report).  Run it directly::

    PYTHONPATH=src python benchmarks/bench_mac.py          # full profile
    PYTHONPATH=src python benchmarks/bench_mac.py --quick  # CI smoke

or through pytest, which executes the quick profile and asserts the
report is well-formed and parity holds.  Per-transmission costs are
minima over reps (the least-interference estimator, same rationale as
``bench_scale.py``); the CI gate in ``check_perf_regression.py``
hard-fails on parity and bounds the batched path's cost against the
committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.net.mac import Mac80211Dcf
from repro.net.radio import RadioModel

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_perf.json"

#: Seed for both the input generator and the MAC streams; distinct from
#: the golden-trace / alert_run / scale seeds.
MAC_SEED = 202

#: Fan-out per batch call.  Large enough that the batch path's fixed
#: vector setup is amortised the way a zone broadcast or holder-release
#: fan-out amortises it, small enough to stay realistic for the paper's
#: densities.
FANOUT = 64

#: (calls per rep, reps) for full and quick profiles.
FULL_SHAPE = (200, 5)
QUICK_SHAPE = (50, 3)


def _make_mac(seed: int = MAC_SEED) -> Mac80211Dcf:
    return Mac80211Dcf(
        radio=RadioModel(), rng=np.random.default_rng(seed)
    )


def _inputs(calls: int, fanout: int) -> list[tuple]:
    """Seeded per-call input arrays shared by every timed variant."""
    rng = np.random.default_rng(MAC_SEED + 1)
    out = []
    for _ in range(calls):
        distances = rng.uniform(5.0, 240.0, size=fanout)
        loads = rng.integers(0, 7, size=fanout).astype(np.float64)
        out.append((distances, distances.tolist(), loads, loads.tolist()))
    return out


def _time_unicast(
    inputs: list[tuple], reps: int, batched: bool
) -> float:
    """Min-over-reps µs per transmission for the unicast path."""
    n_tx = len(inputs) * len(inputs[0][0])
    best = float("inf")
    for _ in range(reps):
        mac = _make_mac()
        t0 = time.perf_counter()
        if batched:
            for dist, _, loads, _ in inputs:
                mac.unicast_batch(512, dist, loads)
        else:
            for _, dist_l, _, loads_l in inputs:
                for k in range(len(dist_l)):
                    mac.unicast(512, dist_l[k], loads_l[k])
        best = min(best, time.perf_counter() - t0)
    return best / n_tx * 1e6


def _time_broadcast(
    inputs: list[tuple], reps: int, batched: bool
) -> float:
    """Min-over-reps µs per transmission for the broadcast path."""
    n_tx = len(inputs) * len(inputs[0][0])
    best = float("inf")
    for _ in range(reps):
        mac = _make_mac()
        t0 = time.perf_counter()
        if batched:
            for _, _, loads, _ in inputs:
                mac.broadcast_batch(512, loads)
        else:
            for _, _, _, loads_l in inputs:
                for ld in loads_l:
                    mac.broadcast(512, ld)
        best = min(best, time.perf_counter() - t0)
    return best / n_tx * 1e6


def _parity(inputs: list[tuple]) -> bool:
    """Replay the same stream through both paths; True iff bit-identical.

    Covers outcomes (success/delay/attempts), all three counters, and
    the post-call PCG64 state — the exact properties the Hypothesis
    suite ``tests/test_batched_mac.py`` pins case by case.
    """
    scalar = _make_mac()
    batch = _make_mac()
    for dist, dist_l, loads, loads_l in inputs:
        ref_u = [
            scalar.unicast(512, dist_l[k], loads_l[k])
            for k in range(len(dist_l))
        ]
        ref_b = [scalar.broadcast(512, ld) for ld in loads_l]
        got_u = batch.unicast_batch(512, dist, loads)
        got_b = batch.broadcast_batch(512, loads)
        if ref_u != got_u or ref_b != got_b:
            return False
    if (
        scalar.attempts_total != batch.attempts_total
        or scalar.collisions_total != batch.collisions_total
        or scalar.drops_total != batch.drops_total
    ):
        return False
    return (
        scalar._rng.bit_generator.state == batch._rng.bit_generator.state
    )


def run_mac(quick: bool = False) -> dict:
    """Execute the microbenchmark and assemble the ``mac`` section."""
    calls, reps = QUICK_SHAPE if quick else FULL_SHAPE
    inputs = _inputs(calls, FANOUT)
    section: dict = {
        "quick": quick,
        "seed": MAC_SEED,
        "fanout": FANOUT,
        "calls": calls,
        "reps": reps,
        "payload_bytes": 512,
        "parity_ok": _parity(inputs),
    }
    for kind, timer in (
        ("unicast", _time_unicast),
        ("broadcast", _time_broadcast),
    ):
        scalar_us = timer(inputs, reps, batched=False)
        batched_us = timer(inputs, reps, batched=True)
        section[kind] = {
            "scalar_us_per_tx": scalar_us,
            "batched_us_per_tx": batched_us,
            "speedup": scalar_us / batched_us,
        }
        print(
            f"[mac] {kind}: scalar {scalar_us:.2f} µs/tx, "
            f"batched {batched_us:.2f} µs/tx "
            f"({scalar_us / batched_us:.2f}x), parity "
            f"{'OK' if section['parity_ok'] else 'BROKEN'}",
            flush=True,
        )
    return section


def merge_report(out_path: Path, section: dict) -> dict:
    """Write ``section`` as the ``mac`` key of the report at ``out_path``.

    Merges into an existing ``BENCH_perf.json``; creates a minimal
    standalone report when the file does not exist (the CI candidate
    path).
    """
    if out_path.exists():
        report = json.loads(out_path.read_text())
    else:
        report = {
            "schema": 1,
            "generated_unix": time.time(),
            "host": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "cpu_count": os.cpu_count(),
                "machine": platform.machine(),
            },
        }
    report["mac"] = section
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke: {QUICK_SHAPE[0]} calls x {QUICK_SHAPE[1]} reps",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPORT_PATH,
        help=f"report path to merge into (default {REPORT_PATH})",
    )
    args = parser.parse_args(argv)
    section = run_mac(quick=args.quick)
    merge_report(args.out, section)
    print(f"\nwrote mac section to {args.out}")
    return 0 if section["parity_ok"] else 1


def test_mac_harness_smoke(tmp_path):
    """Quick profile runs end to end, parity holds, report well-formed."""
    section = run_mac(quick=True)
    assert section["parity_ok"] is True
    for kind in ("unicast", "broadcast"):
        point = section[kind]
        assert point["scalar_us_per_tx"] > 0.0
        assert point["batched_us_per_tx"] > 0.0
        assert point["speedup"] == (
            point["scalar_us_per_tx"] / point["batched_us_per_tx"]
        )
    out = tmp_path / "BENCH_perf.json"
    report = merge_report(out, section)
    assert json.loads(out.read_text())["mac"] == report["mac"]


if __name__ == "__main__":
    raise SystemExit(main())
