"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables/figures and
prints the same rows/series the paper reports (see DESIGN.md §4 for
the experiment index).  Output goes both to the terminal (so
``pytest benchmarks/ --benchmark-only | tee …`` captures it) and to
``benchmarks/results/<name>.txt``.

Environment knobs:

* ``REPRO_RUNS`` — seeded repetitions per data point (default 2 for
  benchmarks; the paper averages 30).
* ``REPRO_BENCH_DURATION`` — simulated seconds per run (default 60;
  the paper uses 100).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.experiments.config import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"


def bench_runs() -> int:
    """Seeded repetitions per data point."""
    return int(os.environ.get("REPRO_RUNS", "2"))


def bench_duration() -> float:
    """Simulated duration per run."""
    return float(os.environ.get("REPRO_BENCH_DURATION", "60"))


def paper_config(**overrides) -> ExperimentConfig:
    """The paper's §5.2 defaults, with the bench duration applied."""
    base = dict(duration=bench_duration())
    base.update(overrides)
    return ExperimentConfig(**base)


def event_rate(events: int, wall_s: float) -> float:
    """Processed engine events per wall-clock second.

    The one throughput definition every perf driver shares — reports
    mixing events/s with its reciprocal (s/event, µs/event) are easy to
    misread across sections, so drivers record both but always derive
    them through here (``event_rate`` and ``1e6 / event_rate``).
    """
    return events / wall_s if wall_s > 0 else float("nan")


def us_per_event(events: int, wall_s: float) -> float:
    """Mean wall-clock microseconds per processed engine event."""
    rate = event_rate(events, wall_s)
    return 1e6 / rate if rate > 0 else float("nan")


def sweep_progress(label: str, total: int):
    """Streaming ``on_result`` callback for a sweep of ``total`` seeds.

    The executor streams each completed ``(cell, seed)`` result as it
    arrives (shared-memory transport, see
    :mod:`repro.experiments.parallel`); this prints a coarse progress
    line at every ~10 % milestone so long figure regenerations are
    visibly alive instead of silent for minutes.
    """
    done = 0
    next_mark = max(1, total // 10)

    def on_result(cell_idx: int, seed_idx: int, value) -> None:
        nonlocal done, next_mark
        done += 1
        if done >= next_mark or done == total:
            print(
                f"[{label}] {done}/{total} seeds done "
                f"(last: cell {cell_idx} seed {seed_idx})",
                file=sys.stderr,
                flush=True,
            )
            while next_mark <= done:
                next_mark += max(1, total // 10)

    return on_result


def emit(capsys, name: str, text: str) -> None:
    """Print a result table to the real terminal and save it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    with capsys.disabled():
        print(f"\n{text}\n")


def once(benchmark, fn):
    """Run a regeneration function exactly once under pytest-benchmark.

    The interesting output is the figure data, not the wall-clock of a
    repeated micro-benchmark, so one round is enough — the benchmark
    fixture still records the elapsed time for the summary table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
