#!/usr/bin/env python
"""Watch ALERT's routes wander: ASCII rendering of consecutive packets.

Sends three packets between one fixed S-D pair under ALERT and under
GPSR, and draws each delivered route on the field (S = source,
D = destination, digits = relays of route 1/2/3, # = destination-zone
outline for ALERT).  GPSR's three routes overlap almost perfectly;
ALERT's take visibly different detours — the route anonymity of §3.1,
on screen.

Run:  python examples/route_visualizer.py
"""

from __future__ import annotations

from repro.core.alert import AlertProtocol
from repro.core.config import AlertConfig
from repro.core.zones import destination_zone
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import MetricsCollector
from repro.experiments.runner import make_mobility_factory, make_protocol
from repro.experiments.trace import render_field
from repro.geometry.field import Field
from repro.location.service import LocationService
from repro.net.network import Network
from repro.sim.engine import Engine

def run_session(protocol: str):
    import numpy as np

    engine = Engine(seed=12)
    fld = Field(1000, 1000)
    cfg = ExperimentConfig(n_nodes=200, protocol=protocol, speed=1.0)
    net = Network(engine, fld, make_mobility_factory(cfg, engine, fld), 200)
    metrics = MetricsCollector()
    location = LocationService(net, cost_model=CryptoCostModel())
    proto = make_protocol(cfg, net, location, metrics, CryptoCostModel())
    net.start_hello()
    engine.run(until=0.5)
    # The farthest-apart pair makes the multi-hop detours visible.
    pos, _ = net.snapshot()
    d2 = ((pos[None] - pos[:, None]) ** 2).sum(-1)
    src, dst = map(int, np.unravel_index(np.argmax(d2), d2.shape))
    global SRC, DST
    SRC, DST = src, dst
    for _ in range(3):
        proto.send_data(SRC, DST)
        engine.run(until=engine.now + 1.5)
    engine.run(until=engine.now + 2.0)
    location.stop()
    routes = [f.path for f in metrics.flows() if f.delivered]
    zone = None
    if isinstance(proto, AlertProtocol):
        d_pos = net.nodes[DST].position(engine.now)
        zone = destination_zone(fld.bounds, d_pos, proto.h,
                                proto.config.first_direction)
    return net, routes, zone


def main() -> None:
    for protocol in ("GPSR", "ALERT"):
        net, routes, zone = run_session(protocol)
        print(f"\n{protocol}: three consecutive packets, same S-D pair")
        print(render_field(net, routes, zone=zone))
        from repro.analysis.anonymity import mean_pairwise_overlap
        if len(routes) >= 2:
            print(f"route overlap (Jaccard, consecutive): "
                  f"{mean_pairwise_overlap(routes):.2f}")


if __name__ == "__main__":
    main()
