#!/usr/bin/env python
"""Battlefield scenario: what does an eavesdropper actually learn?

The paper's motivating deployment (§1): soldiers' radios form a MANET;
an enemy observer captures traffic, trying to locate the commander
(the destination) and the scouts reporting to her (the sources).

This example runs one long reporting session under ALERT — with the
intersection-attack defense on — and under GPSR, then attacks both
with the full §3 toolkit: set intersection over destination-zone
recipients, timing correlation, and relay compromise.

Run:  python examples/battlefield_anonymity.py
"""

from __future__ import annotations

from repro.attacks.adversary import DeliveryObservation
from repro.attacks.intersection_attack import IntersectionAttacker
from repro.attacks.timing_attack import TimingAttacker
from repro.attacks.traffic_analysis import InterceptionAttacker
from repro.core.alert import AlertProtocol
from repro.core.config import AlertConfig
from repro.crypto.cost_model import CryptoCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import MetricsCollector
from repro.experiments.runner import make_mobility_factory, run_experiment
from repro.geometry.field import Field
from repro.location.service import LocationService
from repro.net.network import Network
from repro.sim.engine import Engine

SCOUT, COMMANDER = 0, 120
N_REPORTS = 25


def alert_session():
    """A defended ALERT session with an observer in the field."""
    engine = Engine(seed=7)
    fld = Field(1000, 1000)
    cfg = ExperimentConfig(n_nodes=200)
    net = Network(engine, fld, make_mobility_factory(cfg, engine, fld), 200)
    metrics = MetricsCollector()
    location = LocationService(net, cost_model=CryptoCostModel())
    proto = AlertProtocol(
        net,
        location,
        metrics,
        config=AlertConfig(
            h_override=5,
            notify_and_go=True,
            intersection_defense=True,
            multicast_m=3,
        ),
    )
    observations: list[DeliveryObservation] = []
    proto.zone_delivery_observer = lambda t, r: observations.append(
        DeliveryObservation(time=t, recipients=frozenset(r))
    )
    net.start_hello()
    engine.run(until=0.5)
    for _ in range(N_REPORTS):
        proto.send_data(SCOUT, COMMANDER)
        engine.run(until=engine.now + 2.0)
    engine.run(until=engine.now + 3.0)
    return metrics, observations


def main() -> None:
    print("Battlefield anonymity: scout -> commander, enemy listening")
    print("=" * 62)

    # ------------------------------------------------------------ ALERT
    metrics, observations = alert_session()
    print(f"\nALERT (notify-and-go + intersection defense), "
          f"{N_REPORTS} reports, delivery {metrics.delivery_rate():.2f}")

    attacker = IntersectionAttacker()
    attacker.observe_all(observations)
    print(f"  intersection attack over {attacker.observations} observed "
          f"zone deliveries:")
    print(f"    final candidate set size : {len(attacker.candidates())}")
    print(f"    commander identified     : {attacker.identified(COMMANDER)}")
    print(f"    commander escaped the set: {attacker.defeated(COMMANDER)}")
    eta = metrics.counters.get("notify_anonymity_set", 0) / max(
        metrics.counters.get("notify_rounds", 1), 1
    )
    print(f"  notify-and-go source anonymity set: ~{eta:.0f} candidates")

    # ------------------------------------------------------------- GPSR
    cfg = ExperimentConfig(protocol="GPSR", n_nodes=200, duration=60.0,
                           n_pairs=1, seed=7)
    r = run_experiment(cfg)
    routes = [f.path for f in r.metrics.flows() if f.delivered]
    print(f"\nGPSR baseline, {len(routes)} delivered reports")

    timing = TimingAttacker(cv_threshold=0.35)
    deps = [f.created_at for f in r.metrics.flows()]
    arrs = [f.delivered_at for f in r.metrics.flows() if f.delivered]
    v = timing.correlate(deps, arrs)
    print(f"  timing attack: delay CV {v.cv:.3f} -> "
          f"{'S-D pair exposed' if v.identified else 'inconclusive'}")

    interceptor = InterceptionAttacker(budget=3)
    half = len(routes) // 2
    src, dst = r.pairs[0]
    rate = interceptor.interception_rate(
        routes[:half], routes[half:], exclude=[src, dst]
    )
    print(f"  relay compromise: 3 busiest relays intercept "
          f"{rate:.0%} of later reports")
    print(
        "\nGPSR's fixed shortest path makes both attacks easy; ALERT's"
        "\nrandom zone-hopping and two-step zone delivery deny them."
    )


if __name__ == "__main__":
    main()
