#!/usr/bin/env python
"""Protocol bake-off: ALERT vs GPSR vs ALARM vs AO2P.

Reproduces the spirit of the paper's §5.6 comparison in one run per
protocol: latency, hops, delivery, energy proxies, and crypto bills,
printed side by side.  ALARM's periodic identity dissemination and the
hop-by-hop public-key costs of ALARM/AO2P are what separate the
columns.

Run:  python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro import ExperimentConfig, run_experiment
from repro.experiments.tables import format_series_table

PROTOCOLS = ("ALERT", "GPSR", "ALARM", "AO2P")


def main() -> None:
    rows: dict[str, list[float]] = {
        "latency (ms)": [],
        "hops/packet": [],
        "delivery": [],
        "pubkey ops": [],
        "symmetric ops": [],
        "link attempts": [],
    }
    for protocol in PROTOCOLS:
        cfg = ExperimentConfig(
            protocol=protocol, n_nodes=150, duration=40.0, n_pairs=8, seed=11
        )
        r = run_experiment(cfg)
        charges = r.cost.charges
        pub = sum(
            charges.get(op, 0)
            for op in ("pubkey_encrypt", "pubkey_decrypt", "sign", "verify")
        )
        sym = sum(
            charges.get(op, 0)
            for op in ("symmetric_encrypt", "symmetric_decrypt")
        )
        attempts = sum(f.attempts for f in r.metrics.flows())
        rows["latency (ms)"].append(r.mean_latency * 1000)
        rows["hops/packet"].append(r.mean_hops)
        rows["delivery"].append(r.delivery_rate)
        rows["pubkey ops"].append(float(pub))
        rows["symmetric ops"].append(float(sym))
        rows["link attempts"].append(float(attempts))

    print(
        format_series_table(
            "Protocol comparison — 150 nodes, 40 s, 8 S-D pairs",
            "protocol",
            list(PROTOCOLS),
            rows,
            digits=1,
        )
    )
    print(
        "\nReading the table: ALARM and AO2P route as tightly as GPSR"
        "\nbut pay a public-key operation on every hop (and, for ALARM,"
        "\nper dissemination link), which is their ~50x latency."
        "\nALERT spends a handful of extra hops and one symmetric"
        "\nencryption instead — the paper's 'high anonymity at low"
        "\ncost' claim in one run."
    )


if __name__ == "__main__":
    main()
