#!/usr/bin/env python
"""Quickstart: route anonymous traffic through a MANET with ALERT.

Builds the paper's default scenario — 200 nodes on a 1000 m × 1000 m
field, random-waypoint mobility at 2 m/s — runs ten CBR flows for
30 simulated seconds under ALERT, and prints the §5.2 metrics next to
the GPSR baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExperimentConfig, run_experiment


def main() -> None:
    print("ALERT quickstart — 200 nodes, 1000 m x 1000 m, v = 2 m/s")
    print("=" * 60)

    for protocol in ("ALERT", "GPSR"):
        cfg = ExperimentConfig(
            protocol=protocol,
            n_nodes=200,
            duration=30.0,
            n_pairs=10,
            seed=42,
        )
        result = run_experiment(cfg)
        m = result.metrics
        print(f"\n{protocol}")
        print(f"  packets sent          {m.packets_sent}")
        print(f"  delivery rate         {result.delivery_rate:.3f}")
        print(f"  latency per packet    {result.mean_latency * 1000:.1f} ms")
        print(f"  hops per packet       {result.mean_hops:.2f}")
        print(f"  participating nodes   {result.participating_nodes}")
        if protocol == "ALERT":
            print(f"  random forwarders     {result.mean_rf_count:.2f} per packet")
            verified = m.counters.get("payload_verified", 0)
            print(f"  payloads decrypted OK {int(verified)}")

    print(
        "\nALERT delivers comparably to GPSR while scattering each"
        "\npacket over a fresh random route — that dispersion is the"
        "\nanonymity the paper is about.  See examples/battlefield_"
        "\nanonymity.py for the adversary's view."
    )


if __name__ == "__main__":
    main()
