#!/usr/bin/env python
"""Tuning ALERT's anonymity knobs for a deployment.

A downstream user's first question is "what H/k/m do I set?".  This
example walks the tradeoffs with both the paper's closed forms (§4)
and live simulations:

* H (partition count): route anonymity (#RFs) vs hop cost vs the size
  of the destination anonymity set.
* m (two-step multicast fan-out): §3.3 coverage formula.
* expected zone residency over a session (how long k-anonymity lasts
  at a given speed), eq. (15).

Run:  python examples/anonymity_tuning.py
"""

from __future__ import annotations

from repro.analysis.theory import (
    expected_random_forwarders,
    remaining_nodes,
)
from repro.core.intersection_defense import coverage_percent
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.tables import format_series_table

N_NODES = 200
FIELD = 1000.0


def main() -> None:
    hs = [3, 4, 5, 6]

    # Closed-form view.
    theory_rf = [expected_random_forwarders(h) for h in hs]
    zone_k = [N_NODES / 2**h for h in hs]

    # Simulated view (one seed per point; see benchmarks/ for CIs).
    sim_rf, sim_hops, sim_delivery = [], [], []
    for h in hs:
        cfg = ExperimentConfig(
            protocol="ALERT", n_nodes=N_NODES, duration=30.0,
            n_pairs=6, h_override=h, seed=5,
        )
        r = run_experiment(cfg)
        sim_rf.append(r.metrics.mean_rf_count(delivered_only=False))
        sim_hops.append(r.mean_hops)
        sim_delivery.append(r.delivery_rate)

    print(
        format_series_table(
            "Choosing H: anonymity vs cost (200 nodes)",
            "H",
            hs,
            {
                "E[#RF] (eq.10)": theory_rf,
                "#RF (sim)": sim_rf,
                "hops (sim)": sim_hops,
                "zone k = N/2^H": zone_k,
                "delivery (sim)": sim_delivery,
            },
            digits=2,
        )
    )

    print()
    ms = [1, 2, 3, 4, 6]
    print(
        format_series_table(
            "Choosing m: §3.3 two-step multicast coverage (k = 6)",
            "m",
            ms,
            {
                "coverage, p_c=1.0": [coverage_percent(m, 6, 1.0) for m in ms],
                "coverage, p_c=0.8": [coverage_percent(m, 6, 0.8) for m in ms],
                "observable recipients": [float(m) for m in ms],
            },
            digits=2,
        )
    )

    print()
    times = [0.0, 20.0, 40.0, 60.0]
    print(
        format_series_table(
            "How long does k-anonymity last? eq. (15), H=5, rho=200/km^2",
            "t (s)",
            times,
            {
                f"v={v} m/s": [
                    float(remaining_nodes(t, 5, FIELD, v, N_NODES / FIELD**2))
                    for t in times
                ]
                for v in (1.0, 2.0, 4.0)
            },
            digits=2,
        )
    )
    print(
        "\nRules of thumb this generates: H=5 keeps ~6 nodes of cover"
        "\nwhile adding ~2 random forwarders per packet; m=3 hides the"
        "\ncommander from intersection attacks at full coverage; at"
        "\n4 m/s the cover set halves in about half a minute, so long"
        "\nsessions in fast networks should re-key (new session, new"
        "\nzone) periodically."
    )


if __name__ == "__main__":
    main()
